//! Minimal in-repo `rayon` shim for offline builds.
//!
//! Exposes the `par_iter` / `par_iter_mut` / `into_par_iter` → `map` →
//! `collect` pipeline the workspace uses, executed on `std::thread::scope`
//! with contiguous chunking (one chunk per available core). Output order
//! always matches input order, so parallel results are bit-identical to
//! the sequential equivalent for deterministic workloads.
//!
//! This is not work-stealing: chunks are static. For the simulation
//! batches this crate serves — many similar-cost ODE integrations — the
//! static split is within a few percent of ideal.

/// A materialised parallel iterator: the items plus the promise that the
/// terminal operation fans out across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, eagerly evaluated (order preserved).
    #[must_use]
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map_vec(self.items, &f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, &|item| f(item));
    }

    /// Collects the already-computed items.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items in the pipeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pipeline is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Builds the parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `.par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (`&'a T`).
    type Item: Send;
    /// Builds the parallel pipeline.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type produced (`&'a mut T`).
    type Item: Send;
    /// Builds the parallel pipeline.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Process-wide thread-count override installed by
/// [`ThreadPoolBuilder::build_global`] or a [`ThreadPool::install`]
/// scope. Zero means "auto": one worker per available core.
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Current worker count: the installed override when one is active,
/// otherwise one per available core.
#[must_use]
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error type of [`ThreadPoolBuilder::build_global`] — the shim never
/// actually fails, but the real rayon API returns a `Result`, so callers
/// written against it keep compiling.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon-shim thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the worker-count
/// knob the workspace uses (`GNR_BENCH_THREADS`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the automatic (per-core) worker count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = auto).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the worker count process-wide: every subsequent parallel
    /// pipeline uses it.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real rayon API.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Builds a scoped pool handle for [`ThreadPool::install`].
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real rayon API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A worker-count scope. The shim spawns scoped threads per pipeline
/// rather than owning a pool, so "the pool" is just a count that
/// [`Self::install`] swaps in around `f`. Unlike real rayon the swap is
/// process-global, not pool-local — fine for the sequential call sites
/// (the bench thread matrix) this shim serves, not for concurrent
/// `install` calls from multiple threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker count this pool was built with (0 = auto).
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs `f` with this pool's worker count installed, restoring the
    /// previous count afterwards (panic-safe via a drop guard).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.store(self.0, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let _restore =
            Restore(THREAD_OVERRIDE.swap(self.num_threads, std::sync::atomic::Ordering::Relaxed));
        f()
    }
}

fn parallel_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(workers);

    // Split into contiguous chunks, fan out one scoped thread per chunk,
    // then stitch results back in order.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// The traits the workspace imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 1000);
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i * 2);
        }
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3, 4, 5];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13, 14, 15]);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1.0f64, 2.0, 3.0];
        let sum: f64 = v
            .par_iter()
            .map(|x| x * x)
            .collect::<Vec<f64>>()
            .iter()
            .sum();
        assert!((sum - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    // NOTE: the worker-count override is process-global, so the tests
    // below only ever install counts ≥ 2 — forcing 1 could race the
    // thread-id assertion of `actually_uses_multiple_threads`.

    #[test]
    fn install_scopes_the_worker_count_and_restores_it() {
        let before = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn install_restores_on_panic() {
        let before = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(5)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(result.is_err());
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn overridden_pipelines_stay_order_preserving() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..500usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * 3)
                .collect()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if super::current_num_threads() < 2 {
            return;
        }
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        let first = ids[0];
        assert!(
            ids.iter().any(|id| *id != first),
            "expected >1 worker thread"
        );
    }
}
