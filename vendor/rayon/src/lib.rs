//! Minimal in-repo `rayon` shim for offline builds.
//!
//! Exposes the `par_iter` / `par_iter_mut` / `into_par_iter` → `map` →
//! `collect` pipeline the workspace uses, executed on `std::thread::scope`
//! with contiguous chunking (one chunk per available core). Output order
//! always matches input order, so parallel results are bit-identical to
//! the sequential equivalent for deterministic workloads.
//!
//! This is not work-stealing: chunks are static. For the simulation
//! batches this crate serves — many similar-cost ODE integrations — the
//! static split is within a few percent of ideal.

/// A materialised parallel iterator: the items plus the promise that the
/// terminal operation fans out across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, eagerly evaluated (order preserved).
    #[must_use]
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map_vec(self.items, &f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map_vec(self.items, &|item| f(item));
    }

    /// Collects the already-computed items.
    #[must_use]
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items in the pipeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pipeline is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Builds the parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `.par_iter()` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (`&'a T`).
    type Item: Send;
    /// Builds the parallel pipeline.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter_mut()` over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type produced (`&'a mut T`).
    type Item: Send;
    /// Builds the parallel pipeline.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Current worker count: one per available core.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parallel_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(workers);

    // Split into contiguous chunks, fan out one scoped thread per chunk,
    // then stitch results back in order.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// The traits the workspace imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 1000);
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i * 2);
        }
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3, 4, 5];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13, 14, 15]);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1.0f64, 2.0, 3.0];
        let sum: f64 = v
            .par_iter()
            .map(|x| x * x)
            .collect::<Vec<f64>>()
            .iter()
            .sum();
        assert!((sum - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        if super::current_num_threads() < 2 {
            return;
        }
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        let first = ids[0];
        assert!(
            ids.iter().any(|id| *id != first),
            "expected >1 worker thread"
        );
    }
}
