//! Minimal in-repo `serde_json` shim (serialize-only) for offline builds.

use core::fmt;

pub use serde::Value;

/// Serialization error — never produced by this shim, present so call
/// sites keep the real `serde_json` signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Renders compact JSON.
///
/// # Errors
///
/// Never fails in this shim.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Renders pretty JSON with two-space indentation.
///
/// # Errors
///
/// Never fails in this shim.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_through_value() {
        let v = vec![1.0f64, 2.5];
        assert_eq!(super::to_string(&v).unwrap(), "[1,2.5]");
        assert!(super::to_string_pretty(&v).unwrap().contains('\n'));
    }
}
