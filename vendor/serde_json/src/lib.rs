//! Minimal in-repo `serde_json` shim for offline builds: serialization
//! through the shim's [`Value`] data model, plus a small recursive JSON
//! parser ([`from_str`]) so snapshots written by this shim round-trip.

use core::fmt;

pub use serde::Value;

/// Serialization/parsing error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self(format!(
            "JSON parse error at byte {offset}: {}",
            message.into()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            write!(f, "serde_json shim error")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Renders compact JSON.
///
/// # Errors
///
/// Never fails in this shim.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Renders pretty JSON with two-space indentation.
///
/// # Errors
///
/// Never fails in this shim.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into a [`Value`] tree.
///
/// Strings, numbers, booleans, `null`, arrays and objects are supported
/// — the full output surface of this shim's serializer, so anything it
/// writes parses back. Numbers parse as `f64` (the shim's only numeric
/// type), which round-trips every value the serializer emits because
/// Rust's `{}` formatting is shortest-exact.
///
/// # Errors
///
/// Reports the byte offset and cause of the first syntax error.
pub fn from_str(input: &str) -> Result<Value> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse("trailing characters", pos));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::parse("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::parse(format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::parse("invalid UTF-8 in number", start))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(Error::parse("unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::parse("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::parse("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::parse("invalid \\u escape", *pos))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::parse("invalid code point", *pos))?,
                        );
                    }
                    _ => return Err(Error::parse("unknown escape", *pos - 1)),
                }
            }
            _ => {
                // Decode one UTF-8 sequence (at most 4 bytes) starting
                // at this byte — never re-validate the whole remainder.
                let start = *pos - 1;
                let end = (start + 4).min(bytes.len());
                let c = core::str::from_utf8(&bytes[start..end])
                    .ok()
                    .or_else(|| {
                        // A multi-byte char truncated by `end` still
                        // decodes from its exact-length prefix.
                        (start + 1..end)
                            .rev()
                            .find_map(|cut| core::str::from_utf8(&bytes[start..cut]).ok())
                    })
                    .and_then(|s| s.chars().next())
                    .ok_or_else(|| Error::parse("invalid UTF-8 in string", start))?;
                out.push(c);
                *pos += c.len_utf8() - 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(Error::parse("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::parse("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(Error::parse("expected `:`", *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(Error::parse("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_value() {
        let v = vec![1.0f64, 2.5];
        assert_eq!(super::to_string(&v).unwrap(), "[1,2.5]");
        assert!(super::to_string_pretty(&v).unwrap().contains('\n'));
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        let original = Value::Object(vec![
            ("name".into(), Value::String("cell \"a\"\n".into())),
            (
                "columns".into(),
                Value::Array(vec![
                    Value::Number(-3.25e-17),
                    Value::Number(42.0),
                    Value::Number(f64::MIN_POSITIVE),
                ]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
        ]);
        for text in [original.to_json(), original.to_json_pretty()] {
            assert_eq!(from_str(&text).unwrap(), original);
        }
    }

    #[test]
    fn doubles_round_trip_exactly() {
        for x in [1.0e-300f64, -7.123456789012345e18, 0.1, -0.0, 3.5e-17] {
            let text = super::to_string(&x).unwrap();
            assert_eq!(from_str(&text).unwrap().as_f64().unwrap().to_bits(), {
                // -0.0 serializes as the integer 0 (fract == 0 path).
                if x == 0.0 {
                    0.0f64.to_bits()
                } else {
                    x.to_bits()
                }
            });
        }
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("[] trailing").is_err());
        assert!(from_str("").is_err());
    }
}
