//! Minimal in-repo `parking_lot` shim: `Mutex`/`RwLock` over `std::sync`
//! with parking_lot's poison-free API (lock() returns the guard directly).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning like parking_lot
    /// (which has no poisoning at all).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_unwraps() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
