//! Minimal in-repo `criterion` shim for offline builds.
//!
//! Provides the call shapes the workspace benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `Bencher::iter`, `black_box` and the `criterion_group!`/
//! `criterion_main!` macros — measuring plain wall-clock medians instead
//! of criterion's statistical machinery. Each benchmark prints
//! `bench <name> ... <median>/iter` so `cargo bench` still yields a
//! usable perf trace.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Mirror of `Criterion::configure_from_args` (no-op here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark directly on the top-level handle.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.effective_sample_size(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.effective_sample_size(),
            _parent: self,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation of `iter`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(1));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration pass: choose an iteration count that keeps each sample
    // fast but above timer resolution.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let per_iter = bencher.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if per_iter < Duration::from_micros(50) {
        (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("bench {name:<48} {median:>12.3?}/iter ({sample_size} samples)");
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        assert!(calls >= 2, "calibration + samples");
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("inner", |b| {
            calls += 1;
            b.iter(|| 2 * 2);
        });
        group.finish();
        assert_eq!(calls, 4, "one calibration call + three samples");
    }
}
