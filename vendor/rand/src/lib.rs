//! Minimal in-repo `rand` shim for offline builds.
//!
//! Provides the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over primitive
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which the Monte-Carlo variation module
//! relies on for reproducible reports.

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, &range)
    }

    /// Uniform f64 in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty integer range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Modulo bias is negligible for the tiny spans used here.
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators, matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0.0f64..1.0) == b.gen_range(0.0f64..1.0))
            .count();
        assert!(same < 4);
    }
}
