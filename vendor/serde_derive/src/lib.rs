//! Minimal `#[derive(Serialize, Deserialize)]` for the in-repo serde shim.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields → JSON object, field order preserved;
//! * tuple structs with one field → transparent (the inner value), which
//!   also honours the `#[serde(transparent)]` the unit newtypes carry;
//! * enums whose variants are all unit variants → the variant name as a
//!   JSON string.
//!
//! Anything else (generics, payload variants, multi-field tuples) panics
//! at expansion time with a clear message, because nothing in the
//! workspace needs it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's JSON `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Shape::TransparentTuple => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::Value::String(\"{v}\".to_string())"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shim's marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Shape {
    NamedStruct(Vec<String>),
    TransparentTuple,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "serde shim derive: tuple struct `{name}` has {arity} fields; \
                         only single-field (transparent) tuple structs are supported"
                    );
                }
                Shape::TransparentTuple
            }
            _ => panic!("serde shim derive: unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1; // [...]
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // (crate) / (super) / (in ...)
        }
    }
}

/// Field names of a `{ ... }` struct body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Consume the type up to the next top-level comma. `<`/`>` are
        // plain puncts, so track angle-bracket depth by hand.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of top-level comma-separated entries in a `( ... )` body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        arity -= 1; // trailing comma
    }
    arity
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde shim derive: enum `{enum_name}` variant `{variant}` carries data \
                 ({other:?}); only unit variants are supported"
            ),
        }
        variants.push(variant);
    }
    variants
}
