//! Minimal in-repo `serde` shim for offline builds.
//!
//! The real `serde` is unavailable in this build environment (no network,
//! no vendored registry), so this crate provides the narrow surface the
//! workspace actually uses: `#[derive(serde::Serialize, serde::Deserialize)]`
//! on plain structs (named or single-field tuple) and unit-variant enums,
//! plus enough of a JSON data model for `serde_json::to_string_pretty`.
//!
//! The data model is JSON-only and serialize-only; [`Deserialize`] is a
//! marker trait so derives compile, since nothing in the workspace parses
//! serialized data back.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value — the entire data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite or non-finite number (non-finite renders as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON with two-space indentation.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// The number, if this value is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        // Upper bound is 2^64 exactly: any integral f64 below it fits.
        const U64_EXCLUSIVE_MAX: f64 = 18_446_744_073_709_551_616.0;
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n < U64_EXCLUSIVE_MAX => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this value is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks a field up by name, if this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    // Keep integers integral, like serde_json does.
                    if n.fract() == 0.0 && n.abs() < 1.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization into the JSON [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(serde::Deserialize)]` compiles; nothing in
/// this workspace deserializes.
pub trait Deserialize {}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_number!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A, B> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A, B, C> Deserialize for (A, B, C) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_json_renders_scalars() {
        assert_eq!(Value::Number(1.5).to_json(), "1.5");
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::String("a\"b".into()).to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn pretty_json_indents_objects() {
        let v = Value::Object(vec![("x".into(), Value::Number(1.0))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"x\": 1\n}");
    }

    #[test]
    fn as_u64_rejects_out_of_range_instead_of_saturating() {
        assert_eq!(Value::Number(42.0).as_u64(), Some(42));
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(0.5).as_u64(), None);
        // Integral but >= 2^64: must be None, not u64::MAX.
        assert_eq!(Value::Number(1.85e19).as_u64(), None);
        assert_eq!(Value::Number(2.0f64.powi(64)).as_u64(), None);
        // Largest representable integral f64 below 2^64 still decodes.
        let below = 2.0f64.powi(64) - 2048.0;
        assert_eq!(Value::Number(below).as_u64(), Some(below as u64));
    }

    #[test]
    fn collections_serialize_elementwise() {
        let v = vec![1.0f64, 2.0].to_value();
        assert_eq!(v.to_json(), "[1,2]");
        let pair = (1.0f64, "a".to_string()).to_value();
        assert_eq!(pair.to_json(), "[1,\"a\"]");
        assert_eq!(Option::<f64>::None.to_value(), Value::Null);
    }
}
