//! Minimal in-repo `crossbeam` shim for offline builds.
//!
//! Only `crossbeam::thread::scope` is provided, backed by
//! `std::thread::scope` (which did not exist when crossbeam's scoped
//! threads were written, but has identical semantics for this usage).

/// Scoped threads, matching the `crossbeam::thread` call shape.
pub mod thread {
    /// Handle passed to scoped spawns; mirrors `crossbeam`'s `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// matching crossbeam's `|scope|`-style spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// the call returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam, a panicking child propagates the panic directly
    /// (std semantics), so the `Result` is always `Ok`; it exists so call
    /// sites written against crossbeam's API keep their `.expect(..)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
