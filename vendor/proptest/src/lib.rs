//! Minimal in-repo `proptest` shim for offline builds.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest! { #![proptest_config(..)] #[test] fn name(x in strategy, ..) }`
//! macro form, `prop_assert!`/`prop_assert_eq!`, half-open primitive
//! ranges as strategies, `proptest::collection::vec` and
//! `proptest::num::f64::NORMAL`.
//!
//! Unlike the real proptest there is no shrinking: a failing case reports
//! its inputs and panics. Sampling is deterministic — the RNG seed is a
//! hash of the test name — so failures reproduce across runs.

use core::fmt;
use core::ops::Range;

#[doc(hidden)]
pub use rand as __rand;

/// The RNG handed to strategies (xoshiro-based, deterministic).
pub type SampleRng = rand::rngs::StdRng;

/// Run-count configuration, matching `ProptestConfig::with_cases`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property, carried out of the test body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A value generator, the shim's take on proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SampleRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A constant strategy, proptest's `Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SampleRng, Strategy};
    use core::ops::Range;

    /// A length specification: an exact size or a half-open range,
    /// mirroring proptest's `SizeRange` conversions.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.0.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{SampleRng, Strategy};

        /// Generates normal (non-zero, non-subnormal, finite) doubles of
        /// either sign across the full dynamic range.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// The shim's `proptest::num::f64::NORMAL`.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn sample(&self, rng: &mut SampleRng) -> f64 {
                let mantissa = rand::Rng::gen_range(rng, 1.0f64..10.0);
                let exponent = rand::Rng::gen_range(rng, -300i32..300);
                let sign = if rand::Rng::gen_range(rng, 0u8..2) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * mantissa * 10f64.powi(exponent)
            }
        }
    }
}

/// Deterministic per-test seed (FNV-1a over the test name).
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything the `proptest!`-style tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// The shim's `proptest!` macro: expands each `fn name(arg in strategy, ..)`
/// into a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::SampleRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // Render the inputs before the body runs: the body may
                // move the arguments.
                let inputs = format!(
                    concat!($(" ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(error) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the enclosing property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the enclosing property unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in -3.0f64..7.0, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(ys in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(ys.len() >= 2 && ys.len() < 5);
            prop_assert!(ys.iter().all(|y| (0.0..1.0).contains(y)));
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
