//! The headline reproduction test: every figure of the paper regenerates
//! and passes its paper-shape check.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::experiments::{band_diagram, fig4, fig5, fig6, fig7, fig8, fig9};
use gnr_flash::presets;
use gnr_units::Charge;

#[test]
fn fig2_band_diagram_reproduces() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let data = band_diagram::generate(&device, presets::program_vgs(), Charge::ZERO);
    band_diagram::check(&data).unwrap();
    // The §III drop split: 9 V across the tunnel oxide.
    assert!((data.vfg - 9.0).abs() < 1e-9);
}

#[test]
fn fig4_onset_reproduces() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let data = fig4::generate(&device).unwrap();
    fig4::check(&data).unwrap();
    // "Jin is much higher than Jout" — by many decades at onset.
    assert!(data.onset_ratio() > 1e6);
}

#[test]
fn fig5_saturation_reproduces() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let data = fig5::generate(&device).unwrap();
    fig5::check(&data).unwrap();
}

#[test]
fn fig6_program_gcr_reproduces() {
    let fig = fig6::generate().unwrap();
    fig6::check(&fig).unwrap();
    assert_eq!(fig.series.len(), 4);
}

#[test]
fn fig7_program_xto_reproduces() {
    let fig = fig7::generate().unwrap();
    fig7::check(&fig).unwrap();
    assert_eq!(fig.series.len(), 5);
}

#[test]
fn fig8_erase_gcr_reproduces() {
    let fig = fig8::generate().unwrap();
    fig8::check(&fig).unwrap();
}

#[test]
fn fig9_erase_xto_reproduces() {
    let fig = fig9::generate().unwrap();
    fig9::check(&fig).unwrap();
}

#[test]
fn all_sweep_figures_serialize_and_export() {
    for fig in [
        fig6::generate().unwrap(),
        fig7::generate().unwrap(),
        fig8::generate().unwrap(),
        fig9::generate().unwrap(),
    ] {
        let json = serde_json::to_string(&fig).unwrap();
        assert!(json.contains(&fig.id));
        let csv = fig.to_csv();
        assert_eq!(csv.lines().count(), presets::SWEEP_POINTS + 1);
    }
}

#[test]
fn crossover_structure_between_fig6_curves() {
    // FN curves at different GCR never cross within the sweep — higher
    // coupling always wins (the legend ordering of the paper's Figure 6).
    let fig = fig6::generate().unwrap();
    for i in 0..presets::SWEEP_POINTS {
        for pair in fig.series.windows(2) {
            assert!(
                pair[1].y[i] > pair[0].y[i],
                "ordering violated at grid point {i}"
            );
        }
    }
}
