//! Batch/sequential parity: the batched engine must be *bit-identical*
//! to the sequential path, at every level of the stack.
//!
//! The engine guarantees this by construction — immutable shared `J(E)`
//! tables, per-run integration state, order-preserving fan-out — and
//! these tests pin the guarantee end to end: spec batches against
//! `TransientSimulator`, and a full 4×4×16 NAND page-program/block-erase
//! against the same array driven sequentially.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::BatchSimulator;
use gnr_flash::transient::{ProgramPulseSpec, TransientSimulator};
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_units::{Charge, Time, Voltage};

fn mixed_specs() -> Vec<ProgramPulseSpec> {
    let mut specs: Vec<ProgramPulseSpec> = (0..8)
        .map(|i| ProgramPulseSpec::program(Voltage::from_volts(13.0 + 0.5 * f64::from(i))))
        .collect();
    // Fixed-duration pulses and erases exercise both run() branches.
    specs.push(
        ProgramPulseSpec::program(Voltage::from_volts(15.0))
            .with_duration(Time::from_microseconds(100.0)),
    );
    specs.push(ProgramPulseSpec::erase(
        Voltage::from_volts(-15.0),
        Charge::from_electrons(-120.0),
    ));
    specs
}

#[test]
fn batched_specs_are_bit_identical_to_sequential_transient_runs() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let specs = mixed_specs();

    let batched = BatchSimulator::new().run(&device, &specs);
    let simulator = TransientSimulator::new(&device);

    assert_eq!(batched.len(), specs.len());
    for (spec, batch_result) in specs.iter().zip(&batched) {
        let sequential = simulator.run(spec).expect("sequential run");
        let batched = batch_result.as_ref().expect("batched run");
        // Bit-identical: every sample of the trace, not just summaries.
        assert_eq!(
            batched.samples(),
            sequential.samples(),
            "trace diverged for {spec:?}"
        );
        assert_eq!(batched.saturation_time(), sequential.saturation_time());
        assert_eq!(
            batched.charge_at_saturation(),
            sequential.charge_at_saturation()
        );
        assert_eq!(batched.accepted_steps(), sequential.accepted_steps());
        assert_eq!(batched.rhs_evaluations(), sequential.rhs_evaluations());
    }
}

fn checkerboard(width: usize) -> Vec<bool> {
    (0..width).map(|i| i % 2 == 0).collect()
}

#[test]
fn nand_page_program_parallel_matches_sequential_exactly() {
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let pattern = checkerboard(config.page_width);

    let mut parallel = NandArray::new(config);
    let mut sequential = NandArray::new(config).with_batch(BatchSimulator::sequential());

    parallel
        .program_page(1, 2, &pattern)
        .expect("parallel program");
    sequential
        .program_page(1, 2, &pattern)
        .expect("sequential program");

    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            for column in 0..config.page_width {
                let p = parallel.cell(block, page, column).unwrap();
                let s = sequential.cell(block, page, column).unwrap();
                assert_eq!(
                    p.charge().as_coulombs(),
                    s.charge().as_coulombs(),
                    "cell ({block},{page},{column}) charge diverged"
                );
                assert_eq!(p.read(), s.read());
            }
        }
    }
    assert_eq!(parallel.read_page(1, 2).unwrap(), pattern);
}

#[test]
fn nand_block_erase_parallel_matches_sequential_exactly() {
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 2,
        page_width: 16,
    };
    let pattern = checkerboard(config.page_width);

    let mut parallel = NandArray::new(config);
    let mut sequential = NandArray::new(config).with_batch(BatchSimulator::sequential());
    for array in [&mut parallel, &mut sequential] {
        array.program_page(0, 0, &pattern).expect("program");
        array.program_page(0, 1, &pattern).expect("program");
    }

    parallel.erase_block(0).expect("parallel erase");
    sequential.erase_block(0).expect("sequential erase");

    for page in 0..config.pages_per_block {
        for column in 0..config.page_width {
            let p = parallel.cell(0, page, column).unwrap();
            let s = sequential.cell(0, page, column).unwrap();
            assert_eq!(
                p.charge().as_coulombs(),
                s.charge().as_coulombs(),
                "cell (0,{page},{column}) charge diverged after erase"
            );
        }
    }
    // Reads go last: read_page disturbs the unselected pages, which
    // would break the cell-by-cell comparison above.
    for page in 0..config.pages_per_block {
        assert_eq!(
            parallel.read_page(0, page).unwrap(),
            vec![true; config.page_width]
        );
    }
    assert_eq!(
        parallel.erase_count(0).unwrap(),
        sequential.erase_count(0).unwrap()
    );
}
