//! Population/per-cell parity: the struct-of-arrays refactor must be
//! *bit-identical* to the historical cell-by-cell array.
//!
//! The reference path below is the pre-refactor implementation, kept
//! alive cell by cell: one owning `FlashCell` per array position, ISPP
//! ladders through `IsppProgrammer::program_batch`, block erase through
//! the same per-cell closure `NandArray::erase_block` used to run, and
//! sequential `apply_disturb` loops. Every charge, wear counter and read
//! decision must match the `CellPopulation`-backed array exactly on the
//! 4×4×16 reference shape — NAND page-program, block-erase and MLC
//! placement.

use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::disturb::{apply_disturb, DisturbBias};
use gnr_flash_array::ispp::{IsppEraser, IsppProgrammer};
use gnr_flash_array::mlc::{self, MlcCell, MlcLevels, MlcState};
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::population::{CellPopulation, PopulationSnapshot, PopulationVariation};
use gnr_units::Voltage;
use proptest::prelude::*;

const CONFIG: NandConfig = NandConfig {
    blocks: 4,
    pages_per_block: 4,
    page_width: 16,
};

/// The pre-refactor array: one owning cell per position.
struct ReferenceArray {
    /// `pages[block][page][column]`.
    pages: Vec<Vec<Vec<FlashCell>>>,
    bias: DisturbBias,
    programmer: IsppProgrammer,
    eraser: IsppEraser,
    batch: BatchSimulator,
}

impl ReferenceArray {
    fn new(config: NandConfig) -> Self {
        Self {
            pages: (0..config.blocks)
                .map(|_| {
                    (0..config.pages_per_block)
                        .map(|_| {
                            (0..config.page_width)
                                .map(|_| FlashCell::paper_cell())
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            bias: DisturbBias::default(),
            programmer: IsppProgrammer::nominal(),
            eraser: IsppEraser::nominal(),
            batch: BatchSimulator::new(),
        }
    }

    /// The historical `NandArray::program_page` body.
    fn program_page(&mut self, block: usize, page: usize, bits: &[bool]) {
        let b = &mut self.pages[block];
        let selected: Vec<&mut FlashCell> = b[page]
            .iter_mut()
            .zip(bits)
            .filter_map(|(cell, &bit)| (!bit).then_some(cell))
            .collect();
        let reports = self.programmer.program_batch(selected, &self.batch);
        for (p, cells) in b.iter_mut().enumerate() {
            if p == page {
                continue;
            }
            for cell in cells {
                apply_disturb(
                    cell,
                    self.bias.v_pass_program,
                    self.bias.program_exposure,
                    1,
                );
            }
        }
        for report in reports {
            report.expect("reference program");
        }
    }

    /// The historical `NandArray::read_page` body.
    fn read_page(&mut self, block: usize, page: usize) -> Vec<bool> {
        let b = &mut self.pages[block];
        let bits = b[page]
            .iter()
            .map(|c| c.read() == gnr_flash::threshold::LogicState::Erased1)
            .collect();
        for (p, cells) in b.iter_mut().enumerate() {
            if p == page {
                continue;
            }
            for cell in cells {
                apply_disturb(cell, self.bias.v_pass_read, self.bias.read_exposure, 1);
            }
        }
        bits
    }

    /// The historical `NandArray::erase_block` body.
    fn erase_block(&mut self, block: usize) {
        let eraser = self.eraser;
        let batch = self.batch.clone();
        let cells: Vec<&mut FlashCell> = self.pages[block].iter_mut().flatten().collect();
        let results = batch.scatter(cells, |cell| {
            let engine = batch.engine_for(cell.device());
            if !cell.verify_erase(Voltage::from_volts(0.3)) {
                eraser.erase_with(cell, &engine).map(|_| ())
            } else {
                cell.erase_default_with(&engine)
            }
        });
        for result in results {
            result.expect("reference erase");
        }
    }

    fn cell(&self, block: usize, page: usize, column: usize) -> &FlashCell {
        &self.pages[block][page][column]
    }
}

fn assert_arrays_identical(array: &NandArray, reference: &ReferenceArray, context: &str) {
    let cfg = array.config();
    for b in 0..cfg.blocks {
        for p in 0..cfg.pages_per_block {
            for c in 0..cfg.page_width {
                let soa = array.cell(b, p, c).unwrap();
                let old = reference.cell(b, p, c);
                assert_eq!(
                    soa.charge().as_coulombs().to_bits(),
                    old.charge().as_coulombs().to_bits(),
                    "{context}: charge diverged at ({b},{p},{c})"
                );
                assert_eq!(
                    soa.stats(),
                    old.stats(),
                    "{context}: wear stats diverged at ({b},{p},{c})"
                );
                assert_eq!(
                    soa.read(),
                    old.read(),
                    "{context}: read diverged at ({b},{p},{c})"
                );
            }
        }
    }
}

#[test]
fn page_program_is_bit_identical_to_per_cell_path() {
    let mut array = NandArray::new(CONFIG);
    let mut reference = ReferenceArray::new(CONFIG);

    let checkerboard: Vec<bool> = (0..CONFIG.page_width).map(|i| i % 2 == 0).collect();
    let stripes: Vec<bool> = (0..CONFIG.page_width).map(|i| (i / 4) % 2 == 0).collect();

    array.program_page(1, 2, &checkerboard).unwrap();
    reference.program_page(1, 2, &checkerboard);
    array.program_page(3, 0, &stripes).unwrap();
    reference.program_page(3, 0, &stripes);

    assert_arrays_identical(&array, &reference, "page program");
}

#[test]
fn reads_and_read_disturb_are_bit_identical() {
    let mut array = NandArray::new(CONFIG);
    let mut reference = ReferenceArray::new(CONFIG);
    let pattern: Vec<bool> = (0..CONFIG.page_width).map(|i| i % 3 == 0).collect();
    array.program_page(0, 1, &pattern).unwrap();
    reference.program_page(0, 1, &pattern);

    for _ in 0..50 {
        assert_eq!(array.read_page(0, 1).unwrap(), reference.read_page(0, 1));
    }
    assert_arrays_identical(&array, &reference, "read disturb");
}

#[test]
fn block_erase_is_bit_identical_to_per_cell_path() {
    let mut array = NandArray::new(CONFIG);
    let mut reference = ReferenceArray::new(CONFIG);
    let pattern: Vec<bool> = (0..CONFIG.page_width).map(|i| i % 2 == 1).collect();

    // Program two pages of block 2 (leaving two erased) so the erase
    // exercises both branches of the per-cell closure.
    for page in [0, 3] {
        array.program_page(2, page, &pattern).unwrap();
        reference.program_page(2, page, &pattern);
    }
    array.erase_block(2).unwrap();
    reference.erase_block(2);

    assert_arrays_identical(&array, &reference, "block erase");
}

#[test]
fn mlc_placement_is_bit_identical_to_per_cell_path() {
    let levels = MlcLevels::default();
    let batch = BatchSimulator::new();
    // Walk through every state and a downgrade (which forces the
    // erase-then-program path) on both implementations.
    let sequence = [
        MlcState::Level10,
        MlcState::Level01,
        MlcState::Level00, // downgrade: erase + reprogram
        MlcState::Erased11,
        MlcState::Level01,
    ];
    let mut cell = MlcCell::paper_cell();
    let mut pop = CellPopulation::paper(4);
    for target in sequence {
        cell.program(target).unwrap();
        mlc::program_cell(&mut pop, 1, target, &levels, &batch).unwrap();
        assert_eq!(
            pop.charge(1).unwrap().as_coulombs().to_bits(),
            cell.cell().charge().as_coulombs().to_bits(),
            "MLC charge diverged at {target:?}"
        );
        assert_eq!(mlc::read_cell(&pop, 1, &levels).unwrap(), cell.read());
        assert_eq!(pop.stats(1).unwrap(), cell.cell().stats());
    }
    // Cells that never took part stay untouched.
    assert_eq!(pop.charge(0).unwrap().as_coulombs(), 0.0);
}

#[test]
fn parallel_and_sequential_population_paths_agree() {
    // The grouped ops must not depend on the executor either.
    let pattern: Vec<bool> = (0..CONFIG.page_width).map(|i| i % 5 != 0).collect();
    let mut parallel = NandArray::new(CONFIG);
    let mut sequential = NandArray::new(CONFIG).with_batch(BatchSimulator::sequential());
    for array in [&mut parallel, &mut sequential] {
        array.program_page(0, 0, &pattern).unwrap();
        array.erase_block(0).unwrap();
        array.program_page(0, 2, &pattern).unwrap();
    }
    for p in 0..CONFIG.pages_per_block {
        for c in 0..CONFIG.page_width {
            assert_eq!(
                parallel
                    .cell(0, p, c)
                    .unwrap()
                    .charge()
                    .as_coulombs()
                    .to_bits(),
                sequential
                    .cell(0, p, c)
                    .unwrap()
                    .charge()
                    .as_coulombs()
                    .to_bits(),
                "executor divergence at (0,{p},{c})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn variation_deltas_round_trip_through_serde(
        xtos in proptest::collection::vec(-0.08f64..0.08, 1..10),
        barriers in proptest::collection::vec(-0.12f64..0.12, 1..10),
        charges in proptest::collection::vec(-2.0e-17f64..0.0, 1..10),
    ) {
        let n = xtos.len().min(barriers.len()).min(charges.len());
        let mut pop = CellPopulation::paper(n);
        for i in 0..n {
            pop.set_cell_variation(i, xtos[i], barriers[i])
                .expect("physical deltas");
            pop.set_charge(i, gnr_units::Charge::from_coulombs(charges[i]))
                .expect("in range");
        }
        let json = serde_json::to_string_pretty(&pop.snapshot()).expect("serialize");
        let decoded = PopulationSnapshot::from_json(&json).expect("parse");
        prop_assert_eq!(&decoded, &pop.snapshot());
        let rebuilt = CellPopulation::restore(
            gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper(),
            decoded,
        )
        .expect("rebuild");
        for i in 0..n {
            let (x, b) = rebuilt.variation_deltas(i).expect("in range");
            prop_assert_eq!(x.to_bits(), xtos[i].to_bits());
            prop_assert_eq!(b.to_bits(), barriers[i].to_bits());
            prop_assert_eq!(
                rebuilt.charge(i).expect("in range").as_coulombs().to_bits(),
                charges[i].to_bits()
            );
        }
        // The rebuilt population is functionally the same object.
        prop_assert_eq!(&rebuilt, &pop);
    }
}

#[test]
fn variation_population_reuses_identical_deltas() {
    let mut pop = CellPopulation::paper(6);
    pop.set_cell_variation(0, 0.03, -0.02).unwrap();
    pop.set_cell_variation(3, 0.03, -0.02).unwrap();
    pop.set_cell_variation(5, -0.01, 0.0).unwrap();
    // nominal + two distinct builds, not one per touched cell.
    assert_eq!(pop.variant_count(), 3);
}

#[test]
fn seeded_variation_is_reproducible() {
    let spec = PopulationVariation::default();
    let blueprint = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper;
    let a = CellPopulation::with_variation(blueprint(), 30, &spec).unwrap();
    let b = CellPopulation::with_variation(blueprint(), 30, &spec).unwrap();
    assert_eq!(a, b);
}
