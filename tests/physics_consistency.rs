//! Cross-crate physics consistency: the same constants must fall out of
//! every layer of the stack.

use gnr_flash::device::FloatingGateTransistor;
use gnr_materials::interface::TunnelInterface;
use gnr_materials::mlgnr::MultilayerGnr;
use gnr_materials::oxide::Oxide;
use gnr_tunneling::fn_model::FnModel;
use gnr_tunneling::fn_plot::{barrier_from_b, extract_params, generate_plot};
use gnr_tunneling::regime::{classify, TunnelingRegime};
use gnr_tunneling::wkb::BarrierProfile;
use gnr_units::{Charge, ElectricField, Energy, Length, Voltage};

#[test]
fn fn_plot_extraction_recovers_the_device_barrier() {
    // The paper's §IV route: measure J(E), make the FN plot, extract B,
    // invert for ΦB — applied to our own device it must recover the
    // barrier the materials layer computed from work functions.
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let model = device.channel_emission_model();
    let fields: Vec<ElectricField> = (0..30)
        .map(|i| ElectricField::from_volts_per_meter(1.0e9 + 4.0e7 * f64::from(i)))
        .collect();
    let points = generate_plot(model, &fields);
    let extracted = extract_params(&points).unwrap();
    let phi = barrier_from_b(extracted.b, model.effective_mass());
    let expected = model.barrier().as_ev();
    assert!(
        (phi.as_ev() - expected).abs() < 1e-6,
        "extracted {} eV vs device {} eV",
        phi.as_ev(),
        expected
    );
    assert!(extracted.fit.r_squared > 0.999_9);
}

#[test]
fn device_barrier_comes_from_material_alignment() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let iface = TunnelInterface::new(
        MultilayerGnr::paper_channel().work_function(),
        Oxide::silicon_dioxide(),
    )
    .unwrap();
    assert!(
        (device.channel_emission_model().barrier().as_ev() - iface.barrier_height().as_ev()).abs()
            < 1e-12
    );
}

#[test]
fn wkb_validates_the_analytic_law_at_the_program_point() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let vfg = device.floating_gate_voltage(Voltage::from_volts(15.0), Charge::ZERO);
    let field = device.tunnel_oxide_field(vfg, Voltage::ZERO);
    let model = device.channel_emission_model();
    let profile = BarrierProfile::ideal(
        model.barrier(),
        device.geometry().tunnel_oxide_thickness(),
        field,
    );
    let wkb_exponent = profile.fermi_level_exponent(model.effective_mass());
    let analytic = -model.coefficients().b / field.as_volts_per_meter();
    assert!(
        ((wkb_exponent - analytic) / analytic).abs() < 1e-3,
        "WKB {wkb_exponent} vs analytic {analytic}"
    );
}

#[test]
fn program_bias_is_fn_regime_read_bias_is_not() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let iface = TunnelInterface::new(
        MultilayerGnr::paper_channel().work_function(),
        Oxide::silicon_dioxide(),
    )
    .unwrap();
    let xto = device.geometry().tunnel_oxide_thickness();
    // Program: 9 V drop → FN (the paper's design point).
    let vfg_prog = device.floating_gate_voltage(Voltage::from_volts(15.0), Charge::ZERO);
    assert_eq!(
        classify(&iface, xto, vfg_prog),
        TunnelingRegime::FowlerNordheim
    );
    // Read: ~1.2 V drop → sub-barrier but measurable field → direct.
    let vfg_read = device.floating_gate_voltage(Voltage::from_volts(2.0), Charge::ZERO);
    assert_eq!(classify(&iface, xto, vfg_read), TunnelingRegime::Direct);
    // Rest: no bias → negligible.
    assert_eq!(
        classify(&iface, xto, Voltage::from_millivolts(10.0)),
        TunnelingRegime::Negligible
    );
}

#[test]
fn paper_form_and_lenzlinger_snow_share_the_b_coefficient() {
    let phi = Energy::from_ev(3.6);
    let m = gnr_units::Mass::from_electron_masses(0.42);
    let a = FnModel::new(phi, m).coefficients();
    let b = FnModel::paper_form(phi, m).coefficients();
    assert!((a.b - b.b).abs() / a.b < 1e-12);
    assert!(a.a > b.a, "mass correction raises A for m_ox < m0");
}

#[test]
fn thinner_oxide_means_higher_field_and_regime_shift() {
    // 2 V across 5 nm is Direct; the same 2 V across 3 nm is still
    // Direct (ultra-thin), but across 6 nm it becomes Negligible-free
    // Direct with a weaker field — consistency of the classifier with
    // Length scaling.
    let iface = TunnelInterface::new(
        MultilayerGnr::paper_channel().work_function(),
        Oxide::silicon_dioxide(),
    )
    .unwrap();
    let v = Voltage::from_volts(2.0);
    for nm in [3.0, 5.0, 6.0] {
        let r = classify(&iface, Length::from_nanometers(nm), v);
        assert_eq!(r, TunnelingRegime::Direct, "{nm} nm");
    }
    // Across 25 nm the field drops below 1 MV/cm → negligible.
    assert_eq!(
        classify(&iface, Length::from_nanometers(25.0), v),
        TunnelingRegime::Negligible
    );
}
