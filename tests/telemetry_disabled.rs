//! Disabled-path guarantees of the telemetry layer, isolated in its own
//! integration binary on purpose: the registry interns metric names
//! process-globally, so proving "a disabled replay allocates nothing"
//! requires a process where nothing else has enabled telemetry first.

use gnr_flash::telemetry;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};

#[test]
fn disabled_telemetry_is_inert_across_an_instrumented_replay() {
    // Explicit off, overriding any ambient GNR_PROFILE/GNR_TELEMETRY.
    telemetry::set_enabled(false);
    telemetry::set_profiling(false);

    // A full GC-forcing churn replay through every instrumented hot
    // path: engine, population, scheduler, FTL, replayer.
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let mut controller = FlashController::new(config);
    let capacity = controller.logical_capacity();
    replay(
        &mut controller,
        &WorkloadTrace::gc_churn(3 * capacity, capacity, 0xbead),
        &ReplayOptions {
            snapshot_interval: 0,
            margin_scan: false,
        },
    )
    .expect("churn replays");

    // The zone macro hands back an inert guard while profiling is off.
    {
        let _guard = telemetry::zone!("test.disabled_zone");
    }

    // Nothing was interned, counted, profiled or journaled: the macros
    // never touched the registry, the collector never installed, and
    // the journal stayed empty.
    let snap = telemetry::snapshot();
    assert!(
        snap.counters.is_empty(),
        "disabled replay must intern no counters: {:?}",
        snap.counters
    );
    assert!(
        snap.histograms.is_empty(),
        "disabled replay must intern no histograms"
    );
    assert!(snap.zones.is_empty(), "disabled zone guards must be no-ops");
    assert_eq!(snap.journal.recorded, 0, "disabled journal must be empty");
    assert!(snap.is_empty());

    // The engine-cache facade keeps working on its own atomics even
    // though nothing was mirrored into the registry.
    let stats = gnr_flash::engine::cache::stats();
    assert!(
        stats.flow_maps.hits + stats.flow_maps.misses > 0,
        "the cache facade stays live with telemetry off"
    );
}
