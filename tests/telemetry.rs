//! End-to-end tests of the unified telemetry layer over real GC-churn
//! replays: the acceptance snapshot, journal determinism, and
//! deterministic (coherent) snapshot reads.
//!
//! The registry, zone table, op clock and journal are process-global,
//! so every test here serializes on one mutex, runs with full
//! instrumentation, and restores the ambient flags before returning.

use std::sync::Mutex;

use gnr_flash::telemetry;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};

static TELEMETRY_TESTS: Mutex<()> = Mutex::new(());

const SMOKE: NandConfig = NandConfig {
    blocks: 4,
    pages_per_block: 4,
    page_width: 16,
};

/// One GC-churn replay on a fresh smoke-shaped controller — enough
/// overwrites past capacity to force reclaims and garbage collection.
fn run_churn(seed: u64) {
    let mut controller = FlashController::new(SMOKE);
    let capacity = controller.logical_capacity();
    replay(
        &mut controller,
        &WorkloadTrace::gc_churn(3 * capacity, capacity, seed),
        &ReplayOptions {
            snapshot_interval: 0,
            margin_scan: false,
        },
    )
    .expect("churn replays");
}

/// Enables metrics + journal + profiling with a clean registry, and
/// restores the ambient flags (and a clean registry) on drop so tests
/// in other binaries never observe this test's state.
struct Instrumented {
    enabled: bool,
    profiling: bool,
}

fn instrumented() -> Instrumented {
    let ambient = Instrumented {
        enabled: telemetry::enabled(),
        profiling: telemetry::profiling_enabled(),
    };
    telemetry::set_enabled(true);
    telemetry::set_profiling(true);
    telemetry::reset();
    ambient
}

impl Drop for Instrumented {
    fn drop(&mut self) {
        telemetry::reset();
        telemetry::set_op_index(0);
        telemetry::set_enabled(self.enabled);
        telemetry::set_profiling(self.profiling);
    }
}

#[test]
fn churn_snapshot_reports_the_acceptance_metrics() {
    let _lock = TELEMETRY_TESTS.lock().unwrap();
    let _flags = instrumented();
    run_churn(0xbead);
    let snap = telemetry::snapshot();

    // Flow-map probes / hits / escapes, and their conservation law.
    let queries = snap
        .counter("engine.flowmap.queries")
        .expect("flow-map queries");
    let answers = snap
        .counter("engine.flowmap.answers")
        .expect("flow-map answers");
    let escapes = snap
        .counter("engine.flowmap.escapes")
        .expect("flow-map escapes");
    assert!(queries > 0, "churn must probe the flow map");
    assert_eq!(queries, answers + escapes);

    // Cycle-map probes: zero in a pure churn run (no epoch jumps), but
    // always reported through the interned catalogue.
    assert!(snap.counter("population.epoch.probes").is_some());
    assert!(snap.counter("population.epoch.fallbacks").is_some());

    // Population grouping: per-op group counts land in the histogram.
    assert!(snap.counter("population.ops").expect("population ops") > 0);
    let groups = snap
        .histogram("population.groups_per_op")
        .expect("groups-per-op histogram");
    assert!(groups.count > 0);

    // FTL: host writes, reclaim/GC activity, and a derivable write
    // amplification of at least 1.
    let host = snap
        .counter("ftl.host_pages_written")
        .expect("host page counter");
    let relocations = snap
        .counter("ftl.gc.relocations")
        .expect("GC relocation counter");
    assert!(host > 0, "churn must write host pages");
    let reclaims = snap.counter("ftl.reclaims").expect("reclaim counter");
    let gc_erases = snap.counter("ftl.gc.erases").expect("GC erase counter");
    assert!(
        reclaims + gc_erases > 0,
        "overwriting 3x capacity must reclaim or garbage-collect"
    );
    #[allow(clippy::cast_precision_loss)]
    let write_amplification = (host + relocations) as f64 / host as f64;
    assert!(write_amplification >= 1.0);

    // Per-batch latency histograms, one sample per replayed batch.
    let write_batches = snap
        .histogram("replay.write_batch_us")
        .expect("write-batch latency histogram");
    assert!(write_batches.count > 0);
    assert_eq!(
        write_batches.count,
        snap.counter("replay.write_batches").expect("batch counter")
    );

    // Engine-cache stats folded into the registry via the collector.
    assert!(snap.counter("engine.cache.flow_maps.hits").is_some());
    assert!(snap.counter("engine.cache.j_tables.misses").is_some());

    // The profiling pass covers the whole stack: at least five zones,
    // each with a call count.
    for name in [
        "replay.segment",
        "ftl.write_batch",
        "scheduler.execute",
        "population.group",
        "engine.pulse_batch",
    ] {
        let zone = snap
            .zone(name)
            .unwrap_or_else(|| panic!("zone `{name}` missing from the churn profile"));
        assert!(zone.calls > 0, "zone `{name}` must record calls");
    }
    assert!(snap.zones.len() >= 5);
}

#[test]
fn identical_replays_produce_identical_journals() {
    let _lock = TELEMETRY_TESTS.lock().unwrap();
    let _flags = instrumented();

    run_churn(0x5eed);
    let first = telemetry::journal::snapshot();

    telemetry::reset();
    telemetry::set_op_index(0);
    run_churn(0x5eed);
    let second = telemetry::journal::snapshot();

    assert!(
        first.recorded > 0,
        "a GC-forcing churn must journal at least one event"
    );
    assert_eq!(
        first, second,
        "an identical replay must produce a bit-identical journal"
    );
}

#[test]
fn snapshots_are_deterministic_between_operations() {
    let _lock = TELEMETRY_TESTS.lock().unwrap();
    let _flags = instrumented();
    run_churn(0xbead);

    // Two back-to-back snapshots with no intervening work are equal:
    // sharded counters are summed coherently at read time, with no
    // pending per-thread state to flush.
    let first = telemetry::snapshot();
    let second = telemetry::snapshot();
    assert_eq!(first, second);

    // Same for the engine-cache facade the registry mirrors.
    let cache_a = serde_json::to_string(&gnr_flash::engine::cache::stats()).unwrap();
    let cache_b = serde_json::to_string(&gnr_flash::engine::cache::stats()).unwrap();
    assert_eq!(cache_a, cache_b);

    // And the serialized form is stable too (name-sorted maps).
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
}
