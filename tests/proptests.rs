//! Property-based tests over the core physical invariants.

use gnr_flash::capacitance::CapacitanceNetwork;
use gnr_flash::device::FgtBuilder;
use gnr_flash::geometry::FgtGeometry;
use gnr_numerics::interp::{LinearInterpolator, Pchip};
use gnr_numerics::ode::{Dopri45, OdeOptions};
use gnr_tunneling::fn_model::FnModel;
use gnr_tunneling::fn_plot::{barrier_from_b, mass_from_b};
use gnr_units::{Capacitance, Charge, ElectricField, Energy, Length, Mass, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FN current density is strictly increasing in the field magnitude.
    #[test]
    fn fn_current_monotone_in_field(
        phi_ev in 2.5f64..4.5,
        m_ratio in 0.2f64..0.8,
        e1 in 4.0e8f64..3.0e9,
        factor in 1.01f64..3.0,
    ) {
        let model = FnModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(m_ratio),
        );
        let j1 = model
            .current_density(ElectricField::from_volts_per_meter(e1))
            .as_amps_per_square_meter();
        let j2 = model
            .current_density(ElectricField::from_volts_per_meter(e1 * factor))
            .as_amps_per_square_meter();
        prop_assert!(j2 > j1);
    }

    /// FN current density decreases with barrier height (§II: "higher ΦB
    /// leads to significantly lower JFN").
    #[test]
    fn fn_current_antimonotone_in_barrier(
        phi_ev in 2.5f64..4.0,
        dphi in 0.05f64..0.8,
        e in 6.0e8f64..2.5e9,
    ) {
        let lo = FnModel::new(Energy::from_ev(phi_ev), Mass::from_electron_masses(0.42));
        let hi = FnModel::new(Energy::from_ev(phi_ev + dphi), Mass::from_electron_masses(0.42));
        let field = ElectricField::from_volts_per_meter(e);
        prop_assert!(
            lo.current_density(field).as_amps_per_square_meter()
                > hi.current_density(field).as_amps_per_square_meter()
        );
    }

    /// The FN law is odd in the field.
    #[test]
    fn fn_current_is_odd(
        phi_ev in 2.5f64..4.5,
        e in 1.0e8f64..3.0e9,
    ) {
        let model = FnModel::new(Energy::from_ev(phi_ev), Mass::from_electron_masses(0.42));
        let fwd = model
            .current_density(ElectricField::from_volts_per_meter(e))
            .as_amps_per_square_meter();
        let rev = model
            .current_density(ElectricField::from_volts_per_meter(-e))
            .as_amps_per_square_meter();
        prop_assert!((fwd + rev).abs() <= 1e-12 * fwd.abs().max(1.0));
    }

    /// B-coefficient inversions round trip for any (ΦB, m_ox).
    #[test]
    fn fn_b_inversions_round_trip(
        phi_ev in 2.0f64..5.0,
        m_ratio in 0.1f64..1.0,
    ) {
        let model = FnModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(m_ratio),
        );
        let b = model.coefficients().b;
        let phi_back = barrier_from_b(b, Mass::from_electron_masses(m_ratio));
        prop_assert!((phi_back.as_ev() - phi_ev).abs() < 1e-9);
        let m_back = mass_from_b(b, Energy::from_ev(phi_ev));
        prop_assert!((m_back.as_electron_masses() - m_ratio).abs() < 1e-9);
    }

    /// Eq. (3): VFG is linear in VGS and in QFG, with slope GCR and 1/CT.
    #[test]
    fn floating_gate_voltage_is_affine(
        gcr in 0.05f64..0.95,
        ct_af in 1.0f64..20.0,
        vgs in -20.0f64..20.0,
        q_e in -200.0f64..200.0,
    ) {
        let net = CapacitanceNetwork::from_gcr(gcr, Capacitance::from_attofarads(ct_af))
            .unwrap();
        let q = Charge::from_electrons(q_e);
        let v = net.floating_gate_voltage(Voltage::from_volts(vgs), q);
        let expected = gcr * vgs + q.as_coulombs() / (ct_af * 1e-18);
        prop_assert!((v.as_volts() - expected).abs() < 1e-9);
        // GCR bounds hold by construction.
        prop_assert!(net.gcr() > 0.0 && net.gcr() < 1.0);
    }

    /// The device charge balance always moves the charge in the direction
    /// the bias dictates from the neutral state.
    #[test]
    fn charge_rate_sign_follows_bias(vgs in 8.0f64..17.0) {
        let device = FgtBuilder::default().build().unwrap();
        let prog = device.tunneling_state(
            Voltage::from_volts(vgs),
            Voltage::ZERO,
            Charge::ZERO,
        );
        prop_assert!(prog.charge_rate_amps < 0.0, "programming stores electrons");
        let erase = device.tunneling_state(
            Voltage::from_volts(-vgs),
            Voltage::ZERO,
            Charge::ZERO,
        );
        prop_assert!(erase.charge_rate_amps > 0.0, "erase depletes electrons");
    }

    /// Geometry validation: any XTO below XCO builds; equal or above is
    /// rejected.
    #[test]
    fn geometry_ordering_invariant(xto_nm in 1.0f64..20.0, xco_nm in 1.0f64..20.0) {
        let r = FgtGeometry::new(
            Length::from_nanometers(22.0),
            Length::from_nanometers(22.0),
            Length::from_nanometers(xto_nm),
            Length::from_nanometers(xco_nm),
        );
        if xto_nm < xco_nm {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }

    /// Interpolators stay within the hull of their data.
    #[test]
    fn interpolation_within_hull(
        ys in proptest::collection::vec(-100.0f64..100.0, 4..12),
        at in 0.0f64..1.0,
    ) {
        let n = ys.len();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let x = at * (n - 1) as f64;

        let li = LinearInterpolator::new(xs.clone(), ys.clone()).unwrap();
        let yl = li.eval(x);
        prop_assert!(yl >= lo - 1e-9 && yl <= hi + 1e-9);

        // PCHIP is monotonicity/overshoot safe too.
        let pc = Pchip::new(xs, ys).unwrap();
        let yp = pc.eval(x);
        prop_assert!(yp >= lo - 1e-9 && yp <= hi + 1e-9);
    }

    /// The adaptive integrator result is invariant under tolerance
    /// refinement (within the coarser tolerance).
    #[test]
    fn ode_solution_stable_under_refinement(
        lambda in 0.1f64..5.0,
        t_end in 0.5f64..3.0,
    ) {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -lambda * y[0];
        let coarse = Dopri45::new(OdeOptions::with_tolerances(1e-6, 1e-9))
            .integrate(rhs, 0.0, &[1.0], t_end)
            .unwrap()
            .final_state()[0];
        let fine = Dopri45::new(OdeOptions::with_tolerances(1e-11, 1e-13))
            .integrate(rhs, 0.0, &[1.0], t_end)
            .unwrap()
            .final_state()[0];
        prop_assert!((coarse - fine).abs() < 1e-4 * fine.abs().max(1e-6));
        prop_assert!((fine - (-lambda * t_end).exp()).abs() < 1e-9);
    }

    /// Threshold shift is linear in stored charge with slope −1/CFC.
    #[test]
    fn vt_shift_linear_in_charge(q_e in -500.0f64..0.0) {
        let device = FgtBuilder::default().build().unwrap();
        let q = Charge::from_electrons(q_e);
        let shift = gnr_flash::threshold::vt_shift(&device, q);
        let expected = -q.as_coulombs() / device.capacitances().cfc().as_farads();
        prop_assert!((shift.as_volts() - expected).abs() < 1e-9);
        prop_assert!(shift.as_volts() >= 0.0, "stored electrons raise VT");
    }
}
