//! Combined reliability scenarios: the array, wear, disturb and margin
//! models interacting — the system-level consequences of the paper's
//! conclusion that programming speed trades against oxide reliability.

use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::disturb::DisturbBias;
use gnr_flash_array::endurance::EnduranceModel;
use gnr_flash_array::margins::{analyze, vt_histogram};
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::population::{CellPopulation, PopulationVariation};
use gnr_flash_array::retention::RetentionModel;
use gnr_units::{Charge, Temperature, Voltage};

fn small_array() -> NandArray {
    NandArray::new(NandConfig {
        blocks: 1,
        pages_per_block: 2,
        page_width: 8,
    })
}

#[test]
fn margins_survive_disturb_hammering() {
    let mut array = small_array();
    let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    array.program_page(0, 0, &bits).unwrap();
    let before = analyze(&array).unwrap().worst_case_margin.unwrap();

    // 2000 reads of page 1 disturb page 0 (and vice versa).
    for _ in 0..2000 {
        let _ = array.read_page(0, 1).unwrap();
    }
    let after = analyze(&array).unwrap().worst_case_margin.unwrap();
    assert!(after > 0.5, "margin after hammering = {after} V");
    // Disturb adds electrons everywhere; the *relative* margin loss is
    // what matters and must be small at the design pass voltage.
    assert!(
        (before - after).abs() < 0.2 * before,
        "lost {} V",
        before - after
    );
}

#[test]
fn vt_histogram_tracks_programming() {
    let mut array = small_array();
    let fresh = vt_histogram(&array, -1.0, 4.0, 8).unwrap();
    // All mass in the erased bins initially.
    let erased_mass: usize = fresh.counts()[..2].iter().sum();
    assert_eq!(erased_mass, fresh.total());

    array.program_page(0, 0, &[false; 8]).unwrap();
    let after = vt_histogram(&array, -1.0, 4.0, 8).unwrap();
    let programmed_mass: usize = after.counts()[4..].iter().sum();
    assert_eq!(programmed_mass, 8, "{:?}", after.counts());
}

#[test]
fn midlife_cell_still_passes_retention() {
    // Endurance says the window is open at 10^4 cycles. The trapped
    // charge sits in deep oxide traps (stable on retention timescales);
    // what must survive the bake is the *floating-gate* charge of the
    // programmed state. Check both pieces: the FG charge passes the
    // ten-year 85 °C bake, and the midlife trap offset has not consumed
    // the window.
    let cell = FlashCell::paper_cell();
    let model = EnduranceModel::default();
    let report = model
        .simulate(&cell, 10_000, Voltage::from_volts(1.0))
        .unwrap();
    let midpoint = report.points.last().unwrap();
    assert!(midpoint.window > 1.0);

    let mut programmed = FlashCell::paper_cell();
    programmed.program_default().unwrap();
    let retention = RetentionModel::default().ten_year_check(
        programmed.device(),
        programmed.charge(),
        Voltage::from_volts(1.0),
        Temperature::from_celsius(85.0),
    );
    assert!(
        retention.pass,
        "midlife retention: {} -> {} V",
        retention.initial_vt, retention.final_vt
    );

    // Sanity on the (stable) trap population at midlife: its VT offset is
    // real but below the remaining window.
    let injected = report.charge_per_cycle * midpoint.cycle as f64;
    let trapped = model.trapped_charge(injected);
    let offset = -(trapped / programmed.device().capacitances().cfc()).as_volts();
    assert!(offset > 0.0);
    assert!(offset < midpoint.window + midpoint.vt_erased.abs());
}

#[test]
fn pass_voltage_is_the_disturb_design_knob() {
    // Raising V_pass by 1 V must cost at least 5x in disturb rate — the
    // exponential sensitivity the array design balances.
    let device = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper();
    let bias = DisturbBias::default();
    let dq = |v: f64| {
        gnr_flash_array::disturb::disturb_charge(
            &device,
            Charge::ZERO,
            Voltage::from_volts(v),
            bias.program_exposure,
        )
        .as_coulombs()
        .abs()
    };
    let nominal = dq(bias.v_pass_program.as_volts());
    let raised = dq(bias.v_pass_program.as_volts() + 1.0);
    assert!(raised / nominal > 5.0, "sensitivity {}", raised / nominal);
}

#[test]
fn population_variation_agrees_with_monte_carlo_statistically() {
    // Two routes to the same physics: `gnr_flash::variation` clones and
    // rebuilds a mutated device per Monte-Carlo sample; the population
    // path stores per-cell deltas in SoA columns and shares one device
    // build per distinct delta. Same sigmas (the MC run's GCR spread
    // zeroed, since the columns model XTO and barrier), independent
    // seeds — the J-distribution statistics must agree.
    let device = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper();
    let vgs = gnr_flash::presets::program_vgs();

    let mc = gnr_flash::variation::run_variation(
        &device,
        vgs,
        &gnr_flash::variation::VariationSpec {
            samples: 600,
            gcr_sigma: 0.0,
            ..gnr_flash::variation::VariationSpec::default()
        },
    )
    .unwrap();

    let pop = CellPopulation::with_variation(
        device.clone(),
        600,
        &PopulationVariation {
            seed: 0x00dd_ba11,
            ..PopulationVariation::default()
        },
    )
    .unwrap();
    let (log_j, vfg) = pop.variation_stats(vgs).unwrap();

    assert!(
        (log_j.median - mc.log10_j_in.median).abs() < 0.25,
        "median log10 J: population {} vs MC {}",
        log_j.median,
        mc.log10_j_in.median
    );
    assert!(
        (log_j.std_dev / mc.log10_j_in.std_dev - 1.0).abs() < 0.35,
        "spread: population {} vs MC {}",
        log_j.std_dev,
        mc.log10_j_in.std_dev
    );
    assert!(
        (vfg.median - mc.vfg.median).abs() < 0.2,
        "VFG median: population {} vs MC {}",
        vfg.median,
        mc.vfg.median
    );
}

#[test]
fn variation_aware_array_keeps_margins_open() {
    // End-to-end: an array whose cells carry manufacturing spread still
    // programs and senses correctly — the ISPP verify loop absorbs the
    // per-cell current spread, which is its engineering purpose.
    let config = NandConfig {
        blocks: 1,
        pages_per_block: 2,
        page_width: 8,
    };
    let pop = CellPopulation::with_variation(
        gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper(),
        config.blocks * config.pages_per_block * config.page_width,
        &PopulationVariation::default(),
    )
    .unwrap();
    let mut array = NandArray::with_population(config, pop);
    let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    array.program_page(0, 0, &bits).unwrap();
    assert_eq!(array.read_page(0, 0).unwrap(), bits);
    let report = analyze(&array).unwrap();
    assert!(report.worst_case_margin.unwrap() > 0.5, "margin {report:?}");
}

#[test]
fn erase_block_restores_margins_after_wearless_cycling() {
    let mut array = small_array();
    for _ in 0..3 {
        array.program_page(0, 0, &[false; 8]).unwrap();
        array.erase_block(0).unwrap();
    }
    let report = analyze(&array).unwrap();
    // Everything erased again: one population, no programmed cells.
    assert!(report.programmed.is_none());
    assert_eq!(report.erased.unwrap().count, 16);
    assert_eq!(array.erase_count(0).unwrap(), 3);
}
