//! Property test: the engine's memoized `J(E)` tables stay within 0.5 %
//! relative error of direct FN evaluation across the field range the
//! paper's Figures 6–9 actually exercise (≈0.7–3.5 GV/m; the sweeps'
//! extremes are VGS·GCR/XTO = 8·0.5/8 nm to 17·0.8/4 nm).

use std::sync::Arc;

use gnr_flash::engine::TabulatedJ;
use gnr_tunneling::fn_model::FnModel;
use gnr_tunneling::TunnelingModel;
use gnr_units::{ElectricField, Energy, Mass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random physical barrier/mass pairs, random fields in the
    /// figures' range: the table tracks the exact law to 0.5 %.
    #[test]
    fn table_within_half_percent_of_direct_fn(
        phi_ev in 2.8f64..4.5,
        m_ratio in 0.25f64..0.65,
        fields in proptest::collection::vec(5.0e8f64..3.5e9, 16..48),
    ) {
        let exact = FnModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(m_ratio),
        );
        let table = TabulatedJ::new(Arc::new(exact));
        for e in fields {
            let field = ElectricField::from_volts_per_meter(e);
            let j_exact = exact.current_density(field).as_amps_per_square_meter();
            if j_exact == 0.0 {
                continue; // underflow region — table falls through anyway
            }
            let j_table = table.current_density(field).as_amps_per_square_meter();
            let rel = ((j_table - j_exact) / j_exact).abs();
            prop_assert!(
                rel < 5.0e-3,
                "rel err {rel:e} at E = {e:e} V/m (phi = {phi_ev} eV, m = {m_ratio} m0)"
            );
        }
    }

    /// The table preserves the two monotonicities every figure check
    /// relies on: increasing in |E| and odd in the sign.
    #[test]
    fn table_preserves_monotonicity_and_oddness(
        phi_ev in 2.8f64..4.5,
        e_base in 7.0e8f64..3.0e9,
        factor in 1.001f64..1.5,
    ) {
        let exact = FnModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(0.42),
        );
        let table = TabulatedJ::new(Arc::new(exact));
        let lo = table
            .current_density(ElectricField::from_volts_per_meter(e_base))
            .as_amps_per_square_meter();
        let hi = table
            .current_density(ElectricField::from_volts_per_meter(e_base * factor))
            .as_amps_per_square_meter();
        prop_assert!(hi > lo, "J must increase with |E|: {lo:e} !< {hi:e}");
        let rev = table
            .current_density(ElectricField::from_volts_per_meter(-e_base))
            .as_amps_per_square_meter();
        prop_assert!((lo + rev).abs() <= 1e-12 * lo.abs());
    }
}
