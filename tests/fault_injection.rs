//! Fault-injection integration: seeded [`FaultPlan`]s drive grown-bad
//! blocks, program-status failures, stuck cells and soft read flips
//! through the hardened FTL.
//!
//! The acceptance floors pinned here mirror the robustness criteria:
//! a fault-churn run that retires ≥5 % of blocks and absorbs ≥1 %
//! program-fails must complete with **zero lost live logical pages**,
//! and spare-pool exhaustion must degrade to a clean
//! [`ArrayError::ReadOnly`] — reads keep succeeding — on every device
//! backend. Fault decisions are pure functions of `(seed, local
//! state)`, so the proptests can demand bit-exact determinism and
//! query-order independence.

use gnr_flash::backend::{BackendKind, CellBackend};
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::fault::{replay_ops, FaultPlan};
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{GcChurnSource, PagePattern};
use gnr_flash_array::ArrayError;
use proptest::prelude::*;

/// SplitMix64 finalizer for picking churn targets without a stateful
/// RNG.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn fault_churn_retires_blocks_without_losing_live_pages() {
    let config = NandConfig {
        blocks: 24,
        pages_per_block: 4,
        page_width: 16,
    };
    let plan = FaultPlan {
        // Two explicit grown-bad blocks guarantee the retirement floor;
        // the seeded program-fail lottery supplies the rest.
        bad_block_after_erases: vec![(1, 2), (5, 3)],
        program_fail_probability: 0.015,
        ..FaultPlan::seeded(0x000f_a117)
    };
    let mut c = FlashController::new(config)
        .with_fault_tolerance(14)
        .with_faults(Some(plan));
    let capacity = c.logical_capacity();
    assert!(capacity > 0);

    let writes = 400usize;
    let mut mirror: Vec<Option<Vec<bool>>> = vec![None; capacity];
    for i in 0..writes {
        let lpn = (mix(0xc4a1, i as u64) % capacity as u64) as usize;
        let data = PagePattern::Seeded { seed: i as u64 }.expand(config.page_width);
        c.write_logical(lpn, &data)
            .unwrap_or_else(|e| panic!("write {i} (lpn {lpn}) failed: {e}"));
        mirror[lpn] = Some(data);
    }

    // ≥5 % of blocks retired, ≥1 % of host writes hit a program fail.
    assert!(
        c.retired_blocks() * 100 >= config.blocks * 5,
        "only {} of {} blocks retired",
        c.retired_blocks(),
        config.blocks
    );
    assert!(
        c.program_fail_count() as usize * 100 >= writes,
        "only {} program fails across {writes} writes",
        c.program_fail_count()
    );
    assert!(!c.read_only(), "spare pool sized to absorb this churn");

    // Zero lost live logical pages: every page reads back its last
    // committed copy, bit-exact.
    for (lpn, data) in mirror.iter().enumerate() {
        let Some(data) = data else { continue };
        assert_eq!(
            c.read_logical(lpn).unwrap(),
            *data,
            "live logical page {lpn} lost or corrupted"
        );
    }
    assert_eq!(
        c.live_logical_pages().len(),
        mirror.iter().filter(|d| d.is_some()).count()
    );
}

#[test]
fn spare_exhaustion_degrades_to_read_only_on_every_backend() {
    for kind in [
        BackendKind::GnrFloatingGate,
        BackendKind::CntFloatingGate,
        BackendKind::PcmResistive,
    ] {
        let backend = CellBackend::preset(kind);
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 2,
            page_width: 8,
        };
        // Every block grows bad on its first erase: the second
        // retirement overruns the single spare.
        let plan = FaultPlan {
            bad_block_after_erases: (0..config.blocks).map(|b| (b, 1)).collect(),
            ..FaultPlan::seeded(3)
        };
        let mut c = FlashController::with_backend(config, &backend)
            .with_fault_tolerance(1)
            .with_faults(Some(plan));
        let capacity = c.logical_capacity();

        let mut mirror: Vec<Option<Vec<bool>>> = vec![None; capacity];
        let mut read_only_seen = false;
        for i in 0..64 {
            let lpn = i % capacity;
            let data = PagePattern::Seeded { seed: i as u64 }.expand(config.page_width);
            match c.write_logical(lpn, &data) {
                Ok(_) => mirror[lpn] = Some(data),
                Err(ArrayError::ReadOnly) => {
                    read_only_seen = true;
                    break;
                }
                Err(e) => panic!("{}: unexpected write error: {e}", kind.name()),
            }
        }
        // Degradation is an error, not a panic — and it is sticky.
        assert!(read_only_seen, "{}: never degraded", kind.name());
        assert!(c.read_only(), "{}", kind.name());
        assert!(matches!(
            c.write_logical(0, &vec![false; config.page_width]),
            Err(ArrayError::ReadOnly)
        ));
        // Reads still succeed after degradation: grown-bad blocks fail
        // erase, not read, so every committed copy stays reachable.
        for (lpn, data) in mirror.iter().enumerate() {
            let Some(data) = data else { continue };
            assert_eq!(
                c.read_logical(lpn).unwrap(),
                *data,
                "{}: lpn {lpn} unreadable after read-only degradation",
                kind.name()
            );
        }
    }
}

#[test]
fn stuck_cells_and_read_flips_are_deterministic_and_visible() {
    let config = NandConfig {
        blocks: 3,
        pages_per_block: 2,
        page_width: 16,
    };
    let plan = FaultPlan {
        stuck_cell_fraction: 0.3,
        read_flip_probability: 0.1,
        ..FaultPlan::seeded(11)
    };
    let mut c = FlashController::new(config).with_faults(Some(plan.clone()));
    let written = PagePattern::Seeded { seed: 77 }.expand(config.page_width);
    c.write_logical(0, &written).unwrap();

    // Re-reads inside one erase generation reproduce the same bits —
    // flips are drawn per (cell, generation), not per read.
    let first = c.read_logical(0).unwrap();
    let second = c.read_logical(0).unwrap();
    assert_eq!(first, second);
    assert_ne!(first, written, "a 30 % stuck fraction must be visible");

    // Stuck cells dominate whatever was programmed, at exactly the
    // columns the plan's pure lottery names.
    let addr = c.physical_of(0).unwrap();
    let mut stuck_seen = 0;
    for (column, bit) in first.iter().enumerate() {
        let cell = c.array().cell_index(addr.block, addr.page, column);
        if let Some(stuck) = plan.stuck_bit(cell) {
            assert_eq!(*bit, stuck, "column {column} ignores its stuck-at");
            stuck_seen += 1;
        }
    }
    assert!(
        stuck_seen > 0,
        "seed 11 must stick at least one of 16 cells"
    );

    // The same array without a plan reads back clean.
    let mut clean = FlashController::new(config);
    clean.write_logical(0, &written).unwrap();
    assert_eq!(clean.read_logical(0).unwrap(), written);
}

/// A faulted churn run reduced to its digest; errors (e.g. spare
/// exhaustion under an aggressive plan) truncate the run identically
/// on every replay, so the digest is still well-defined.
fn faulted_churn_digest(plan: &FaultPlan, trace_seed: u64) -> u64 {
    let config = NandConfig {
        blocks: 8,
        pages_per_block: 2,
        page_width: 8,
    };
    let mut c = FlashController::new(config)
        .with_fault_tolerance(2)
        .with_faults(Some(plan.clone()));
    let capacity = c.logical_capacity();
    let source = GcChurnSource::new(capacity, 2 * capacity, trace_seed);
    let _ = replay_ops(&mut c, &source, 0, capacity + 2 * capacity);
    c.state_digest()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault decisions are pure functions of `(seed, local state)`:
    /// evaluating any query set forwards and backwards gives identical
    /// answers — no hidden sequencing state.
    #[test]
    fn fault_decisions_are_query_order_independent(
        seed in 0u64..u64::MAX,
        raw_queries in proptest::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        // Each raw word unpacks into one (block, page, generation)
        // query — the shim has no tuple strategies.
        let queries: Vec<(usize, usize, u64)> = raw_queries
            .iter()
            .map(|q| ((q % 64) as usize, ((q >> 8) % 8) as usize, (q >> 16) % 4))
            .collect();
        let plan = FaultPlan {
            grown_bad_fraction: 0.3,
            grown_bad_min_erases: 1,
            grown_bad_max_erases: 4,
            stuck_cell_fraction: 0.1,
            read_flip_probability: 0.1,
            program_fail_probability: 0.1,
            ..FaultPlan::seeded(seed)
        };
        let ask = |&(block, page, generation): &(usize, usize, u64)| {
            (
                plan.program_fails(block, page, generation),
                plan.block_goes_bad(block, generation),
                plan.stuck_bit(block * 8 + page),
                plan.read_flips(block * 8 + page, generation),
                plan.grown_bad_threshold(block),
            )
        };
        let forward: Vec<_> = queries.iter().map(ask).collect();
        let mut backward: Vec<_> = queries.iter().rev().map(ask).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// The same seeded plan over the same trace reproduces the full
    /// controller state digest; a different fault seed diverges the
    /// trajectory.
    #[test]
    fn seeded_fault_plans_replay_deterministically(seed in 0u64..u64::MAX) {
        let plan = FaultPlan {
            program_fail_probability: 0.05,
            read_flip_probability: 0.02,
            ..FaultPlan::seeded(seed)
        };
        let a = faulted_churn_digest(&plan, 0x5eed);
        let b = faulted_churn_digest(&plan, 0x5eed);
        prop_assert_eq!(a, b);
        let c = faulted_churn_digest(&plan, 0x5eed ^ 0x5a5a);
        prop_assert_ne!(a, c);
    }
}
