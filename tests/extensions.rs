//! Integration tests for the extension modules: design optimisation
//! (paper §V future work), MLC operation, Tsu–Esaki validation and the
//! tight-binding band structure feeding the device stack.

use gnr_flash::optimize::{fastest_reliable_program, DesignSpec};
use gnr_flash_array::mlc::{MlcCell, MlcState};
use gnr_materials::gnr::{Edge, Nanoribbon};
use gnr_materials::gnr_bands::AgnrBands;
use gnr_materials::mlgnr::MultilayerGnr;
use gnr_tunneling::tsu_esaki::TsuEsakiModel;
use gnr_units::{ElectricField, Length, Mass};

#[test]
fn optimizer_beats_the_naive_grid_and_respects_stress() {
    let spec = DesignSpec::default();
    let opt = fastest_reliable_program(&spec).unwrap();
    assert!(opt.stress <= spec.max_stress + 1e-3);

    // Compare against a coarse feasible grid: the continuous optimum must
    // be at least as fast as every feasible grid point.
    let mut best_grid = 0.0f64;
    for vgs in [9.0, 11.0, 13.0, 15.0, 17.0] {
        for xto in [4.0, 5.0, 6.0, 7.0, 8.0] {
            let geometry = gnr_flash::geometry::FgtGeometry::paper_nominal()
                .with_tunnel_oxide(Length::from_nanometers(xto))
                .unwrap();
            let device = gnr_flash::device::FgtBuilder::default()
                .geometry(geometry)
                .gcr(spec.gcr)
                .build()
                .unwrap();
            let v = gnr_units::Voltage::from_volts(vgs);
            let (stress, _) =
                device.stress_ratios(v, gnr_units::Voltage::ZERO, gnr_units::Charge::ZERO);
            if stress <= spec.max_stress {
                let j = device
                    .tunneling_state(v, gnr_units::Voltage::ZERO, gnr_units::Charge::ZERO)
                    .tunnel_flow
                    .abs()
                    .as_amps_per_square_meter();
                best_grid = best_grid.max(j);
            }
        }
    }
    assert!(
        opt.j_program >= 0.99 * best_grid,
        "optimum {:.3e} must match/beat grid best {best_grid:.3e}",
        opt.j_program
    );
}

#[test]
fn mlc_survives_a_full_state_tour() {
    let mut cell = MlcCell::paper_cell();
    // Visit every state from every other state.
    for from in MlcState::all() {
        for to in MlcState::all() {
            cell.program(from).unwrap();
            assert_eq!(cell.read(), from);
            cell.program(to).unwrap();
            assert_eq!(cell.read(), to, "{from:?} -> {to:?}");
        }
    }
}

#[test]
fn tsu_esaki_brackets_the_device_current() {
    // The device's analytic programming current should be within an order
    // of magnitude of the first-principles supply-function result.
    let device = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper();
    let model = device.channel_emission_model();
    let te = TsuEsakiModel::free_emitter(
        model.barrier(),
        device.geometry().tunnel_oxide_thickness(),
        model.effective_mass(),
    );
    let field = ElectricField::from_volts_per_meter(1.8e9);
    let j_analytic = model.current_density(field).as_amps_per_square_meter();
    let j_numeric = te.current_density(field).as_amps_per_square_meter();
    let ratio = j_numeric / j_analytic;
    assert!((0.05..20.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn tight_binding_confirms_the_paper_channel_is_conductive() {
    // The paper channel ribbon (N = 18, 3p family) has a moderate gap —
    // small enough for thermal carriers at programming fields, which is
    // what lets it source FN electrons.
    let channel = MultilayerGnr::paper_channel();
    let bands = AgnrBands::new(channel.ribbon()).unwrap();
    let gap = bands.band_gap().as_ev();
    assert!(gap < 1.0, "TB gap {gap} eV");
    assert!(gap > 0.0);
    // And a deliberately metallic ribbon (3p+2) has none.
    let metallic = Nanoribbon::new(Edge::Armchair, 17).unwrap();
    assert!(AgnrBands::new(metallic).unwrap().is_metallic());
}

#[test]
fn optimizer_design_point_is_usable_end_to_end() {
    // Build the optimal device and actually program it.
    let opt = fastest_reliable_program(&DesignSpec::default()).unwrap();
    let geometry = gnr_flash::geometry::FgtGeometry::paper_nominal()
        .with_tunnel_oxide(Length::from_nanometers(opt.xto_nm))
        .unwrap();
    let device = gnr_flash::device::FgtBuilder::default()
        .geometry(geometry)
        .gcr(DesignSpec::default().gcr)
        .build()
        .unwrap();
    let result = gnr_flash::transient::TransientSimulator::new(&device)
        .run(&gnr_flash::transient::ProgramPulseSpec::program(
            gnr_units::Voltage::from_volts(opt.vgs),
        ))
        .unwrap();
    assert!(result.saturation_time().is_some());
    assert!(result.final_charge().as_coulombs() < 0.0);
}

#[test]
fn effective_masses_flow_into_tunneling() {
    // The TB effective mass of a semiconducting ribbon is of the same
    // order as the oxide masses used in the FN models — a consistency
    // check across the materials/tunneling boundary.
    let ribbon = Nanoribbon::new(Edge::Armchair, 13).unwrap();
    let m = AgnrBands::new(ribbon).unwrap().effective_mass().unwrap();
    let m_ox = Mass::from_electron_masses(0.42);
    let ratio = m.as_kilograms() / m_ox.as_kilograms();
    assert!((0.01..10.0).contains(&ratio), "ratio {ratio}");
}
