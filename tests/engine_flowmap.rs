//! Flow-map pulse-response cache: parity, semigroup and fallback
//! contracts.
//!
//! The flow map answers `(Q0, Δt)` pulse queries from one master
//! trajectory per `(device, bias)` — these tests pin the three
//! properties the fast path rests on:
//!
//! * **Parity** — flow-map final charge matches the exact engine to
//!   ≤1e-6 relative error across the realistic charge range;
//! * **Semigroup/nesting** — `Q(t1+t2; Q0) == Q(t2; Q(t1; Q0))`: two
//!   chained lookups land where one long lookup lands (what makes ISPP
//!   ladders, which re-enter the map with interpolated charges,
//!   trustworthy);
//! * **Monotone inverse + fallback boundary** — queries preserve charge
//!   order, leave the tabulated range as `None`, and the engine's
//!   fallback then reproduces the exact path bit-for-bit;
//! * **Batch/scalar bit-identity** — the column-batched merge walk
//!   answers every cell (including fallback flags) bit-identically to a
//!   scalar `final_charge` loop, for unsorted and duplicate-laden
//!   columns.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{flowmap, ChargeBalanceEngine, EngineMode};
use gnr_flash::transient::ProgramPulseSpec;
use gnr_units::{Charge, Time, Voltage};
use proptest::prelude::*;

/// Pulse amplitudes drawn from the recipes the array layer actually
/// applies (ISPP rungs 13..16 V, erase rungs, the soft-program point) —
/// a small discrete set so the proptest cases share cached masters
/// instead of integrating a fresh one per case.
const AMPLITUDES: [f64; 6] = [13.0, 14.0, 15.0, 16.0, -15.0, 11.0];

fn engine() -> ChargeBalanceEngine {
    ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
}

/// A converged exact reference: the default runtime tolerances (1e-8)
/// themselves drift a few ppm on shrinking charges, so the ≤1e-6 parity
/// bar is measured against an integration tightened past the bar.
fn reference_engine() -> ChargeBalanceEngine {
    ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
        .with_mode(EngineMode::Exact)
        .with_ode_options(gnr_numerics::ode::OdeOptions::with_tolerances(
            1.0e-12, 1.0e-14,
        ))
}

/// Converged exact final charge of one fixed-duration pulse.
fn exact_final(reference: &ChargeBalanceEngine, vgs: f64, q0: f64, dt: f64) -> Option<f64> {
    let spec = ProgramPulseSpec::program(Voltage::from_volts(vgs))
        .with_initial_charge(Charge::from_coulombs(q0))
        .with_duration(Time::from_seconds(dt));
    reference
        .run(&spec)
        .ok()
        .map(|r| r.final_charge().as_coulombs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flow-map vs exact-engine parity: ≤1e-6 relative final-charge
    /// error over the realistic charge range and pulse widths.
    #[test]
    fn flow_map_matches_exact_engine(
        amp_idx in 0usize..AMPLITUDES.len(),
        vt0 in -1.0f64..5.0,
        dt_log in -7.0f64..-3.0,
    ) {
        let engine = engine();
        let vgs = AMPLITUDES[amp_idx];
        let cfc = engine.device().capacitances().cfc().as_farads();
        let q0 = -vt0 * cfc;
        let dt = 10.0f64.powf(dt_log);
        let map = flowmap::cached(&engine, Voltage::from_volts(vgs), Voltage::ZERO);
        if let (Some(fast), Some(exact)) =
            (map.final_charge(q0, dt), exact_final(&reference_engine(), vgs, q0, dt))
        {
            let rel = ((fast - exact) / exact.abs().max(1e-30)).abs();
            prop_assert!(rel <= 1.0e-6, "vgs {vgs} V, vt0 {vt0} V, dt {dt:e}: rel {rel:e}");
        }
    }

    /// Semigroup/nesting: answering one `t1 + t2` pulse must equal
    /// answering `t1` and feeding the result back in for `t2`.
    #[test]
    fn flow_map_composes_as_a_semigroup(
        amp_idx in 0usize..AMPLITUDES.len(),
        vt0 in -1.0f64..5.0,
        t1_log in -7.0f64..-4.0,
        t2_log in -7.0f64..-4.0,
    ) {
        let engine = engine();
        let vgs = AMPLITUDES[amp_idx];
        let cfc = engine.device().capacitances().cfc().as_farads();
        let q0 = -vt0 * cfc;
        let (t1, t2) = (10.0f64.powf(t1_log), 10.0f64.powf(t2_log));
        let map = flowmap::cached(&engine, Voltage::from_volts(vgs), Voltage::ZERO);
        let whole = map.final_charge(q0, t1 + t2);
        let step1 = map.final_charge(q0, t1);
        if let (Some(whole), Some(q_mid)) = (whole, step1) {
            if let Some(nested) = map.final_charge(q_mid, t2) {
                let rel = ((nested - whole) / whole.abs().max(1e-30)).abs();
                prop_assert!(
                    rel <= 2.0e-6,
                    "vgs {vgs} V, vt0 {vt0} V, t1 {t1:e}, t2 {t2:e}: rel {rel:e}"
                );
            }
        }
    }

    /// The inverse lookup is monotone: charge order is preserved under
    /// any shared pulse (trajectories of a 1-D autonomous flow cannot
    /// cross), and a longer hold never moves the charge backwards.
    #[test]
    fn flow_map_queries_preserve_order(
        amp_idx in 0usize..AMPLITUDES.len(),
        vt_a in -1.0f64..5.0,
        vt_gap in 0.01f64..2.0,
        dt_log in -7.0f64..-4.0,
    ) {
        let engine = engine();
        let vgs = AMPLITUDES[amp_idx];
        let cfc = engine.device().capacitances().cfc().as_farads();
        let (q_a, q_b) = (-vt_a * cfc, -(vt_a + vt_gap) * cfc); // q_b < q_a
        let dt = 10.0f64.powf(dt_log);
        let map = flowmap::cached(&engine, Voltage::from_volts(vgs), Voltage::ZERO);
        if let (Some(out_a), Some(out_b)) =
            (map.final_charge(q_a, dt), map.final_charge(q_b, dt))
        {
            prop_assert!(
                out_b <= out_a + 1e-24,
                "order flipped: Q({q_b:e}) -> {out_b:e} vs Q({q_a:e}) -> {out_a:e}"
            );
        }
        // Monotone in the hold time along the flow direction.
        if let (Some(short), Some(long)) =
            (map.final_charge(q_a, dt), map.final_charge(q_a, 2.0 * dt))
        {
            let d_short = short - q_a;
            let d_long = long - q_a;
            prop_assert!(
                d_long.abs() >= d_short.abs() - 1e-24 && d_short * d_long >= 0.0,
                "longer hold moved less: {d_short:e} vs {d_long:e}"
            );
        }
    }

    /// The column-batched merge walk is the scalar lookup, cell for
    /// cell: every answer — including the `None` fallback flags for
    /// out-of-span charges and past-horizon holds — is bit-identical to
    /// a `final_charge` loop. The drawn VT range deliberately overshoots
    /// the tabulated span on both sides, the hold range runs past the
    /// horizon, and a sampled suffix of duplicates keeps the column
    /// unsorted, so the cursors' re-seek path is exercised too.
    #[test]
    fn batched_queries_match_the_scalar_loop_bitwise(
        amp_idx in 0usize..AMPLITUDES.len(),
        vts in proptest::collection::vec(-4.0f64..9.0, 1..24),
        dups in proptest::collection::vec(0usize..1usize << 16, 0..8),
        dt_log in -7.0f64..-1.0,
    ) {
        let engine = engine();
        let vgs = AMPLITUDES[amp_idx];
        let cfc = engine.device().capacitances().cfc().as_farads();
        let mut q0s: Vec<f64> = vts.iter().map(|&vt| -vt * cfc).collect();
        for &pick in &dups {
            let repeat = q0s[pick % vts.len()];
            q0s.push(repeat);
        }
        let dt = 10.0f64.powf(dt_log);
        let map = flowmap::cached(&engine, Voltage::from_volts(vgs), Voltage::ZERO);

        let mut batch = vec![None; q0s.len()];
        map.final_charges_batch(&q0s, dt, &mut batch);
        for (i, (&q0, &got)) in q0s.iter().zip(&batch).enumerate() {
            let want = map.final_charge(q0, dt);
            prop_assert!(
                want.map(f64::to_bits) == got.map(f64::to_bits),
                "cell {i} (vgs {vgs} V, q0 {q0:e} C, dt {dt:e} s): \
                 scalar {want:?} vs batch {got:?}"
            );
        }
    }
}

#[test]
fn out_of_range_queries_fall_back_to_the_exact_engine() {
    let engine = engine();
    let vgs = Voltage::from_volts(15.0);
    let map = flowmap::cached(&engine, vgs, Voltage::ZERO);
    let (lo, hi) = map.charge_range().expect("paper program bias tabulates");

    // Outside the tabulated charge range the map declines…
    let far = hi + (hi - lo);
    assert_eq!(map.final_charge(far, 1.0e-5), None);

    // …and the engine's fallback answers bit-identically to exact mode.
    let spec = ProgramPulseSpec::program(vgs)
        .with_initial_charge(Charge::from_coulombs(far))
        .with_duration(Time::from_microseconds(10.0));
    let exact_engine = ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
        .with_mode(EngineMode::Exact);
    match (
        engine.pulse_final_charge(&spec),
        exact_engine.pulse_final_charge(&spec),
    ) {
        (Ok(fast), Ok(exact)) => assert_eq!(
            fast.as_coulombs(),
            exact.as_coulombs(),
            "fallback must be the exact path, bit for bit"
        ),
        (Err(_), Err(_)) => {} // both reject the bias the same way
        (fast, exact) => panic!("fallback diverged: {fast:?} vs {exact:?}"),
    }
}

#[test]
fn saturation_boundary_pulses_fall_back() {
    // A pulse long enough to ride past the integrated horizon (deep in
    // the balance tail) is declined by the map, and the engine's
    // fallback then answers bit-identically to exact mode.
    let engine = engine();
    let vgs = Voltage::from_volts(15.0);
    let map = flowmap::cached(&engine, vgs, Voltage::ZERO);
    // Any window ending past the horizon is declined, wherever it
    // starts.
    let dt = map.horizon_seconds().expect("non-empty map") * 1.01;
    assert_eq!(map.final_charge(0.0, dt), None);

    let spec = ProgramPulseSpec::program(vgs).with_duration(Time::from_seconds(dt));
    let fast = engine
        .pulse_final_charge(&spec)
        .expect("fallback integrates");
    let exact = ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
        .with_mode(EngineMode::Exact)
        .pulse_final_charge(&spec)
        .expect("exact integrates");
    assert_eq!(fast.as_coulombs(), exact.as_coulombs());
}

#[test]
fn flow_map_cache_reports_traffic() {
    let engine = engine();
    let vgs = Voltage::from_volts(13.731);
    let before = gnr_flash::engine::cache::stats();
    let _ = flowmap::cached(&engine, vgs, Voltage::ZERO);
    let _ = flowmap::cached(&engine, vgs, Voltage::ZERO);
    let after = gnr_flash::engine::cache::stats();
    assert!(after.flow_maps.hits > before.flow_maps.hits);
    assert!(after.flow_maps.entries >= 1);
    assert!(after.flow_maps.misses >= before.flow_maps.misses);
}
