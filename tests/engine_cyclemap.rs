//! P/E cycle-map contracts: composed jumps vs explicit pulse-by-pulse
//! replay.
//!
//! The cycle map answers "where is this cell after `n` P/E cycles" from
//! one precomposed charge-to-charge map per `(device, recipe)` — these
//! tests pin the two properties epoch jumping rests on:
//!
//! * **Parity** — `iterate(q0, n)` lands within ≤1e-6 relative charge
//!   error of `n` explicit [`cycle_once`] cycles (each of which is
//!   itself pulse-by-pulse flow-map replay), across the tabulated span
//!   and jump lengths spanning three decades;
//! * **Fallback bit-identity** — a query outside the tabulated span
//!   escapes to the explicit path and must match it bit-for-bit, wear
//!   included.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{cycle_once, ChargeBalanceEngine, CycleRecipe};
use gnr_flash::pulse::SquarePulse;
use gnr_units::{Time, Voltage};
use proptest::prelude::*;

/// The ISPP-shaped cycle the array layer composes: three program rungs
/// then two erase rungs, 10 µs each — a fixed train so every proptest
/// case shares one cached map instead of building its own.
fn recipe() -> CycleRecipe {
    let rung = |v: f64| SquarePulse::new(Voltage::from_volts(v), Time::from_microseconds(10.0));
    CycleRecipe::new(vec![
        rung(13.0),
        rung(13.5),
        rung(14.0),
        rung(-13.0),
        rung(-13.5),
    ])
}

fn engine() -> ChargeBalanceEngine {
    ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
}

/// `n` explicit cycles — by construction identical to pulse-by-pulse
/// flow-map replay of the whole train.
fn explicit(engine: &ChargeBalanceEngine, recipe: &CycleRecipe, q0: f64, n: u64) -> (f64, f64) {
    let mut q = q0;
    let mut wear = 0.0;
    for _ in 0..n {
        let out = cycle_once(engine, recipe, q).unwrap();
        q = out.charge;
        wear += out.wear;
    }
    (q, wear)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Composed jumps match explicit pulse-by-pulse cycling to ≤1e-6
    /// relative charge error anywhere in the tabulated span, for jump
    /// lengths from 1 to ~1000 cycles (covering several squaring
    /// levels and mixed-level greedy decompositions).
    #[test]
    fn iterate_matches_pulse_by_pulse_replay(
        frac in 0.02f64..0.98,
        n in 1u64..1000,
    ) {
        let engine = engine();
        let recipe = recipe();
        let map = engine.cycle_map(&recipe).expect("flow-map engine is eligible");
        let (lo, hi) = map.charge_range().expect("non-empty map");
        let q0 = lo + frac * (hi - lo);
        let fast = map.iterate(&engine, q0, n).unwrap();
        let (q_ref, wear_ref) = explicit(&engine, &recipe, q0, n);
        let rel = ((fast.charge - q_ref) / q_ref.abs().max(1e-30)).abs();
        prop_assert!(
            rel <= 1.0e-6,
            "q0 {q0:e}, n {n}: charge rel err {rel:e}"
        );
        // Wear is an interpolated running integral — hold it to the
        // same bar relative to its own (growing) magnitude.
        let wear_rel = ((fast.wear - wear_ref) / wear_ref.abs().max(1e-30)).abs();
        prop_assert!(
            wear_rel <= 1.0e-4,
            "q0 {q0:e}, n {n}: wear rel err {wear_rel:e}"
        );
    }

    /// Out-of-span starts escape to the explicit path bit-for-bit:
    /// charge AND wear of the fallback must equal pulse-by-pulse
    /// replay exactly, not approximately.
    #[test]
    fn fallback_escapes_are_bitwise_explicit(
        overhang in 0.1f64..3.0,
        n in 1u64..16,
        side in 0u8..2,
    ) {
        let engine = engine();
        let recipe = recipe();
        let map = engine.cycle_map(&recipe).expect("flow-map engine is eligible");
        let (lo, hi) = map.charge_range().expect("non-empty map");
        let span = hi - lo;
        let q0 = if side == 0 { hi + overhang * span } else { lo - overhang * span };
        let fast = map.iterate(&engine, q0, n).unwrap();
        let (q_ref, wear_ref) = explicit(&engine, &recipe, q0, n);
        prop_assert_eq!(fast.charge.to_bits(), q_ref.to_bits());
        prop_assert_eq!(fast.wear.to_bits(), wear_ref.to_bits());
    }

    /// Fixed-chunk advancement is deterministic: the same `(q0, n)`
    /// query through the shared cache answers bit-identically on every
    /// call — the property campaign resume leans on when it re-runs a
    /// chunk sequence.
    #[test]
    fn repeated_queries_are_bit_identical(
        frac in 0.05f64..0.95,
        n in 1u64..200,
    ) {
        let engine = engine();
        let recipe = recipe();
        let map = engine.cycle_map(&recipe).expect("flow-map engine is eligible");
        let (lo, hi) = map.charge_range().expect("non-empty map");
        let q0 = lo + frac * (hi - lo);
        let a = map.iterate(&engine, q0, n).unwrap();
        let b = map.iterate(&engine, q0, n).unwrap();
        prop_assert_eq!(a.charge.to_bits(), b.charge.to_bits());
        prop_assert_eq!(a.wear.to_bits(), b.wear.to_bits());
    }
}

/// Exact-mode engines must refuse to hand out interpolated jump maps —
/// their per-pulse contract is converged integration, and a composed
/// interpolant would silently break it.
#[test]
fn exact_mode_engines_are_ineligible_for_cycle_maps() {
    let exact = engine().with_mode(gnr_flash::engine::EngineMode::Exact);
    assert!(exact.cycle_map(&recipe()).is_none());
    assert!(engine().cycle_map(&recipe()).is_some());
}
