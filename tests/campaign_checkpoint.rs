//! Campaign checkpointing: restore-equals-uninterrupted, bit for bit.
//!
//! An endurance campaign checkpointed at *any* step boundary — mid-epoch
//! (between cycle chunks) or mid-observation-window (between replay
//! segments) — and resumed from the serialized JSON in a "fresh process"
//! (everything rebuilt from the blueprint + checkpoint alone) must land
//! on the same final controller digest, the same margin digest and the
//! same reliability trajectory as the run that never stopped.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::ispp::nominal_cycle_recipe;
use gnr_flash_array::margins;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{CampaignCheckpoint, CampaignRunner, EnduranceCampaign};
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::{ReliabilityObserver, ReliabilityPoint};

fn config() -> NandConfig {
    NandConfig {
        blocks: 3,
        pages_per_block: 2,
        page_width: 16,
    }
}

fn campaign() -> EnduranceCampaign {
    EnduranceCampaign {
        rounds: 2,
        cycles_per_round: 5,
        // Chunked epochs: steps advance 2, 2, 1 cycles, so checkpoints
        // can land mid-epoch.
        epoch_chunk: 2,
        recipe: nominal_cycle_recipe().unwrap(),
        // Window length = capacity (4) + 5 = 9 ops; segments of 3 put
        // checkpoints mid-window too.
        window_overwrites: 5,
        window_segment: 3,
        window_seed: 0xC0FFEE,
    }
}

fn observer() -> ReliabilityObserver {
    ReliabilityObserver::new(&EccConfig::Bch { m: 4, t: 2 }, BerModel::default(), None).unwrap()
}

/// Runs the whole campaign in one process; returns the final digests
/// and the full reliability trajectory.
fn uninterrupted() -> (u64, u64, Vec<ReliabilityPoint>) {
    let c = campaign();
    let mut controller = FlashController::new(config());
    let mut obs = observer();
    let mut runner = CampaignRunner::new(&c);
    runner.run_to_end(&mut controller, &mut obs).unwrap();
    (
        controller.state_digest(),
        margins::state_digest(controller.array()),
        obs.trajectory,
    )
}

/// Runs `prefix` steps, checkpoints through JSON, then resumes from the
/// decoded checkpoint as a fresh process would (new controller, new
/// runner, new observer with only the pass counter restored) and
/// finishes the campaign.
fn resumed_after(prefix: usize) -> (u64, u64, Vec<ReliabilityPoint>) {
    let c = campaign();
    let mut controller = FlashController::new(config());
    let mut obs = observer();
    let mut runner = CampaignRunner::new(&c);
    for _ in 0..prefix {
        runner
            .step(&mut controller, &mut obs)
            .unwrap()
            .expect("prefix must not exhaust the campaign");
    }
    let checkpoint = CampaignCheckpoint {
        controller: controller.snapshot(),
        state: runner.state(),
    };
    let json = serde_json::to_string(&checkpoint).unwrap();
    let passes = obs.next_pass();
    let mut prefix_trajectory = obs.trajectory;

    // "New process": everything below is rebuilt from the blueprint and
    // the JSON alone.
    let decoded = CampaignCheckpoint::from_json(&json).unwrap();
    let mut controller = FlashController::restore(
        FloatingGateTransistor::mlgnr_cnt_paper(),
        decoded.controller,
    )
    .unwrap();
    let c2 = campaign();
    let mut runner = CampaignRunner::resume(&c2, decoded.state);
    let mut obs = observer();
    obs.set_next_pass(passes);
    runner.run_to_end(&mut controller, &mut obs).unwrap();
    prefix_trajectory.extend(obs.trajectory);
    (
        controller.state_digest(),
        margins::state_digest(controller.array()),
        prefix_trajectory,
    )
}

#[test]
fn resume_is_digest_identical_to_uninterrupted() {
    let (digest, margin_digest, trajectory) = uninterrupted();
    // Step layout per round: 3 epoch chunks + 3 window segments.
    // Prefix 1/2 checkpoint mid-epoch, 4/5 mid-window, 7 mid-epoch of
    // round 2, 10 mid-window of round 2.
    for prefix in [1, 2, 4, 5, 7, 10] {
        let (r_digest, r_margin, r_trajectory) = resumed_after(prefix);
        assert_eq!(
            r_digest, digest,
            "controller digest diverged after resume at step {prefix}"
        );
        assert_eq!(
            r_margin, margin_digest,
            "margin digest diverged after resume at step {prefix}"
        );
        assert_eq!(
            r_trajectory, trajectory,
            "reliability trajectory diverged after resume at step {prefix}"
        );
    }
}

#[test]
fn snapshot_restore_round_trips_without_stepping() {
    let mut controller = FlashController::new(config());
    let c = campaign();
    let mut runner = CampaignRunner::new(&c);
    let mut obs = observer();
    for _ in 0..3 {
        runner.step(&mut controller, &mut obs).unwrap();
    }
    let digest = controller.state_digest();
    let snap = controller.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let decoded = gnr_flash_array::controller::ControllerSnapshot::from_value(
        &serde_json::from_str(&json).unwrap(),
    )
    .unwrap();
    let restored =
        FlashController::restore(FloatingGateTransistor::mlgnr_cnt_paper(), decoded).unwrap();
    assert_eq!(restored.state_digest(), digest);
    assert_eq!(restored.live_pages(), controller.live_pages());
    assert_eq!(
        restored.wear_stats().unwrap().total_erases,
        controller.wear_stats().unwrap().total_erases
    );
}
