//! Array-level integration: NAND pages, the controller, NOR/CHE, and the
//! reliability models working over the same device physics.

use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::endurance::EnduranceModel;
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::nor::{CheBias, NorCell};
use gnr_flash_array::retention::RetentionModel;
use gnr_units::{Temperature, Voltage};

fn config() -> NandConfig {
    NandConfig {
        blocks: 2,
        pages_per_block: 3,
        page_width: 8,
    }
}

#[test]
fn page_program_preserves_unselected_pages() {
    let mut array = NandArray::new(config());
    let data = vec![false, true, false, true, false, true, false, true];
    array.program_page(0, 1, &data).unwrap();
    assert_eq!(array.read_page(0, 1).unwrap(), data);
    for page in [0, 2] {
        assert_eq!(
            array.read_page(0, page).unwrap(),
            vec![true; 8],
            "page {page} must stay erased"
        );
    }
    // And the other block is untouched entirely.
    assert_eq!(array.read_page(1, 0).unwrap(), vec![true; 8]);
}

#[test]
fn controller_survives_many_writes() {
    let mut ctrl = FlashController::new(config());
    for i in 0..20usize {
        let data: Vec<bool> = (0..8).map(|c| (c + i) % 2 == 0).collect();
        let addr = ctrl.write(&data).unwrap();
        assert_eq!(ctrl.read(addr).unwrap(), data, "write {i}");
    }
    let wear = ctrl.wear_stats().unwrap();
    assert!(wear.total_erases > 0);
    assert!(
        wear.max_erases - wear.min_erases <= 1,
        "wear levelled: {wear:?}"
    );
}

#[test]
fn nor_and_nand_programming_reach_comparable_states() {
    // CHE and FN both store electrons; the stored charges should be the
    // same order of magnitude (both are bounded by CT × a few volts).
    let mut nand_cell = FlashCell::paper_cell();
    nand_cell.program_default().unwrap();
    let mut nor = NorCell::new(FlashCell::paper_cell());
    nor.program_che(&CheBias::default());
    let q_fn = nand_cell.charge().as_coulombs().abs();
    let q_che = nor.cell().charge().as_coulombs().abs();
    let ratio = q_fn.max(q_che) / q_fn.min(q_che);
    assert!(ratio < 10.0, "stored-charge ratio {ratio}");
}

#[test]
fn endurance_and_retention_compose() {
    // Window at the endurance midpoint still passes a room-temperature
    // retention check — reliability models agree with each other.
    let cell = FlashCell::paper_cell();
    let endurance = EnduranceModel::default()
        .simulate(&cell, 100_000, Voltage::from_volts(1.0))
        .unwrap();
    let midlife = &endurance.points[endurance.points.len() / 2];
    assert!(midlife.window > 1.0, "midlife window {}", midlife.window);

    let mut programmed = FlashCell::paper_cell();
    programmed.program_default().unwrap();
    let retention = RetentionModel::default().ten_year_check(
        programmed.device(),
        programmed.charge(),
        Voltage::from_volts(1.0),
        Temperature::room(),
    );
    assert!(retention.pass);
}

#[test]
fn erase_block_resets_wear_tracked_pages() {
    let mut array = NandArray::new(config());
    let data = vec![false; 8];
    array.program_page(0, 0, &data).unwrap();
    array.program_page(0, 1, &data).unwrap();
    assert!(!array.is_page_erased(0, 0).unwrap());
    array.erase_block(0).unwrap();
    for page in 0..3 {
        assert!(array.is_page_erased(0, page).unwrap());
        assert_eq!(array.read_page(0, page).unwrap(), vec![true; 8]);
    }
    assert_eq!(array.erase_count(0).unwrap(), 1);
}
