//! Power-loss crash consistency, swept exhaustively: a GC-churn trace
//! is cut at **every** op-clock index, and the controller rebuilt from
//! the crash image (array medium + metadata checkpoint + journaled
//! deltas) must be digest-identical to the uninterrupted run at the
//! cut — and finish the trace to the identical final digest.
//!
//! The sweep runs under fault injection (a grown-bad block retires and
//! relocates mid-trace), so retirement, relocation and spare-pool
//! bookkeeping all cross the power cut through the delta journal.

use gnr_flash::backend::{BackendKind, CellBackend};
use gnr_flash_array::controller::{CrashImage, FlashController};
use gnr_flash_array::fault::{crash_and_recover, replay_ops, FaultPlan};
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{GcChurnSource, TraceSource};

fn shape() -> NandConfig {
    NandConfig {
        blocks: 4,
        pages_per_block: 2,
        page_width: 8,
    }
}

/// A short checkpoint interval so power cuts land mid-delta-window —
/// the interesting case: recovery must replay journaled deltas, not
/// just reload a fresh checkpoint.
const CHECKPOINT_INTERVAL: u64 = 3;

fn plan(trace_len: usize) -> FaultPlan {
    FaultPlan {
        // Block 2 grows bad on its second erase: one mid-trace
        // retirement with live-page relocation, within the one spare.
        bad_block_after_erases: vec![(2, 2)],
        power_loss_ops: (0..trace_len as u64).collect(),
        ..FaultPlan::seeded(0x00c0_ffee)
    }
}

fn build_controller(backend: &CellBackend, plan: &FaultPlan) -> FlashController {
    FlashController::with_backend(shape(), backend)
        .with_fault_tolerance(1)
        .with_crash_consistency(CHECKPOINT_INTERVAL)
        .with_faults(Some(plan.clone()))
}

#[test]
fn power_loss_at_every_op_recovers_digest_identical() {
    let backend = CellBackend::preset(BackendKind::GnrFloatingGate);
    let capacity = {
        let probe = FlashController::with_backend(shape(), &backend).with_fault_tolerance(1);
        probe.logical_capacity()
    };
    let source = GcChurnSource::new(capacity, 5 * capacity, 0x5eed);
    let len = source.len();
    let plan = plan(len);

    // The uninterrupted reference run, with its digest pinned at every
    // op-clock prefix.
    let mut reference = build_controller(&backend, &plan);
    let mut prefix_digests = Vec::with_capacity(len + 1);
    prefix_digests.push(reference.state_digest());
    for i in 0..len {
        replay_ops(&mut reference, &source, i, i + 1).unwrap();
        prefix_digests.push(reference.state_digest());
    }
    let final_digest = reference.state_digest();
    assert!(
        reference.retired_blocks() >= 1,
        "the trace must exercise retirement across the cut"
    );

    // Cut power at every injected op-clock point of the plan.
    let mut cuts = 0;
    for (crash_op, prefix) in prefix_digests.iter().take(len).enumerate() {
        if !plan.loses_power_at(crash_op as u64) {
            continue;
        }
        cuts += 1;
        let outcome = crash_and_recover(
            &backend,
            &|| build_controller(&backend, &plan),
            &plan,
            &source,
            crash_op,
        )
        .unwrap_or_else(|e| panic!("crash at op {crash_op} failed: {e}"));
        assert_eq!(
            outcome.digest_at_crash, *prefix,
            "running digest diverged before the cut at op {crash_op}"
        );
        assert_eq!(
            outcome.recovered_digest, outcome.digest_at_crash,
            "recovery lost state at op {crash_op} ({} deltas replayed)",
            outcome.deltas_replayed
        );
        assert_eq!(
            outcome.final_digest, final_digest,
            "post-recovery replay diverged after the cut at op {crash_op}"
        );
    }
    assert_eq!(cuts, len, "the sweep must cut at every op index");
}

#[test]
fn crash_image_round_trips_through_json() {
    let backend = CellBackend::preset(BackendKind::CntFloatingGate);
    let plan = FaultPlan::seeded(9);
    let mut c = build_controller(&backend, &plan);
    let capacity = c.logical_capacity();
    let source = GcChurnSource::new(capacity, capacity, 0xfeed);
    // Stop mid-delta-window so the image carries live deltas.
    replay_ops(&mut c, &source, 0, capacity + 1).unwrap();

    let image = c.crash_image().unwrap();
    let json = serde_json::to_string(&image).unwrap();
    let decoded = CrashImage::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
    let recovered = FlashController::recover_backend(&backend, &decoded).unwrap();
    assert_eq!(recovered.state_digest(), c.state_digest());
    assert_eq!(recovered.live_pages(), c.live_pages());

    // And the recovered controller keeps going bit-identically.
    let mut recovered = recovered;
    recovered.set_faults(Some(plan.clone()));
    replay_ops(&mut c, &source, capacity + 1, source.len()).unwrap();
    replay_ops(&mut recovered, &source, capacity + 1, source.len()).unwrap();
    assert_eq!(recovered.state_digest(), c.state_digest());
}
