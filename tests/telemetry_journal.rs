//! Property tests of the telemetry event journal: JSON round-trips are
//! bit-identical and capacity pressure always evicts oldest-first.
//!
//! Payload fields ride through JSON as numbers, which the vendored
//! serde renders exactly for integers below 2^53 — so generated
//! payloads stay inside that range. The one deliberate exception is the
//! checkpoint digest, which is serialized as a full-width hex string
//! precisely because u64 digests exceed f64's exact-integer range.

use gnr_flash::telemetry;
use gnr_flash::telemetry::journal::{
    self, EventKind, JournalEvent, JournalSnapshot, DEFAULT_CAPACITY,
};
use proptest::prelude::*;

const F64_EXACT: u64 = (1 << 53) - 1;

/// One of the fourteen event kinds, derived deterministically from a
/// seed.
fn event_for(selector: u64, payload: u64) -> EventKind {
    let p = payload & F64_EXACT;
    match selector % 14 {
        0 => EventKind::Reclaim { block: p },
        1 => EventKind::GcErase {
            block: p,
            survivors: p / 3,
        },
        2 => EventKind::GcRelocation {
            lpn: p,
            block: p % 64,
            page: p % 4,
        },
        3 => EventKind::EpochJump { cycles: p },
        // Full-width on purpose: digests round-trip through hex strings.
        4 => EventKind::CheckpointRestore { digest: payload },
        5 => EventKind::FlowMapEscape { queries: p },
        6 => EventKind::CycleMapFallback { probes: p },
        7 => EventKind::DecodeFailure { pages: p },
        8 => EventKind::ReadRetryStep { depth: p % 5 },
        9 => EventKind::ProgramFail {
            block: p % 64,
            page: p % 8,
        },
        10 => EventKind::BlockRetired {
            block: p % 64,
            relocated: p % 8,
        },
        11 => EventKind::PowerLoss { pending_deltas: p },
        12 => EventKind::RecoveryReplay { deltas: p },
        _ => EventKind::ReadReclaim {
            block: p % 64,
            pages: p % 8,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → parse → decode → re-serialize is the identity, and
    /// the two JSON strings are bit-identical.
    #[test]
    fn journal_snapshot_json_round_trips(
        seed in 0u64..u64::MAX,
        len in 0usize..24,
    ) {
        let events: Vec<JournalEvent> = (0..len)
            .map(|i| {
                let s = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64);
                JournalEvent {
                    op: s >> 11,
                    backend: match s % 3 {
                        0 => "gnr-floating-gate",
                        1 => "cnt-floating-gate",
                        _ => "pcm-resistive",
                    },
                    kind: event_for(s, s.rotate_left(17)),
                }
            })
            .collect();
        let snapshot = JournalSnapshot {
            recorded: len as u64 + (seed & 0xffff),
            dropped: seed & 0xffff,
            capacity: DEFAULT_CAPACITY as u64,
            events,
        };

        let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let value = serde_json::from_str(&json).expect("snapshot JSON parses");
        let decoded = JournalSnapshot::from_value(&value).expect("snapshot decodes");
        prop_assert_eq!(&decoded, &snapshot);
        let json_again = serde_json::to_string(&decoded).expect("decoded re-serializes");
        prop_assert_eq!(json, json_again);
    }

    /// Under capacity pressure the ring keeps exactly the newest
    /// `capacity` events, and the recorded/dropped totals account for
    /// every eviction.
    #[test]
    fn ring_keeps_the_newest_events_under_capacity_pressure(
        capacity in 1usize..16,
        total in 0usize..48,
    ) {
        struct Cleanup;
        impl Drop for Cleanup {
            fn drop(&mut self) {
                journal::set_capacity(DEFAULT_CAPACITY);
                journal::clear();
                telemetry::set_op_index(0);
                telemetry::set_enabled(false);
            }
        }
        let _cleanup = Cleanup;

        telemetry::set_enabled(true);
        journal::clear();
        journal::set_capacity(capacity);
        for i in 0..total {
            telemetry::set_op_index(i as u64);
            journal::record(EventKind::Reclaim { block: i as u64 });
        }

        let snap = journal::snapshot();
        let kept = total.min(capacity);
        prop_assert_eq!(snap.recorded, total as u64);
        prop_assert_eq!(snap.dropped, (total - kept) as u64);
        prop_assert_eq!(snap.events.len(), kept);
        for (offset, event) in snap.events.iter().enumerate() {
            prop_assert_eq!(event.op, (total - kept + offset) as u64);
        }
    }
}
