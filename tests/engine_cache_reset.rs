//! `engine::cache::reset()` — the phase-scoping hook the benches use so
//! committed `engine_cache` stats cover the measured phase only.
//!
//! Isolated in its own integration binary on purpose: the counters are
//! process-global, and a reset racing the delta-asserting tests that
//! share the default test binary (e.g. `flow_map_cache_reports_traffic`)
//! would make those flaky. One test, one process, no interleaving.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{cache, flowmap, ChargeBalanceEngine};
use gnr_units::Voltage;

#[test]
fn reset_zeroes_the_telemetry_but_keeps_the_entries() {
    // Drive traffic through both tiers: engine construction probes the
    // tabulated-J cache, and a repeated flow-map probe records a miss
    // then a hit.
    let engine = ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper());
    let bias = Voltage::from_volts(13.5);
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let before = cache::stats();
    assert!(
        before.flow_maps.hits + before.flow_maps.misses > 0,
        "setup must generate flow-map traffic"
    );
    assert!(
        before.j_tables.hits + before.j_tables.misses > 0,
        "setup must generate J-table traffic"
    );

    cache::reset();
    let after = cache::stats();
    assert_eq!(after.flow_maps.hits, 0);
    assert_eq!(after.flow_maps.misses, 0);
    assert_eq!(after.j_tables.hits, 0);
    assert_eq!(after.j_tables.misses, 0);
    // Reset scopes the *telemetry*, not the caches: the entries (and
    // the work they embody) survive, so a post-reset phase still runs
    // warm.
    assert!(after.flow_maps.entries >= 1);

    // Counting resumes from zero — the next probe of a retained entry
    // is a hit against the fresh counters.
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let resumed = cache::stats();
    assert_eq!(resumed.flow_maps.misses, 0);
    assert!(resumed.flow_maps.hits >= 1);
}
