//! `engine::cache::reset()` — the phase-scoping hook the benches use so
//! committed `engine_cache` stats cover the measured phase only.
//!
//! Isolated in its own integration binary on purpose: the counters are
//! process-global, and a reset racing the delta-asserting tests that
//! share the default test binary (e.g. `flow_map_cache_reports_traffic`)
//! would make those flaky. One test, one process, no interleaving.

use std::sync::Arc;

use gnr_flash::backend::BackendKind;
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{cache, flowmap, ChargeBalanceEngine, CycleRecipe};
use gnr_flash::pulse::SquarePulse;
use gnr_units::{Time, Voltage};

#[test]
fn reset_zeroes_the_telemetry_but_keeps_the_entries() {
    // Drive traffic through all three tiers: engine construction probes
    // the tabulated-J cache, a repeated flow-map probe records a miss
    // then a hit, and a repeated cycle-map probe does the same.
    let engine = ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper());
    let bias = Voltage::from_volts(13.5);
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let recipe = CycleRecipe::new(vec![
        SquarePulse::new(Voltage::from_volts(13.5), Time::from_microseconds(10.0)),
        SquarePulse::new(Voltage::from_volts(-13.5), Time::from_microseconds(10.0)),
    ]);
    let map = engine
        .cycle_map(&recipe)
        .expect("flow-map engine is eligible");
    let _ = engine.cycle_map(&recipe);
    let before = cache::stats();
    assert!(
        before.flow_maps.hits + before.flow_maps.misses > 0,
        "setup must generate flow-map traffic"
    );
    assert!(
        before.j_tables.hits + before.j_tables.misses > 0,
        "setup must generate J-table traffic"
    );
    assert!(
        before.cycle_maps.hits >= 1 && before.cycle_maps.entries >= 1,
        "setup must generate cycle-map traffic: {:?}",
        before.cycle_maps
    );

    cache::reset();
    let after = cache::stats();
    assert_eq!(after.flow_maps.hits, 0);
    assert_eq!(after.flow_maps.misses, 0);
    assert_eq!(after.j_tables.hits, 0);
    assert_eq!(after.j_tables.misses, 0);
    assert_eq!(after.cycle_maps.hits, 0);
    assert_eq!(after.cycle_maps.misses, 0);
    // Reset scopes the *telemetry*, not the caches: the entries (and
    // the work they embody) survive, so a post-reset phase still runs
    // warm. This split is what the historical combined reset got wrong
    // — scoping bench counters used to cold-start the caches too.
    assert!(after.flow_maps.entries >= 1);
    assert!(after.cycle_maps.entries >= 1);

    // Counting resumes from zero — the next probe of a retained entry
    // is a hit against the fresh counters.
    let _ = flowmap::cached(&engine, bias, Voltage::ZERO);
    let again = engine.cycle_map(&recipe).expect("still eligible");
    assert!(
        std::sync::Arc::ptr_eq(&map, &again),
        "reset must not evict: the same Arc answers"
    );
    let resumed = cache::stats();
    assert_eq!(resumed.flow_maps.misses, 0);
    assert!(resumed.flow_maps.hits >= 1);
    assert_eq!(resumed.cycle_maps.misses, 0);
    assert!(resumed.cycle_maps.hits >= 1);

    // The other half of the split: `clear_entries` evicts every tier's
    // entries but leaves the counters alone — outstanding Arcs stay
    // valid, and the next probe is a (counted) rebuild miss.
    let hits_before_clear = resumed.cycle_maps.hits;
    cache::clear_entries();
    let cleared = cache::stats();
    assert_eq!(cleared.flow_maps.entries, 0);
    assert_eq!(cleared.cycle_maps.entries, 0);
    assert_eq!(cleared.j_tables.entries, 0);
    assert_eq!(
        cleared.cycle_maps.hits, hits_before_clear,
        "eviction must not touch the counters"
    );
    let rebuilt = engine.cycle_map(&recipe).expect("still eligible");
    assert!(
        !std::sync::Arc::ptr_eq(&map, &rebuilt),
        "post-eviction probe must rebuild"
    );
    let final_stats = cache::stats();
    assert!(final_stats.cycle_maps.misses >= 1);
    assert!(final_stats.cycle_maps.entries >= 1);
}

#[test]
fn cache_keys_carry_the_backend_discriminant() {
    // The same FN model under two backends must resolve to two distinct
    // J-table entries: the key folds the backend discriminant, so a CNT
    // engine can never warm-hit a GNR table (or vice versa) even when
    // the fitted coefficients collide bitwise.
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let model = device.channel_emission_model();
    let gnr = cache::tabulated(model);
    let cnt = cache::tabulated_for(BackendKind::CntFloatingGate, model);
    assert!(
        !Arc::ptr_eq(&gnr, &cnt),
        "backends must not share a J-table entry for the same model"
    );

    // Backend-qualified lookup with the default backend is the same
    // entry as the unqualified path. The sibling test may evict entries
    // (`clear_entries`) once, concurrently; probing twice tolerates one
    // eviction landing between a pair of lookups.
    let default_hits_gnr_entry = (0..2).any(|_| {
        Arc::ptr_eq(
            &cache::tabulated(model),
            &cache::tabulated_for(BackendKind::GnrFloatingGate, model),
        )
    });
    assert!(
        default_hits_gnr_entry,
        "`tabulated` must alias the GNR-qualified entry"
    );

    // The engine's memoization key is backend-folded too: identical
    // device, different backend, different `device_key`.
    let plain = ChargeBalanceEngine::new(&device);
    let gnr_engine = ChargeBalanceEngine::new_for(BackendKind::GnrFloatingGate, &device);
    let cnt_engine = ChargeBalanceEngine::new_for(BackendKind::CntFloatingGate, &device);
    assert_eq!(plain.device_key(), gnr_engine.device_key());
    assert_ne!(plain.device_key(), cnt_engine.device_key());
    assert_eq!(
        cnt_engine.device_key(),
        BackendKind::CntFloatingGate.fold_key(device.dynamics_key()),
    );
}
