//! Property tests over the reliability pipeline: codec round-trips and
//! the determinism contract of the BER sampler.
//!
//! * Hamming SEC-DED and BCH(n, k, t): random payloads survive encode →
//!   corrupt (≤ t random flips) → decode *exactly*; beyond-strength
//!   patterns are either detected or land on a different valid codeword
//!   within t flips of the received word (the miscorrection bound of a
//!   bounded-distance decoder — never a silent wrong claim).
//! * BER sampling: bit-identical across runs, across parallel vs
//!   sequential batch layouts, and across window vs full-array reads;
//!   plus a pinned digest of one fixed scenario so the seeded RNG chain
//!   itself cannot drift silently between sessions.

use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::ispp::IsppProgrammer;
use gnr_flash_array::population::CellPopulation;
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::{DecodeOutcome, EccConfig, PageCodec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct random flip positions.
fn flip_positions(rng: &mut StdRng, n: usize, count: usize) -> Vec<usize> {
    let mut positions: Vec<usize> = Vec::new();
    while positions.len() < count {
        let p = rng.gen_range(0usize..n);
        if !positions.contains(&p) {
            positions.push(p);
        }
    }
    positions
}

fn roundtrip_within_strength(codec: &dyn PageCodec, payload_seed: u64, errors: usize) {
    let mut rng = StdRng::seed_from_u64(payload_seed);
    let data: Vec<bool> = (0..codec.data_bits())
        .map(|_| rng.gen_range(0u8..2) == 1)
        .collect();
    let word = codec.encode(&data).unwrap();
    assert_eq!(word.len(), codec.code_bits());
    let mut received = word.clone();
    for p in flip_positions(&mut rng, word.len(), errors) {
        received[p] = !received[p];
    }
    let outcome = codec.decode(&mut received).unwrap();
    if errors == 0 {
        assert_eq!(outcome, DecodeOutcome::Clean);
    } else {
        assert_eq!(outcome, DecodeOutcome::Corrected(errors));
    }
    assert_eq!(received, word, "decode must restore the codeword exactly");
    assert_eq!(codec.extract(&received).unwrap(), data);
}

fn beyond_strength_is_flagged_or_bounded(codec: &dyn PageCodec, payload_seed: u64, errors: usize) {
    let mut rng = StdRng::seed_from_u64(payload_seed);
    let data: Vec<bool> = (0..codec.data_bits())
        .map(|_| rng.gen_range(0u8..2) == 1)
        .collect();
    let word = codec.encode(&data).unwrap();
    let mut received = word.clone();
    for p in flip_positions(&mut rng, word.len(), errors) {
        received[p] = !received[p];
    }
    let before = received.clone();
    match codec.decode(&mut received).unwrap() {
        DecodeOutcome::Detected => {
            assert_eq!(received, before, "detected words are left as received");
        }
        DecodeOutcome::Corrected(claimed) => {
            // A bounded-distance decoder may miscorrect past t, but only
            // by ≤ t flips, and never back onto the original codeword.
            assert!(claimed <= codec.correctable());
            let flips = received.iter().zip(&before).filter(|(a, b)| a != b).count();
            assert!(flips <= codec.correctable());
            assert_ne!(
                received, word,
                "{} errors cannot silently decode to the original",
                errors
            );
        }
        DecodeOutcome::Clean => panic!("corrupted word cannot have clean syndromes"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hamming SEC-DED: every ≤1-bit pattern round-trips exactly.
    #[test]
    fn hamming_roundtrips_random_payloads(
        data_bits in 4usize..120,
        payload_seed in 0u64..1_000_000,
        errors in 0usize..2,
    ) {
        let codec = EccConfig::HammingSecDed { data_bits }.build().unwrap();
        roundtrip_within_strength(codec.as_ref(), payload_seed, errors);
    }

    /// Hamming SEC-DED: every 2-bit pattern is detected, never
    /// miscorrected.
    #[test]
    fn hamming_detects_double_errors(
        data_bits in 4usize..120,
        payload_seed in 0u64..1_000_000,
    ) {
        let codec = EccConfig::HammingSecDed { data_bits }.build().unwrap();
        let mut rng = StdRng::seed_from_u64(payload_seed);
        let data: Vec<bool> = (0..codec.data_bits())
            .map(|_| rng.gen_range(0u8..2) == 1)
            .collect();
        let word = codec.encode(&data).unwrap();
        let mut received = word.clone();
        for p in flip_positions(&mut rng, word.len(), 2) {
            received[p] = !received[p];
        }
        let before = received.clone();
        prop_assert_eq!(codec.decode(&mut received).unwrap(), DecodeOutcome::Detected);
        prop_assert_eq!(received, before);
    }

    /// BCH(n, k, t): random codewords × random ≤t error patterns decode
    /// exactly, across fields and strengths.
    #[test]
    fn bch_roundtrips_random_payloads(
        shape in 0usize..4,
        payload_seed in 0u64..1_000_000,
        error_fraction in 0.0f64..1.0,
    ) {
        let (m, t) = [(4u32, 2usize), (5, 3), (6, 4), (8, 8)][shape];
        let codec = EccConfig::Bch { m, t }.build().unwrap();
        let errors = (error_fraction * (t + 1) as f64) as usize; // 0..=t
        roundtrip_within_strength(codec.as_ref(), payload_seed, errors);
    }

    /// BCH: beyond-strength patterns are detected or miscorrect within
    /// the bounded-distance contract — never silently restored.
    #[test]
    fn bch_flags_beyond_strength_patterns(
        shape in 0usize..4,
        payload_seed in 0u64..1_000_000,
        extra_fraction in 0.0f64..1.0,
    ) {
        let (m, t) = [(4u32, 2usize), (5, 3), (6, 4), (8, 8)][shape];
        let codec = EccConfig::Bch { m, t }.build().unwrap();
        // t+1 ..= 2t errors: within the designed distance, so decoding
        // back onto the original codeword is impossible.
        let errors = t + 1 + (extra_fraction * t as f64) as usize;
        beyond_strength_is_flagged_or_bounded(codec.as_ref(), payload_seed, errors);
    }
}

/// A 64-cell half-programmed population — the fixed BER scenario.
fn scenario_population() -> CellPopulation {
    let mut pop = CellPopulation::paper(64);
    let programmer = IsppProgrammer::nominal();
    let indices: Vec<usize> = (0..32).collect();
    let _ = pop.program_cells(&programmer, &indices, &BatchSimulator::sequential());
    pop
}

/// FNV-1a over a bit column, for pinning sampled reads.
fn digest(bits: &[bool]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bits {
        hash ^= u64::from(b) + 1;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn ber_sampling_is_deterministic_under_a_fixed_seed() {
    let pop = scenario_population();
    let model = BerModel {
        read_noise_sigma: 0.8,
        seed: 0xdead_beef,
        ..BerModel::default()
    };
    let parallel = BatchSimulator::new();
    let sequential = BatchSimulator::sequential();
    let reference = pop.decision_level().as_volts();

    // Run-to-run and layout-to-layout parity.
    let a = model.sample_read_bits(&pop, &parallel, reference, 11);
    let b = model.sample_read_bits(&pop, &parallel, reference, 11);
    let c = model.sample_read_bits(&pop, &sequential, reference, 11);
    assert_eq!(a, b);
    assert_eq!(a, c);

    // Window reads are the same bits the full read produced.
    let ctx = model.context(&pop, &parallel);
    assert_eq!(ctx.sample_window(reference, 11, 8, 40), &a[8..48]);

    // Distinct passes and seeds decorrelate.
    assert_ne!(a, model.sample_read_bits(&pop, &parallel, reference, 12));
    let reseeded = BerModel {
        seed: 0xfeed_f00d,
        ..model
    };
    assert_ne!(a, reseeded.sample_read_bits(&pop, &parallel, reference, 11));

    // Pin the RNG chain itself: this digest must never drift across
    // sessions — a change here is a reproducibility break, not noise.
    assert_eq!(
        digest(&a),
        0xd171_c37d_b119_8182,
        "digest {:#018x}",
        digest(&a)
    );
}
