//! The device-backend abstraction, exercised end to end: one array
//! stack (population → NAND → FTL → workload replay → reliability
//! scan) over three cell physics.
//!
//! * **GNR-FG** — the paper device; the backend-threaded constructor
//!   path must be *bit-identical* to the pre-refactor blueprint path.
//! * **CNT-FG** — the `materials::cnt` preset through the same FN
//!   flow-map machinery.
//! * **PCM** — set/reset dynamics over a crystalline-fraction state
//!   variable, exercising the closed-form escape where no FN flow map
//!   applies (recorded in the journal as `flowmap_escape`).
//!
//! Several globals (the telemetry journal, the active-backend tag) are
//! process-wide, and constructing any backend population re-stamps the
//! tag — every test here serializes on one mutex.

use std::sync::Mutex;

use gnr_flash::backend::{BackendKind, CellBackend};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::telemetry;
use gnr_flash::telemetry::journal::{self, EventKind};
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::scan_array;

static BACKEND_TESTS: Mutex<()> = Mutex::new(());

fn shape() -> NandConfig {
    NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    }
}

/// A fresh controller of the given backend, churned through the same
/// seeded GC workload, reduced to its full-state digest.
fn churn_digest(backend: &CellBackend, seed: u64) -> u64 {
    let mut controller = FlashController::with_backend(shape(), backend);
    let capacity = controller.logical_capacity();
    replay(
        &mut controller,
        &WorkloadTrace::gc_churn(2 * capacity, capacity, seed),
        &ReplayOptions {
            snapshot_interval: 0,
            margin_scan: false,
        },
    )
    .expect("churn replays");
    controller.state_digest()
}

#[test]
fn every_backend_replays_churn_deterministically() {
    let _lock = BACKEND_TESTS.lock().unwrap();
    let mut digests = Vec::new();
    for kind in [
        BackendKind::GnrFloatingGate,
        BackendKind::CntFloatingGate,
        BackendKind::PcmResistive,
    ] {
        let backend = CellBackend::preset(kind);
        let a = churn_digest(&backend, 0xbead);
        let b = churn_digest(&backend, 0xbead);
        assert_eq!(a, b, "{}: same seed must reproduce the digest", kind.name());
        let c = churn_digest(&backend, 0xf00d);
        assert_ne!(a, c, "{}: the digest must track the workload", kind.name());
        digests.push((kind, a));
    }
    // Different cell physics under the identical workload must land on
    // different states — the backends are not aliases of each other.
    for (i, &(ka, da)) in digests.iter().enumerate() {
        for &(kb, db) in &digests[i + 1..] {
            assert_ne!(da, db, "{} vs {}", ka.name(), kb.name());
        }
    }
}

#[test]
fn gnr_backend_path_is_bit_identical_to_the_blueprint_path() {
    let _lock = BACKEND_TESTS.lock().unwrap();
    let config = shape();
    let options = ReplayOptions {
        snapshot_interval: 0,
        margin_scan: true,
    };
    let trace = WorkloadTrace::gc_churn(24, config.logical_pages(), 0x5eed);

    // Pre-refactor construction: blueprint-typed all the way down.
    let mut old = FlashController::new(config);
    replay(&mut old, &trace, &options).expect("blueprint path replays");

    // Backend-threaded construction over the same device.
    let gnr = CellBackend::gnr(FloatingGateTransistor::mlgnr_cnt_paper());
    let mut new = FlashController::with_backend(config, &gnr);
    replay(&mut new, &trace, &options).expect("backend path replays");

    assert_eq!(old.state_digest(), new.state_digest());
    let old_pop = old.array().population();
    let new_pop = new.array().population();
    for i in 0..old_pop.len() {
        assert_eq!(
            old_pop.charge(i).unwrap().as_coulombs().to_bits(),
            new_pop.charge(i).unwrap().as_coulombs().to_bits(),
            "cell {i} charge must match bitwise"
        );
    }

    // And the snapshot seam: a blueprint snapshot restores through the
    // backend entry point to the identical digest.
    let snapshot = old.snapshot();
    let restored = FlashController::restore_backend(&gnr, snapshot).expect("backend restore");
    assert_eq!(restored.state_digest(), old.state_digest());
}

#[test]
fn pcm_programs_escape_the_flow_map_and_journal_it() {
    let _lock = BACKEND_TESTS.lock().unwrap();
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    journal::clear();

    // ISPP programming rides rungs above the 12 V switching threshold,
    // so every columnar batch escapes the flow-map tier.
    let pcm = CellBackend::preset(BackendKind::PcmResistive);
    let mut array = NandArray::with_backend(shape(), &pcm);
    array
        .program_page(0, 0, &vec![false; shape().page_width])
        .expect("PCM page programs");

    let snap = journal::snapshot();
    journal::clear();
    telemetry::set_enabled(was_enabled);

    let escapes: Vec<_> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FlowMapEscape { .. }))
        .collect();
    assert!(
        !escapes.is_empty(),
        "PCM programming must record flowmap_escape events, journal: {snap:?}"
    );
    for event in escapes {
        assert_eq!(event.backend, "pcm-resistive");
        let EventKind::FlowMapEscape { queries } = event.kind else {
            unreachable!()
        };
        assert!(queries > 0, "escape events must count escaped queries");
    }
}

/// Programs every page of a backend array with seeded patterns and
/// scans it; returns the reliability point.
fn uber_point(backend: &CellBackend) -> gnr_reliability::uber::ReliabilityPoint {
    let config = shape();
    let mut array = NandArray::with_backend(config, backend);
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            let seed = (block * config.pages_per_block + page) as u64;
            let bits: Vec<bool> = (0..config.page_width)
                .map(|c| (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (c % 60)) & 1 == 1)
                .collect();
            array.program_page(block, page, &bits).expect("programs");
        }
    }
    let ber = BerModel::default();
    let truth = ber.noiseless_bits(array.population(), array.batch());
    let codec = EccConfig::HammingSecDed { data_bits: 11 }
        .build()
        .expect("codec builds");
    scan_array(&array, &truth, codec.as_ref(), &ber, None, 0).expect("scan runs")
}

#[test]
fn cnt_and_pcm_uber_scans_are_deterministic() {
    let _lock = BACKEND_TESTS.lock().unwrap();
    for kind in [BackendKind::CntFloatingGate, BackendKind::PcmResistive] {
        let backend = CellBackend::preset(kind);
        let a = uber_point(&backend);
        let b = uber_point(&backend);
        assert_eq!(a, b, "{}: scan must be deterministic", kind.name());
        assert!(
            a.rber.is_finite() && (0.0..=1.0).contains(&a.rber),
            "{}: rber {}",
            kind.name(),
            a.rber
        );
        assert!(a.uber <= a.rber, "{}: ECC must not add errors", kind.name());
    }
}

#[test]
fn backend_populations_announce_themselves_to_telemetry() {
    let _lock = BACKEND_TESTS.lock().unwrap();
    for kind in [
        BackendKind::PcmResistive,
        BackendKind::CntFloatingGate,
        BackendKind::GnrFloatingGate,
    ] {
        let _array = NandArray::with_backend(shape(), &CellBackend::preset(kind));
        assert_eq!(telemetry::active_backend(), kind.name());
        assert_eq!(telemetry::snapshot().backend, kind.name());
    }
}
