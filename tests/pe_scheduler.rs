//! Program/erase operation subsystem: multi-plane parity, erase-verify
//! convergence, and the replayer's terminal-snapshot contract.
//!
//! The load-bearing property: multi-plane scheduled execution preserves
//! per-block command order and merges only distinct-block work, so any
//! plane count — and any batch executor — produces a **bit-identical**
//! final array (population columns and margins digest).

use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::margins::{self, state_digest};
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::pe::{EraseVerify, PeCommand, PlaneScheduler, SoftProgram};
use gnr_flash_array::population::{CellPopulation, PopulationVariation};
use gnr_flash_array::workload::{replay, PagePattern, ReplayOptions, WorkloadOp, WorkloadTrace};

const CONFIG: NandConfig = NandConfig {
    blocks: 4,
    pages_per_block: 2,
    page_width: 8,
};

/// A mixed trace that exercises rewrites (reclaim + GC), reads
/// (including same-block sequences) and explicit erases.
fn mixed_trace(capacity: usize) -> WorkloadTrace {
    let mut ops = Vec::new();
    for lpn in 0..capacity {
        ops.push(WorkloadOp::Write {
            lpn: Some(lpn),
            pattern: PagePattern::Seeded { seed: lpn as u64 },
        });
    }
    for round in 0..3 {
        for lpn in (0..capacity).step_by(2) {
            ops.push(WorkloadOp::Write {
                lpn: Some(lpn),
                pattern: PagePattern::Seeded {
                    seed: (round * capacity + lpn) as u64,
                },
            });
        }
        for lpn in 0..capacity {
            ops.push(WorkloadOp::Read { lpn });
        }
    }
    ops.push(WorkloadOp::EraseBlock { block: 0 });
    WorkloadTrace {
        name: "mixed_parity".into(),
        ops,
    }
}

#[test]
fn multi_plane_replay_is_bit_identical_to_single_plane_sequential() {
    let trace = mixed_trace(CONFIG.logical_pages());

    // Reference: one plane, sequential executor — the historical per-op
    // path with no concurrency anywhere.
    let mut reference =
        FlashController::over(NandArray::new(CONFIG).with_batch(BatchSimulator::sequential()));
    let ref_report = replay(&mut reference, &trace, &ReplayOptions::default()).unwrap();

    // Every plane count, parallel executor included, must match bitwise.
    for planes in [1, 2, 4] {
        let mut scheduled = FlashController::new(CONFIG).with_planes(planes);
        let report = replay(&mut scheduled, &trace, &ReplayOptions::default()).unwrap();

        assert_eq!(report.writes, ref_report.writes, "planes {planes}");
        assert_eq!(report.reads, ref_report.reads, "planes {planes}");
        assert_eq!(
            scheduled.array().population().snapshot(),
            reference.array().population().snapshot(),
            "population columns diverged at {planes} planes"
        );
        assert_eq!(
            state_digest(scheduled.array()),
            state_digest(reference.array()),
            "margins digest diverged at {planes} planes"
        );
        assert_eq!(
            margins::analyze(scheduled.array()).unwrap(),
            margins::analyze(reference.array()).unwrap(),
            "margin report diverged at {planes} planes"
        );
        assert_eq!(
            scheduled.wear_stats().unwrap(),
            reference.wear_stats().unwrap(),
            "wear accounting diverged at {planes} planes"
        );
        assert_eq!(
            scheduled.live_logical_pages(),
            reference.live_logical_pages()
        );
        for lpn in scheduled.live_logical_pages() {
            assert_eq!(scheduled.physical_of(lpn), reference.physical_of(lpn));
        }
    }
}

#[test]
fn scheduled_command_streams_match_per_command_execution() {
    // The raw scheduler layer: the same command stream executed through
    // four planes and through the plain per-command array API.
    let checker: Vec<bool> = (0..CONFIG.page_width).map(|i| i % 2 == 0).collect();
    let inverse: Vec<bool> = checker.iter().map(|b| !b).collect();
    let commands = vec![
        PeCommand::Program {
            block: 0,
            page: 0,
            bits: checker.clone(),
        },
        PeCommand::Program {
            block: 1,
            page: 0,
            bits: inverse.clone(),
        },
        PeCommand::Read { block: 0, page: 0 },
        PeCommand::Program {
            block: 2,
            page: 1,
            bits: checker.clone(),
        },
        PeCommand::Erase { block: 1 },
        PeCommand::Read { block: 2, page: 1 },
        PeCommand::Program {
            block: 3,
            page: 0,
            bits: inverse.clone(),
        },
    ];

    let mut scheduled_array = NandArray::new(CONFIG);
    let execution = PlaneScheduler::new(4).execute(&mut scheduled_array, commands.clone());
    execution.first_error().unwrap();

    let mut reference = NandArray::new(CONFIG).with_batch(BatchSimulator::sequential());
    for cmd in commands {
        match cmd {
            PeCommand::Program { block, page, bits } => {
                reference.program_page(block, page, &bits).unwrap();
            }
            PeCommand::Erase { block } => reference.erase_block(block).unwrap(),
            PeCommand::Read { block, page } => {
                reference.read_page(block, page).unwrap();
            }
        }
    }
    assert_eq!(
        scheduled_array.population().snapshot(),
        reference.population().snapshot()
    );
    assert_eq!(state_digest(&scheduled_array), state_digest(&reference));
}

#[test]
fn erase_verify_with_soft_program_narrows_the_erased_distribution() {
    // A varied population spreads both the programmed and the erased
    // placement; erase-verify + soft-program must end strictly narrower
    // than the raw block erase on the same starting state.
    let variation = PopulationVariation {
        seed: 0x5eed_9ea5,
        ..PopulationVariation::default()
    };
    let build = || {
        let pop = CellPopulation::with_variation(
            gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper(),
            CONFIG.cells(),
            &variation,
        )
        .unwrap();
        let mut array =
            NandArray::with_population(CONFIG, pop).with_batch(BatchSimulator::sequential());
        // Program every page of block 1 so the erase sees programmed and
        // (elsewhere in the block's pages) both bit polarities.
        for page in 0..CONFIG.pages_per_block {
            let bits: Vec<bool> = (0..CONFIG.page_width)
                .map(|i| (i + page) % 3 == 0)
                .collect();
            array.program_page(1, page, &bits).unwrap();
        }
        array
    };

    let erased_width = |array: &NandArray| {
        let column = array.population().vt_shift_column(array.batch());
        let base = CONFIG.pages_per_block * CONFIG.page_width;
        let block: &[f64] = &column[base..2 * base];
        let lo = block.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = block.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };

    let mut raw = build();
    raw.erase_block(1).unwrap();
    let raw_width = erased_width(&raw);

    let mut verified = build();
    let report = verified
        .erase_block_verified(1, &EraseVerify::nominal(), Some(&SoftProgram::nominal()))
        .unwrap();
    let verified_width = erased_width(&verified);

    assert!(report.erase_pulses >= 1);
    assert!(report.soft_programmed_cells > 0, "{report:?}");
    assert!(
        report.width_after_soft < report.width_before_soft,
        "soft-program must compact the collective-pulse tail: {report:?}"
    );
    assert!(
        verified_width < raw_width,
        "erase-verify + soft-program width {verified_width:.3} V must be strictly \
         narrower than raw block-erase width {raw_width:.3} V"
    );
    // Every cell of the block sits in the compacted window.
    let column = verified.population().vt_shift_column(verified.batch());
    let base = CONFIG.pages_per_block * CONFIG.page_width;
    for (i, &vt) in column[base..2 * base].iter().enumerate() {
        assert!(vt <= 0.3 + 1e-12, "cell {i} above erase target: {vt}");
        assert!(vt >= -0.5 - 1e-12, "cell {i} below soft floor: {vt}");
    }
    // The verified erase is a real erase: pages are writable again.
    let bits = vec![false; CONFIG.page_width];
    verified.program_page(1, 0, &bits).unwrap();
}

#[test]
fn replayer_records_exactly_one_terminal_snapshot() {
    // Op count not a multiple of the cadence: the final state must be
    // recorded (the historical replayer variant dropped or duplicated
    // it depending on alignment).
    let mut controller = FlashController::new(CONFIG);
    let capacity = controller.logical_capacity();
    let trace = WorkloadTrace::gc_churn(3, capacity, 11); // capacity + 3 ops
    let options = ReplayOptions {
        snapshot_interval: 4,
        margin_scan: false,
    };
    let report = replay(&mut controller, &trace, &options).unwrap();
    let indices: Vec<usize> = report.snapshots.iter().map(|s| s.op_index).collect();
    assert_eq!(*indices.last().unwrap(), trace.ops.len());
    let mut deduped = indices.clone();
    deduped.dedup();
    assert_eq!(indices, deduped, "no duplicate snapshot points");

    // Aligned op count: the cadence snapshot *is* the terminal one.
    let mut controller = FlashController::new(CONFIG);
    let trace = WorkloadTrace::sequential_fill(8, PagePattern::AllProgrammed);
    let report = replay(&mut controller, &trace, &options).unwrap();
    let indices: Vec<usize> = report.snapshots.iter().map(|s| s.op_index).collect();
    assert_eq!(indices, vec![4, 8]);
}
