//! End-to-end device behaviour across crates: program → read → erase →
//! read, baseline comparison, and the paper's §III worked example.

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::presets;
use gnr_flash::threshold::{vt_shift, LogicState};
use gnr_flash::transient::{ProgramPulseSpec, TransientSimulator};
use gnr_flash_array::cell::FlashCell;
use gnr_units::{Charge, Voltage};

#[test]
fn worked_example_of_section_three() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    // GCR = 0.6, VGS = 15 V, QFG = 0 → VFG = 9 V; drops split 9 V / 6 V.
    let vfg = device.floating_gate_voltage(presets::program_vgs(), Charge::ZERO);
    assert!((vfg.as_volts() - 9.0).abs() < 1e-9);
    let e_t = device.tunnel_oxide_field(vfg, Voltage::ZERO);
    let e_c = device.control_oxide_field(presets::program_vgs(), vfg);
    assert!((e_t.as_volts_per_meter() - 9.0 / 5.0e-9).abs() < 1.0);
    assert!((e_c.as_volts_per_meter() - 6.0 / 12.0e-9).abs() < 1.0);
}

#[test]
fn logic_states_follow_the_paper() {
    // §I: programming (electron accumulation) = '0'; erase = '1'.
    let mut cell = FlashCell::paper_cell();
    assert_eq!(cell.read(), LogicState::Erased1);
    cell.program_default().unwrap();
    assert_eq!(cell.read(), LogicState::Programmed0);
    assert!(
        cell.charge().as_coulombs() < 0.0,
        "programmed = electrons stored"
    );
    cell.erase_default().unwrap();
    assert_eq!(cell.read(), LogicState::Erased1);
}

#[test]
fn repeated_cycles_are_stable() {
    // Without a wear model in the loop, cycling is stationary: state
    // flips cleanly every time.
    let mut cell = FlashCell::paper_cell();
    for cycle in 0..5 {
        cell.program_default().unwrap();
        assert_eq!(cell.read(), LogicState::Programmed0, "cycle {cycle}");
        cell.erase_default().unwrap();
        assert_eq!(cell.read(), LogicState::Erased1, "cycle {cycle}");
    }
}

#[test]
fn baseline_si_device_has_smaller_barrier_and_faster_program() {
    let gnr = FloatingGateTransistor::mlgnr_cnt_paper();
    let si = FloatingGateTransistor::silicon_conventional();
    assert!(si.channel_emission_model().barrier() < gnr.channel_emission_model().barrier());
    let sim_g = TransientSimulator::new(&gnr);
    let sim_s = TransientSimulator::new(&si);
    let t_g = sim_g
        .run(&ProgramPulseSpec::program(presets::program_vgs()))
        .unwrap()
        .saturation_time()
        .unwrap();
    let t_s = sim_s
        .run(&ProgramPulseSpec::program(presets::program_vgs()))
        .unwrap()
        .saturation_time()
        .unwrap();
    assert!(
        t_s < t_g,
        "lower barrier must saturate faster: Si {t_s} vs GNR {t_g}"
    );
}

#[test]
fn memory_window_scales_with_program_voltage() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let sim = TransientSimulator::new(&device);
    let mut windows = Vec::new();
    for vgs in [13.0, 15.0, 17.0] {
        let q = sim
            .run(&ProgramPulseSpec::program(Voltage::from_volts(vgs)))
            .unwrap()
            .final_charge();
        windows.push(vt_shift(&device, q).as_volts());
    }
    assert!(
        windows[0] < windows[1] && windows[1] < windows[2],
        "{windows:?}"
    );
}

#[test]
fn erase_depletes_below_initial_charge() {
    // §I: "A negative voltage applied at the control gate leads to the
    // depletion of electrons" — from a programmed state the erase
    // overshoots past neutral (the FG ends electron-depleted).
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let sim = TransientSimulator::new(&device);
    let q_prog = sim
        .run(&ProgramPulseSpec::program(presets::program_vgs()))
        .unwrap()
        .final_charge();
    let q_erased = sim
        .run(&ProgramPulseSpec::erase(presets::erase_vgs(), q_prog))
        .unwrap()
        .final_charge();
    assert!(
        q_erased.as_coulombs() > 0.0,
        "erase ends depleted: {q_erased:?}"
    );
}

#[test]
fn drain_bias_effect_is_negligible_as_the_paper_assumes() {
    // §III: the 50 mV drain bias "is considered to be 0V in the analysis".
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let caps = device.capacitances();
    let with = caps.floating_gate_voltage_full(
        presets::program_vgs(),
        Voltage::ZERO,
        Voltage::ZERO,
        Voltage::from_millivolts(50.0),
        Charge::ZERO,
    );
    let without = caps.floating_gate_voltage(presets::program_vgs(), Charge::ZERO);
    let rel = (with.as_volts() - without.as_volts()).abs() / without.as_volts();
    assert!(rel < 1e-3, "relative VFG perturbation {rel}");
}
