//! Multi-level cell (MLC) demo: two bits per MLGNR-CNT cell.
//!
//! The paper stores one bit (programmed '0' / erased '1'); the continuous
//! stored charge supports four Gray-coded threshold states — the density
//! lever of commercial NAND, here driven by the same FN physics.
//!
//! ```text
//! cargo run --example mlc_demo
//! ```

use gnr_flash_array::mlc::{MlcCell, MlcLevels, MlcState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let levels = MlcLevels::default();
    println!("level placement:");
    println!("  verify targets : {:?} V", levels.verify);
    println!("  read references: {:?} V", levels.read_refs);

    println!("\nprogramming each state into a fresh cell:");
    println!(
        "{:>10} {:>8} {:>10} {:>10}",
        "state", "bits", "VT (V)", "readback"
    );
    for target in MlcState::all() {
        let mut cell = MlcCell::paper_cell();
        cell.program(target)?;
        let (msb, lsb) = cell.read().bits();
        println!(
            "{:>10} {:>8} {:>10.2} {:>10}",
            format!("{target:?}"),
            format!("{}{}", u8::from(msb), u8::from(lsb)),
            cell.cell().vt_shift().as_volts(),
            format!("{:?}", cell.read()),
        );
        assert_eq!(cell.read(), target);
    }

    println!("\nsequential writes to one cell (erase inserted when moving down):");
    let mut cell = MlcCell::paper_cell();
    for (msb, lsb) in [(true, false), (false, true), (true, true), (false, false)] {
        cell.write_bits(msb, lsb)?;
        println!(
            "  wrote {}{} -> read {:?}, VT = {:.2} V, erases so far = {}",
            u8::from(msb),
            u8::from(lsb),
            cell.read(),
            cell.cell().vt_shift().as_volts(),
            cell.cell().stats().erase_ops
        );
    }
    Ok(())
}
