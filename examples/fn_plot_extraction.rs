//! The §IV workflow of the paper (after ref. [9], Chiou et al. 2001):
//! sweep the device, build the Fowler–Nordheim plot `ln(J/E²)` vs `1/E`,
//! fit the straight line, and recover the tunneling parameters `A`, `B`
//! and the barrier height.
//!
//! ```text
//! cargo run --example fn_plot_extraction
//! ```

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::experiments::fn_plot_fig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for device in [
        FloatingGateTransistor::mlgnr_cnt_paper(),
        FloatingGateTransistor::silicon_conventional(),
    ] {
        let fig = fn_plot_fig::generate(&device)?;
        println!("== {} ==", device.name());
        println!("  FN-plot points : {}", fig.points.len());
        println!("  R²             : {:.8}", fig.r_squared);
        println!(
            "  A  extracted   : {:.4e} A/V²   (true {:.4e})",
            fig.extracted_a, fig.true_a
        );
        println!(
            "  B  extracted   : {:.4e} V/m    (true {:.4e})",
            fig.extracted_b, fig.true_b
        );
        println!(
            "  ΦB recovered   : {:.3} eV       (true {:.3} eV)",
            fig.recovered_barrier_ev, fig.true_barrier_ev
        );
        fn_plot_fig::check(&fig).map_err(std::io::Error::other)?;
        println!("  shape check    : OK\n");

        // A few sample rows of the plot.
        println!("  {:>12} {:>14}", "1/E (m/V)", "ln(J/E^2)");
        for p in fig.points.iter().step_by(fig.points.len() / 6 + 1) {
            println!("  {:>12.4e} {:>14.4}", p.inverse_field, p.ln_j_over_e2);
        }
        println!();
    }
    println!("a straight FN plot with the designed slope is the §IV");
    println!("signature that conduction is Fowler-Nordheim tunneling.");
    Ok(())
}
