//! Quickstart: build the paper's MLGNR-CNT floating-gate transistor,
//! program it at 15 V, and report everything §III promises.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::presets;
use gnr_flash::threshold::vt_shift;
use gnr_flash::transient::{ProgramPulseSpec, TransientSimulator};
use gnr_units::{Charge, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's device: MLGNR channel, CNT floating gate, 5 nm tunnel /
    // 12 nm control SiO2, GCR = 0.6, 22 nm gate.
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    println!("device: {}", device.name());
    println!("  gate area      : {}", device.geometry().gate_area());
    println!(
        "  tunnel oxide   : {}",
        device.geometry().tunnel_oxide_thickness()
    );
    println!(
        "  control oxide  : {}",
        device.geometry().control_oxide_thickness()
    );
    println!("  CT (eq. 2)     : {}", device.capacitances().total());
    println!("  GCR            : {:.2}", device.capacitances().gcr());
    println!(
        "  tunnel barrier : {:.2} eV (MLGNR -> SiO2)",
        device.channel_emission_model().barrier().as_ev()
    );

    // The worked example of §III: VGS = 15 V, QFG = 0 → VFG = 9 V.
    let vgs = presets::program_vgs();
    let vfg = device.floating_gate_voltage(vgs, Charge::ZERO);
    println!("\nVGS = {vgs} -> VFG = {vfg}  (paper: 9 V)");
    let field = device.tunnel_oxide_field(vfg, Voltage::ZERO);
    println!(
        "tunnel-oxide field = {:.1} MV/cm",
        field.as_megavolts_per_centimeter()
    );

    // Program to the Jin = Jout balance of Figure 5.
    let result = TransientSimulator::new(&device).run(&ProgramPulseSpec::program(vgs))?;
    let t_sat = result
        .saturation_time()
        .expect("the paper device saturates");
    let q_sat = result.charge_at_saturation().expect("charge at saturation");
    println!("\nprogramming transient (Figure 5):");
    println!("  t_sat          : {:.3e} s", t_sat.as_seconds());
    println!("  stored charge  : {:.1} electrons", q_sat.as_electrons());
    println!("  VFG at balance : {}", result.final_vfg());
    println!(
        "  threshold shift: {} (memory window)",
        vt_shift(&device, result.final_charge())
    );

    // The reliability warning of §V.
    let (tox_stress, cox_stress) = device.stress_ratios(vgs, Voltage::ZERO, Charge::ZERO);
    println!("\noxide stress at programming onset (fraction of breakdown):");
    println!("  tunnel oxide : {tox_stress:.2}  <- the paper's reliability concern");
    println!("  control oxide: {cox_stress:.2}");
    Ok(())
}
