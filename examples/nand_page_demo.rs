//! A small NAND array demo: program a page pattern, read it back, show
//! the disturb margins on the neighbours, then run the mini controller.
//!
//! ```text
//! cargo run --example nand_page_demo
//! ```

use gnr_flash_array::controller::{FlashController, PageAddress};
use gnr_flash_array::nand::{NandArray, NandConfig};

fn render(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 4,
        page_width: 16,
    };
    let mut array = NandArray::new(config);
    println!(
        "array: {} blocks x {} pages x {} cells",
        config.blocks, config.pages_per_block, config.page_width
    );

    // Program an alternating pattern into block 0, page 1.
    let pattern: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    array.program_page(0, 1, &pattern)?;
    println!("\nwrote  b0/p1: {}", render(&pattern));
    let readback = array.read_page(0, 1)?;
    println!("read   b0/p1: {}", render(&readback));
    assert_eq!(pattern, readback, "page must read back exactly");

    // Threshold map of the programmed page.
    print!("VT map b0/p1: ");
    for col in 0..config.page_width {
        let cell = array.cell(0, 1, col)?;
        print!("{:5.1}", cell.vt_shift().as_volts());
    }
    println!(" (V)");

    // Hammer the page with reads — neighbours accumulate read disturb but
    // must hold their data.
    for _ in 0..500 {
        let _ = array.read_page(0, 1)?;
    }
    println!("\nafter 500 reads of b0/p1:");
    for page in 0..config.pages_per_block {
        let bits = array.read_page(0, page)?;
        println!("  b0/p{page}: {}", render(&bits));
    }

    // Block erase restores everything to '1'.
    array.erase_block(0)?;
    println!(
        "\nafter block erase: b0/p1 = {}",
        render(&array.read_page(0, 1)?)
    );

    // The mini controller: sequential writes with erase-before-write.
    let mut ctrl = FlashController::new(config);
    let mut addrs: Vec<PageAddress> = Vec::new();
    for i in 0..6 {
        let data: Vec<bool> = (0..config.page_width).map(|c| (c + i) % 3 != 0).collect();
        addrs.push(ctrl.write(&data)?);
    }
    println!("\ncontroller wrote 6 pages at: {addrs:?}");
    println!("wear stats: {:?}", ctrl.wear_stats()?);
    Ok(())
}
