//! UBER versus retention bake time, across ECC strengths.
//!
//! Programs a small seeded NAND array, ages copies of it through the
//! retention model (85 °C bake), and scans each copy with the
//! reliability pipeline under four codecs — no ECC, Hamming SEC-DED,
//! BCH t = 2 and BCH t = 4 — printing the raw BER and post-ECC UBER
//! table. The same machinery drives the million-cell sweep
//! (`cargo bench -p gnr-bench --bench reliability_sweep`).
//!
//! ```text
//! cargo run --release --example uber_vs_retention
//! ```

use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::retention::RetentionModel;
use gnr_flash_array::workload::PagePattern;
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::scan_array;
use gnr_units::Temperature;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 8,
        page_width: 64,
    };
    let mut array = NandArray::new(config);
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            let seed = (block * config.pages_per_block + page) as u64;
            let bits = PagePattern::Seeded { seed }.expand(config.page_width);
            array.program_page(block, page, &bits)?;
        }
    }

    // σ sized so a 1k-cell array shows measurable raw error rates.
    let ber = BerModel {
        read_noise_sigma: 0.5,
        ..BerModel::default()
    };
    let truth = ber.noiseless_bits(array.population(), array.batch());

    let codecs: Vec<(&str, EccConfig)> = vec![
        ("raw", EccConfig::None { bits: 63 }),
        ("hamming", EccConfig::HammingSecDed { data_bits: 57 }),
        ("bch t=2", EccConfig::Bch { m: 6, t: 2 }),
        ("bch t=4", EccConfig::Bch { m: 6, t: 4 }),
    ];
    let month = 2.63e6;
    let year = 3.156e7;
    let bakes: Vec<(&str, f64)> = vec![
        ("fresh", 0.0),
        ("1 month", month),
        ("1 year", year),
        ("10 years", 10.0 * year),
    ];
    let retention = RetentionModel::default();
    let bake_temp = Temperature::from_celsius(85.0);
    // Average over passes: each pass is one deterministic full-array
    // read with fresh noise, so the table is reproducible *and* smooth.
    let passes = 32u64;

    println!(
        "array {}x{}x{} ({} cells), bake at 85 °C, σ_read = {} V, {} read passes per point\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        config.cells(),
        ber.read_noise_sigma,
        passes,
    );
    println!(
        "{:>10} | {:>10} | {:>12} | {:>12}",
        "bake", "codec", "RBER", "UBER"
    );
    println!("{}", "-".repeat(55));

    for (bi, &(bake_label, bake_s)) in bakes.iter().enumerate() {
        let mut aged = array.clone();
        retention.bake_population(aged.population_mut(), bake_s, bake_temp);
        for (ci, (codec_label, ecc)) in codecs.iter().enumerate() {
            let codec = ecc.build()?;
            let mut raw = 0usize;
            let mut residual = 0usize;
            let mut bits = 0usize;
            for pass in 0..passes {
                let lane = ((bi * codecs.len() + ci) as u64) * passes + pass;
                let point = scan_array(&aged, &truth, codec.as_ref(), &ber, None, lane)?;
                raw += point.raw_errors;
                residual += point.residual_errors;
                bits += point.coded_bits;
            }
            #[allow(clippy::cast_precision_loss)]
            let (rber, uber) = (raw as f64 / bits as f64, residual as f64 / bits as f64);
            println!(
                "{:>10} | {:>10} | {:>12.3e} | {:>12.3e}",
                bake_label, codec_label, rber, uber
            );
        }
        println!("{}", "-".repeat(55));
    }
    println!("\nEvery pass is seeded: re-running this example reproduces the table bit for bit.");
    Ok(())
}
