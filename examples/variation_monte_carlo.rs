//! Monte-Carlo process variation: how manufacturing spread in the tunnel
//! oxide and the barrier smears the programming current — the
//! sensitivity data behind the paper's call for parameter optimisation.
//!
//! Routed through [`CellPopulation`]'s variation columns: every sampled
//! device lives as a pair of per-cell deltas in flat SoA columns, with
//! one shared device build per **distinct** delta pair — no cloning of a
//! mutated device per sample, and the same population can then be
//! dropped into a `NandArray` for array-level studies.
//!
//! ```text
//! cargo run --example variation_monte_carlo
//! ```

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::presets;
use gnr_flash_array::population::{CellPopulation, PopulationVariation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();

    println!("nominal device, VGS = 15 V, 2000 cells per condition\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "condition", "median", "p05", "p95", "spread(dec)", "variants"
    );

    for (label, variation) in [
        (
            "tight (2%/30meV)",
            PopulationVariation {
                xto_sigma_fraction: 0.02,
                barrier_sigma_ev: 0.03,
                ..PopulationVariation::default()
            },
        ),
        ("nominal (4%/50meV)", PopulationVariation::default()),
        (
            "loose (8%/80meV)",
            PopulationVariation {
                xto_sigma_fraction: 0.08,
                barrier_sigma_ev: 0.08,
                ..PopulationVariation::default()
            },
        ),
    ] {
        let pop = CellPopulation::with_variation(device.clone(), 2000, &variation)?;
        let (j, _vfg) = pop.variation_stats(presets::program_vgs())?;
        println!(
            "{label:>22} {:>11.2e} {:>11.2e} {:>11.2e} {:>12.2} {:>9}",
            10f64.powf(j.median),
            10f64.powf(j.p05),
            10f64.powf(j.p95),
            j.p95 - j.p05,
            pop.variant_count(),
        );
    }

    println!("\ninterpretation: the FN exponential turns a few percent of");
    println!("oxide-thickness spread into decades of programming-current");
    println!("spread — the engineering reason ISPP verify loops exist.");
    println!("(tests/reliability_scenarios.rs pins that this column-based");
    println!("path agrees statistically with gnr_flash::variation's");
    println!("device-per-sample Monte Carlo.)");
    Ok(())
}
