//! Monte-Carlo process variation: how manufacturing spread in the tunnel
//! oxide, the barrier and the GCR smears the programming current — the
//! sensitivity data behind the paper's call for parameter optimisation.
//!
//! ```text
//! cargo run --example variation_monte_carlo
//! ```

use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::presets;
use gnr_flash::variation::{run_variation, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();

    println!("nominal device, VGS = 15 V, 2000 samples per condition\n");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>12}",
        "condition", "median", "p05", "p95", "spread(dec)"
    );

    for (label, spec) in [
        (
            "tight (2%/30meV/1%)",
            VariationSpec {
                samples: 2000,
                xto_sigma_fraction: 0.02,
                barrier_sigma_ev: 0.03,
                gcr_sigma: 0.01,
                ..VariationSpec::default()
            },
        ),
        (
            "nominal (4%/50meV/2%)",
            VariationSpec {
                samples: 2000,
                ..VariationSpec::default()
            },
        ),
        (
            "loose (8%/80meV/4%)",
            VariationSpec {
                samples: 2000,
                xto_sigma_fraction: 0.08,
                barrier_sigma_ev: 0.08,
                gcr_sigma: 0.04,
                ..VariationSpec::default()
            },
        ),
    ] {
        let report = run_variation(&device, presets::program_vgs(), &spec)?;
        let j = report.log10_j_in;
        println!(
            "{label:>22} {:>11.2e} {:>11.2e} {:>11.2e} {:>12.2}",
            10f64.powf(j.median),
            10f64.powf(j.p05),
            10f64.powf(j.p95),
            j.p95 - j.p05
        );
    }

    println!("\ninterpretation: the FN exponential turns a few percent of");
    println!("oxide-thickness spread into decades of programming-current");
    println!("spread — the engineering reason ISPP verify loops exist.");
    Ok(())
}
