//! Reliability analysis: cycle the cell, then bake it — the quantitative
//! version of the paper's conclusion that "higher tunneling current will
//! severely damage the oxide's reliability".
//!
//! ```text
//! cargo run --example retention_endurance
//! ```

use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::endurance::EnduranceModel;
use gnr_flash_array::retention::RetentionModel;
use gnr_units::{Temperature, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Endurance -------------------------------------------------------
    let cell = FlashCell::paper_cell();
    let model = EnduranceModel::default();
    let report = model.simulate(&cell, 10_000_000, Voltage::from_volts(1.0))?;

    println!("endurance (P/E cycling):");
    println!("  charge per cycle : {:.2e} C", report.charge_per_cycle);
    println!(
        "{:>10} {:>10} {:>10} {:>9}",
        "cycle", "VT(prog)", "VT(erase)", "window"
    );
    for p in report.points.iter().step_by(3) {
        println!(
            "{:>10} {:>9.2}V {:>9.2}V {:>8.2}V",
            p.cycle, p.vt_programmed, p.vt_erased, p.window
        );
    }
    match report.cycles_to_window_close {
        Some(n) => println!("  window closes below 1 V at ~{n} cycles"),
        None => println!("  window stays open through the simulated horizon"),
    }
    match report.cycles_to_breakdown {
        Some(n) => println!("  charge-to-breakdown reached at ~{n} cycles"),
        None => println!("  Q_BD not reached"),
    }

    // --- Retention -------------------------------------------------------
    let mut programmed = FlashCell::paper_cell();
    programmed.program_default()?;
    let retention = RetentionModel::default();

    println!("\nretention (ten-year check):");
    for (label, temp) in [
        ("25 C", Temperature::from_celsius(25.0)),
        ("85 C bake", Temperature::from_celsius(85.0)),
        ("125 C bake", Temperature::from_celsius(125.0)),
    ] {
        let r = retention.ten_year_check(
            programmed.device(),
            programmed.charge(),
            Voltage::from_volts(1.0),
            temp,
        );
        println!(
            "  {label:>10}: VT {:.2} V -> {:.2} V after 10 years  [{}]",
            r.initial_vt,
            r.final_vt,
            if r.pass { "PASS" } else { "FAIL" }
        );
    }

    println!(
        "\nArrhenius acceleration at 85 C: {:.0}x",
        retention.acceleration(Temperature::from_celsius(85.0))
    );
    Ok(())
}
