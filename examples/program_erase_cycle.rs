//! A full program/erase cycle with ISPP verify — the logic-state story of
//! §I: accumulate electrons (logic '0'), deplete them (logic '1').
//!
//! ```text
//! cargo run --example program_erase_cycle
//! ```

use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::ispp::{IsppEraser, IsppProgrammer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cell = FlashCell::paper_cell();
    println!(
        "fresh cell: state = {:?}, VT shift = {}",
        cell.read(),
        cell.vt_shift()
    );

    // Program with the incremental-step ladder (13 -> 16 V, verify +2 V).
    let programmer = IsppProgrammer::nominal();
    let report = programmer.program(&mut cell)?;
    println!("\nISPP program:");
    println!("  pulses applied : {}", report.pulses);
    println!("  final amplitude: {:.1} V", report.final_amplitude);
    println!("  VT shift       : {:.2} V", report.final_vt_shift);
    println!("  state          : {:?} (logic '0')", cell.read());
    println!("  read current   : {}", cell.read_current());

    // Erase back (negative ladder, verify <= +0.3 V).
    let eraser = IsppEraser::nominal();
    let report = eraser.erase(&mut cell)?;
    println!("\nISPP erase:");
    println!("  pulses applied : {}", report.pulses);
    println!("  final amplitude: {:.1} V", report.final_amplitude);
    println!("  VT shift       : {:.2} V", report.final_vt_shift);
    println!("  state          : {:?} (logic '1')", cell.read());
    println!("  read current   : {}", cell.read_current());

    let stats = cell.stats();
    println!(
        "\nlifetime: {} programs, {} erases, {:.2e} C of tunnel fluence",
        stats.program_ops, stats.erase_ops, stats.injected_charge
    );
    Ok(())
}
