//! Trace-driven workload replay: the array stack as a storage device
//! under load.
//!
//! Builds a small NAND array behind the flash-translation controller,
//! generates three canonical workload mixes (sequential fill, hot/cold
//! skew, steady-state GC churn), replays them and prints the latency,
//! wear and margin trajectories the replayer records. The same
//! machinery drives the million-cell `workload_replay` bench
//! (`cargo bench -p gnr-bench --bench workload_replay`).
//!
//! ```text
//! cargo run --release --example workload_replay
//! ```

use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NandConfig {
        blocks: 8,
        pages_per_block: 8,
        page_width: 32,
    };
    println!(
        "array: {}x{}x{} = {} cells, {} B/cell of state\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        config.cells(),
        FlashController::new(config)
            .array()
            .population()
            .bytes_per_cell(),
    );

    let capacity = FlashController::new(config).logical_capacity();
    let traces = [
        WorkloadTrace::full_array_cycle(config),
        WorkloadTrace::hot_cold(2 * capacity, capacity, 0.9, 0.1, 0xcafe),
        WorkloadTrace::gc_churn(2 * capacity, capacity, 0xf00d),
    ];

    println!(
        "{:>18} {:>6} {:>7} {:>7} {:>9} {:>11} {:>8} {:>7} {:>7}",
        "trace", "ops", "writes", "erases", "gc-reloc", "cells/s", "p95 µs", "spread", "margin"
    );
    for trace in traces {
        let mut controller = FlashController::new(config);
        let options = ReplayOptions {
            snapshot_interval: 16,
            margin_scan: true,
        };
        let report = replay(&mut controller, &trace, &options)?;
        let last = report.snapshots.last().expect("final snapshot");
        println!(
            "{:>18} {:>6} {:>7} {:>7} {:>9} {:>11.0} {:>8.0} {:>7} {:>7}",
            report.trace,
            report.ops,
            report.writes,
            last.wear.total_erases,
            last.wear.gc_relocations,
            report.cells_per_second,
            report.write_latency_us.map_or(f64::NAN, |l| l.p95),
            last.wear.spread(),
            last.margins
                .as_ref()
                .and_then(|m| m.worst_case_margin)
                .map_or("n/a".into(), |m| format!("{m:.2}V")),
        );
    }

    println!("\ntrajectory detail (gc_churn, every 16 ops): wear spread and");
    println!("erased-population VT drift (the disturb signature) over time:");
    let mut controller = FlashController::new(config);
    let trace = WorkloadTrace::gc_churn(3 * capacity, capacity, 0xf00d);
    let report = replay(
        &mut controller,
        &trace,
        &ReplayOptions {
            snapshot_interval: 32,
            margin_scan: true,
        },
    )?;
    println!(
        "{:>8} {:>8} {:>8} {:>14} {:>14}",
        "op", "erases", "spread", "erased VT max", "mean fluence"
    );
    for snap in &report.snapshots {
        let erased_max = snap
            .margins
            .as_ref()
            .and_then(|m| m.erased.as_ref())
            .map_or(f64::NAN, |e| e.vt.max);
        println!(
            "{:>8} {:>8} {:>8} {:>13.4}V {:>13.2e}C",
            snap.op_index,
            snap.wear.total_erases,
            snap.wear.spread(),
            erased_max,
            snap.mean_injected_charge,
        );
    }

    // Traces serialize: persist one for replaying elsewhere.
    let json = serde_json::to_string_pretty(&trace)?;
    std::fs::create_dir_all("results")?;
    std::fs::write("results/workload_trace_gc_churn.json", &json)?;
    println!(
        "\nwrote results/workload_trace_gc_churn.json ({} bytes)",
        json.len()
    );
    Ok(())
}
