//! The paper's conclusion as code: "an optimization among these crucial
//! parameters is recommended" — sweep (VGS, XTO, GCR), and report the
//! speed-vs-reliability trade-off frontier.
//!
//! Speed metric: programming current density `JFN` (higher = faster).
//! Reliability metric: tunnel-oxide stress ratio (field / breakdown);
//! the paper warns that stress > 1 "will severely damage the oxide".
//!
//! ```text
//! cargo run --example design_space
//! ```

use gnr_flash::device::FgtBuilder;
use gnr_flash::geometry::FgtGeometry;
use gnr_numerics::sweep::{grid, parallel_map};
use gnr_units::{Charge, Length, Voltage};

#[derive(Debug, Clone, Copy)]
struct DesignPoint {
    vgs: f64,
    xto_nm: f64,
    gcr: f64,
    j_fn: f64,
    stress: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gcrs = [0.5, 0.6, 0.7];
    let xtos = [4.0, 5.0, 6.0, 7.0];
    let vgs_values = [12.0, 13.0, 14.0, 15.0, 16.0, 17.0];

    let cells = grid(&grid(&gcrs, &xtos), &vgs_values);
    let points: Vec<DesignPoint> = parallel_map(&cells, |((gcr, xto), vgs)| {
        let geometry = FgtGeometry::paper_nominal()
            .with_tunnel_oxide(Length::from_nanometers(*xto))
            .expect("xto below xco");
        let device = FgtBuilder::default()
            .geometry(geometry)
            .gcr(*gcr)
            .build()
            .expect("valid design point");
        let state = device.tunneling_state(Voltage::from_volts(*vgs), Voltage::ZERO, Charge::ZERO);
        let (stress, _) =
            device.stress_ratios(Voltage::from_volts(*vgs), Voltage::ZERO, Charge::ZERO);
        DesignPoint {
            vgs: *vgs,
            xto_nm: *xto,
            gcr: *gcr,
            j_fn: state.tunnel_flow.abs().as_amps_per_square_meter(),
            stress,
        }
    });

    // Pareto frontier: fastest point at each stress level that stays
    // below breakdown.
    let mut safe: Vec<&DesignPoint> = points.iter().filter(|p| p.stress < 1.0).collect();
    safe.sort_by(|a, b| b.j_fn.total_cmp(&a.j_fn));

    println!(
        "design space: {} points, {} below breakdown stress",
        points.len(),
        safe.len()
    );
    println!("\nfastest safe operating points (stress < 1.0):");
    println!(
        "{:>6} {:>7} {:>5} {:>12} {:>7}",
        "VGS", "XTO", "GCR", "JFN(A/m^2)", "stress"
    );
    for p in safe.iter().take(10) {
        println!(
            "{:>6.1} {:>6.1}n {:>5.2} {:>12.3e} {:>7.2}",
            p.vgs, p.xto_nm, p.gcr, p.j_fn, p.stress
        );
    }

    // The paper's Figure 7 claim, quantified across the sweep: thin
    // oxides accelerate dramatically but run into the stress wall.
    let over = points.iter().filter(|p| p.stress >= 1.0).count();
    println!(
        "\n{over} of {} candidate points exceed the SiO2 breakdown field —",
        points.len()
    );
    println!("the optimization the paper's conclusion calls for.");
    Ok(())
}
