//! Facade crate for the gnr-flash reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency root.

pub use gnr_flash as device;
pub use gnr_flash_array as array;
pub use gnr_materials as materials;
pub use gnr_numerics as numerics;
pub use gnr_reliability as reliability;
pub use gnr_tunneling as tunneling;
pub use gnr_units as units;
