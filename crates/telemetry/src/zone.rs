//! Scoped profiling zones: RAII guards that aggregate call counts and
//! self/total wall time per zone name into a flat profile.
//!
//! Guards are created with the [`crate::zone!`] macro. With profiling
//! off (the default) the guard is inert — no interning, no clock read,
//! no thread-local push. With it on, each guard records its elapsed
//! time into the zone's total and subtracts the time spent in nested
//! zones to compute self time, using a per-thread stack of child-time
//! accumulators (zones on different threads aggregate independently
//! into the same named stats).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::RwLock;

/// Aggregate statistics of one named zone across all threads.
#[derive(Debug, Default)]
pub struct ZoneStats {
    calls: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
}

fn zone_registry() -> &'static RwLock<BTreeMap<&'static str, &'static ZoneStats>> {
    static ZONES: OnceLock<RwLock<BTreeMap<&'static str, &'static ZoneStats>>> = OnceLock::new();
    ZONES.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn intern(name: &'static str) -> &'static ZoneStats {
    let reg = zone_registry();
    if let Some(z) = reg.read().get(name) {
        return z;
    }
    let mut map = reg.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(ZoneStats::default())))
}

thread_local! {
    /// Stack of nested-child nanosecond accumulators, one frame per
    /// open zone on this thread. A closing zone adds its elapsed time
    /// to the parent frame so the parent can subtract it from self
    /// time.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of one open zone; created by [`crate::zone!`]. Inert
/// (`None`) when profiling was off at entry — an inert guard's drop
/// does nothing, even if profiling was enabled mid-zone.
#[must_use = "a zone guard measures until dropped; bind it with `let _zone = ...`"]
#[derive(Debug)]
pub struct ZoneGuard {
    inner: Option<(&'static ZoneStats, Instant)>,
}

impl Drop for ZoneGuard {
    fn drop(&mut self) {
        let Some((stats, start)) = self.inner.take() else {
            return;
        };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child_ns = CHILD_NS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let own_children = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            own_children
        });
        stats.calls.fetch_add(1, Ordering::Relaxed);
        stats.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        stats
            .self_ns
            .fetch_add(elapsed.saturating_sub(child_ns), Ordering::Relaxed);
    }
}

/// Opens the named zone, interning its stats on first profiled entry
/// and caching the handle in the macro call site's `cell`. Returns an
/// inert guard when profiling is disabled.
pub fn enter_cached(cell: &OnceLock<&'static ZoneStats>, name: &'static str) -> ZoneGuard {
    if !crate::profiling_enabled() {
        return ZoneGuard { inner: None };
    }
    let stats = cell.get_or_init(|| intern(name));
    CHILD_NS.with(|stack| stack.borrow_mut().push(0));
    ZoneGuard {
        inner: Some((stats, Instant::now())),
    }
}

/// Frozen view of one zone in a [`crate::TelemetrySnapshot`] profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneSnapshot {
    /// Zone name as given to [`crate::zone!`].
    pub name: String,
    /// Completed entries across all threads.
    pub calls: u64,
    /// Wall time spent inside the zone, nested zones included.
    pub total_ns: u64,
    /// Wall time net of nested zones opened on the same thread.
    pub self_ns: u64,
}

impl serde::Serialize for ZoneSnapshot {
    #[allow(clippy::cast_precision_loss)]
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), serde::Value::String(self.name.clone())),
            ("calls".to_string(), serde::Value::Number(self.calls as f64)),
            (
                "total_ns".to_string(),
                serde::Value::Number(self.total_ns as f64),
            ),
            (
                "self_ns".to_string(),
                serde::Value::Number(self.self_ns as f64),
            ),
        ])
    }
}
impl serde::Deserialize for ZoneSnapshot {}

/// The flat profile: every zone entered since the last reset, sorted by
/// name. Zones currently open are reported with their completed calls
/// only.
#[must_use]
pub fn zones_snapshot() -> Vec<ZoneSnapshot> {
    zone_registry()
        .read()
        .iter()
        .map(|(&name, z)| ZoneSnapshot {
            name: name.to_string(),
            calls: z.calls.load(Ordering::Relaxed),
            total_ns: z.total_ns.load(Ordering::Relaxed),
            self_ns: z.self_ns.load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes every zone's statistics (names stay interned).
pub fn reset_zones() {
    for z in zone_registry().read().values() {
        z.calls.store(0, Ordering::Relaxed);
        z.total_ns.store(0, Ordering::Relaxed);
        z.self_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_zones_split_self_and_total_time() {
        crate::set_profiling(true);
        reset_zones();
        {
            let _outer = crate::zone!("test.zone.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::zone!("test.zone.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let zones = zones_snapshot();
        let outer = zones.iter().find(|z| z.name == "test.zone.outer").unwrap();
        let inner = zones.iter().find(|z| z.name == "test.zone.inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "outer self time must exclude the nested zone"
        );
        assert_eq!(inner.self_ns, inner.total_ns);
        crate::set_profiling(false);
        reset_zones();
    }

    #[test]
    fn disabled_guard_is_inert() {
        crate::set_profiling(false);
        let guard = crate::zone!("test.zone.disabled");
        assert!(guard.inner.is_none());
        drop(guard);
        assert!(zones_snapshot()
            .iter()
            .all(|z| z.name != "test.zone.disabled"));
    }
}
