//! # gnr-telemetry
//!
//! The workspace's unified observability substrate, re-exported through
//! `gnr_flash::telemetry`. Three subsystems share one on/off discipline:
//!
//! * a process-wide **metrics registry** ([`counter`], [`histogram`])
//!   of named counters and log-bucketed histograms behind sharded
//!   relaxed atomics — the same contention-free discipline as the
//!   engine's memoization caches — with [`snapshot`] returning a
//!   serializable [`TelemetrySnapshot`] and [`reset`] scoping a
//!   measured phase;
//! * **scoped profiling zones** (the [`zone!`] RAII macro) aggregating
//!   call counts and self/total wall time per zone into a flat profile;
//! * a bounded **event journal** ([`journal`]) — a fixed-capacity ring
//!   of structured FTL/engine events, each stamped with the replay op
//!   clock ([`set_op_index`]) so traces are deterministic and diffable
//!   across identical runs.
//!
//! # Enablement
//!
//! Everything is **off by default**: metric macros are a relaxed load
//! and a branch, [`zone!`] returns an inert guard without interning
//! anything, and the journal drops events — an uninstrumented process
//! never allocates a registry entry. Turn telemetry on with
//! [`set_enabled`]`(true)` (metrics + journal), [`set_profiling`]
//! `(true)` (zones), or the environment: `GNR_PROFILE=1` enables all
//! three, `GNR_TELEMETRY=1` enables metrics and the journal only. The
//! environment is read once, lazily; programmatic setters win
//! afterwards.
//!
//! # Determinism
//!
//! [`snapshot`] is coherent without a flush step: counters are sharded
//! per-thread atomics summed at read time, never thread-local pending
//! deltas, so two back-to-back snapshots with no work in between are
//! equal. Collector-backed metrics (see [`register_collector`]) are
//! pure reads of their sources and inherit the same property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

pub mod journal;
mod registry;
pub mod zone;

pub use registry::{
    counter, histogram, register_collector, reset, snapshot, Collector, Counter, Histogram,
    HistogramSnapshot, TelemetrySnapshot,
};
pub use zone::ZoneSnapshot;

static ENV_CHECKED: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILING: AtomicBool = AtomicBool::new(false);

/// The replay op clock: events recorded by [`journal::record`] are
/// stamped with the value most recently stored here.
static OP_CLOCK: AtomicU64 = AtomicU64::new(0);

/// The device backend name every telemetry record defaults to before
/// any population announces itself.
pub const DEFAULT_BACKEND: &str = "gnr-floating-gate";

/// The active device backend tag: journal events and snapshots carry
/// the name most recently stored here.
static ACTIVE_BACKEND: parking_lot::RwLock<&'static str> =
    parking_lot::RwLock::new(DEFAULT_BACKEND);

/// Announces the active device backend. The array layer calls this when
/// a population is built or restored, so every journal event and
/// [`TelemetrySnapshot`] from then on attributes to the right cell
/// technology. Unlike the enable flags this is *always* live — backend
/// attribution must be correct the moment telemetry is switched on.
pub fn set_active_backend(name: &'static str) {
    *ACTIVE_BACKEND.write() = name;
}

/// The active device backend name ([`DEFAULT_BACKEND`] until a
/// population announces one).
#[must_use]
pub fn active_backend() -> &'static str {
    *ACTIVE_BACKEND.read()
}

fn init_from_env() {
    ENV_CHECKED.call_once(|| {
        let on = |key: &str| std::env::var(key).is_ok_and(|v| !v.is_empty() && v != "0");
        if on("GNR_PROFILE") {
            ENABLED.store(true, Ordering::Relaxed);
            PROFILING.store(true, Ordering::Relaxed);
        } else if on("GNR_TELEMETRY") {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether the metrics registry and the event journal record anything.
/// The first call reads `GNR_PROFILE`/`GNR_TELEMETRY`; after that this
/// is one relaxed load — cheap enough for per-operation hot paths.
#[must_use]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the metrics registry and event journal on or off
/// programmatically (the builder-flag alternative to `GNR_TELEMETRY`).
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`zone!`] guards measure anything.
#[must_use]
pub fn profiling_enabled() -> bool {
    init_from_env();
    PROFILING.load(Ordering::Relaxed)
}

/// Turns profiling zones on or off programmatically (the builder-flag
/// alternative to `GNR_PROFILE`). Does not touch the metrics flag.
pub fn set_profiling(on: bool) {
    init_from_env();
    PROFILING.store(on, Ordering::Relaxed);
}

/// Advances the op clock. The workload replayer stores the index of the
/// batch it is about to execute, so every event the batch fires —
/// however deep in the engine — lands in the journal tagged with a
/// deterministic operation index.
pub fn set_op_index(op: u64) {
    OP_CLOCK.store(op, Ordering::Relaxed);
}

/// The current op clock value.
#[must_use]
pub fn op_index() -> u64 {
    OP_CLOCK.load(Ordering::Relaxed)
}

/// Adds `$n` to the named counter, interning it on first use. Compiles
/// to a relaxed load and a branch when telemetry is disabled — the
/// counter is neither interned nor touched. The name must be a string
/// literal; the handle is cached per call site in a `OnceLock`.
///
/// Passing `$n = 0` is meaningful: it interns the counter so the
/// snapshot reports an explicit zero instead of omitting the metric.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static __GNR_COUNTER: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            __GNR_COUNTER.get_or_init(|| $crate::counter($name)).add($n);
        }
    }};
}

/// Records `$value` into the named histogram, interning it on first
/// use. Same disabled-path contract as [`counter_add!`].
#[macro_export]
macro_rules! histogram_record {
    ($name:literal, $value:expr) => {{
        if $crate::enabled() {
            static __GNR_HISTOGRAM: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __GNR_HISTOGRAM
                .get_or_init(|| $crate::histogram($name))
                .record($value);
        }
    }};
}

/// Opens a profiling zone and returns its RAII guard — bind it to a
/// local (`let _zone = zone!("engine.pulse_batch");`) so it drops at
/// scope exit. With profiling off the guard is inert: no interning, no
/// clock read, no stack push.
#[macro_export]
macro_rules! zone {
    ($name:literal) => {{
        static __GNR_ZONE: ::std::sync::OnceLock<&'static $crate::zone::ZoneStats> =
            ::std::sync::OnceLock::new();
        $crate::zone::enter_cached(&__GNR_ZONE, $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_clock_round_trips() {
        set_op_index(42);
        assert_eq!(op_index(), 42);
        set_op_index(0);
    }
}
