//! The process-wide metrics registry: named counters and log-bucketed
//! histograms behind sharded relaxed atomics.
//!
//! Entries are interned on first use and retained for the process
//! lifetime (the set of instrument sites is finite), so hot paths hold
//! `&'static` handles and never re-probe the name map. Writes are
//! relaxed `fetch_add`s on per-thread shards; reads sum the shards, so
//! a [`snapshot`] is always coherent — there is no thread-local pending
//! state to flush.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;

/// Shard count of every counter: enough to keep an 8-worker rayon pool
/// off each other's cache lines, small enough that summing on read is
/// free.
const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so two threads bumping the same counter
/// never write the same line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A named monotonic counter. Increments go to the calling thread's
/// shard (relaxed); [`Counter::value`] sums all shards.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

/// The calling thread's counter/histogram shard, assigned round-robin
/// on first use.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    /// Adds `n` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The coherent total across all shards.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Sub-bucket resolution of the histograms: 2^3 = 8 linear sub-buckets
/// per power-of-two octave (HDR style), bounding the relative value
/// error of any bucket at 1/8.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Largest bucket index: values up to `u64::MAX` land at
/// `((63 - SUB_BITS + 1) << SUB_BITS) + (SUB_COUNT - 1)`.
const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_COUNT as usize;

/// Bucket of a value: exact below `SUB_COUNT`, then one octave per
/// power of two with `SUB_COUNT` linear sub-buckets.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return usize::try_from(value).expect("small value fits usize");
    }
    let msb = 63 - value.leading_zeros();
    let sub = (value >> (msb - SUB_BITS)) & (SUB_COUNT - 1);
    ((msb - SUB_BITS + 1) as usize) << SUB_BITS | sub as usize
}

/// Lower bound of a bucket — the value reported for its members.
fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        return index;
    }
    let octave = index >> SUB_BITS;
    let sub = index & (SUB_COUNT - 1);
    (SUB_COUNT + sub) << (octave - 1)
}

/// A named log-bucketed (HDR-style) histogram of `u64` samples — the
/// recording unit is whatever the instrument site chooses (the
/// catalogue in the README names each metric's unit). Records are four
/// relaxed atomic updates; there is no lock anywhere.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot_values(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Frozen view of one histogram: totals plus the non-empty buckets as
/// `(lower bound, count)` pairs in ascending value order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (exact — summed before bucketing).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample (exact; 0.0 when empty).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The lower bound of the bucket holding quantile `q` (clamped to
    /// `[0, 1]`; 0 when empty). Bucket-resolution: the answer is within
    /// 12.5 % of the true quantile by construction.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lower;
            }
        }
        self.max
    }
}

impl serde::Serialize for HistogramSnapshot {
    #[allow(clippy::cast_precision_loss)]
    fn to_value(&self) -> serde::Value {
        let num = |v: u64| serde::Value::Number(v as f64);
        serde::Value::Object(vec![
            ("count".to_string(), num(self.count)),
            ("sum".to_string(), num(self.sum)),
            ("min".to_string(), num(self.min)),
            ("max".to_string(), num(self.max)),
            ("mean".to_string(), serde::Value::Number(self.mean())),
            ("p50".to_string(), num(self.quantile(0.50))),
            ("p90".to_string(), num(self.quantile(0.90))),
            ("p99".to_string(), num(self.quantile(0.99))),
            (
                "buckets".to_string(),
                serde::Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(lower, n)| serde::Value::Array(vec![num(lower), num(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}
impl serde::Deserialize for HistogramSnapshot {}

/// A gauge collector: a pure read of counters owned elsewhere (e.g. the
/// engine's cache tiers), sampled at [`snapshot`] time while telemetry
/// is enabled. Must be deterministic between snapshots with no work in
/// between.
pub type Collector = fn() -> Vec<(String, u64)>;

struct Registry {
    counters: RwLock<BTreeMap<&'static str, &'static Counter>>,
    histograms: RwLock<BTreeMap<&'static str, &'static Histogram>>,
    collectors: RwLock<BTreeMap<&'static str, Collector>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        collectors: RwLock::new(BTreeMap::new()),
    })
}

/// Interns (or retrieves) the named counter. Prefer the
/// [`crate::counter_add!`] macro on hot paths — it caches the handle
/// per call site and skips the registry entirely when telemetry is
/// disabled.
pub fn counter(name: &'static str) -> &'static Counter {
    let reg = registry();
    if let Some(c) = reg.counters.read().get(name) {
        return c;
    }
    let mut map = reg.counters.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Interns (or retrieves) the named histogram; macro caveats as for
/// [`counter`].
pub fn histogram(name: &'static str) -> &'static Histogram {
    let reg = registry();
    if let Some(h) = reg.histograms.read().get(name) {
        return h;
    }
    let mut map = reg.histograms.write();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Registers a named gauge collector (idempotent per name). Collector
/// metrics appear in [`snapshot`]s taken while telemetry is enabled.
pub fn register_collector(name: &'static str, collector: Collector) {
    let reg = registry();
    if reg.collectors.read().contains_key(name) {
        return;
    }
    reg.collectors.write().insert(name, collector);
}

/// One coherent view of everything telemetry knows: counters (interned
/// plus collector-sampled), histograms, the zone profile and the event
/// journal. Serializable through the workspace serde shim; all listings
/// are name-sorted so equal states serialize byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Active device backend ([`crate::active_backend`]) at snapshot
    /// time.
    pub backend: String,
    /// `(name, value)`, name-sorted. Collector-backed metrics are
    /// included only when telemetry was enabled at snapshot time.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)`, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The flat zone profile, name-sorted.
    pub zones: Vec<crate::zone::ZoneSnapshot>,
    /// The event journal ring.
    pub journal: crate::journal::JournalSnapshot,
}

impl TelemetrySnapshot {
    /// True when nothing was ever recorded: no counters or histograms
    /// interned, no zones entered, no events journaled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.zones.is_empty()
            && self.journal.recorded == 0
    }

    /// The named counter's value, if interned.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named histogram, if interned.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The named zone, if profiled.
    #[must_use]
    pub fn zone(&self, name: &str) -> Option<&crate::zone::ZoneSnapshot> {
        self.zones.iter().find(|z| z.name == name)
    }
}

impl serde::Serialize for TelemetrySnapshot {
    #[allow(clippy::cast_precision_loss)]
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "backend".to_string(),
                serde::Value::String(self.backend.clone()),
            ),
            (
                "counters".to_string(),
                serde::Value::Object(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), serde::Value::Number(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                serde::Value::Object(
                    self.histograms
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_value()))
                        .collect(),
                ),
            ),
            (
                "zones".to_string(),
                serde::Value::Array(self.zones.iter().map(serde::Serialize::to_value).collect()),
            ),
            ("journal".to_string(), self.journal.to_value()),
        ])
    }
}
impl serde::Deserialize for TelemetrySnapshot {}

/// Captures a coherent [`TelemetrySnapshot`]. No flush step is needed —
/// counter reads sum their shards — so two back-to-back snapshots with
/// no intervening work are equal (pinned by a regression test).
#[must_use]
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .read()
        .iter()
        .map(|(&name, c)| (name.to_string(), c.value()))
        .collect();
    if crate::enabled() {
        let collectors: Vec<Collector> = reg.collectors.read().values().copied().collect();
        for collect in collectors {
            counters.extend(collect());
        }
    }
    counters.sort();
    let histograms = reg
        .histograms
        .read()
        .iter()
        .map(|(&name, h)| (name.to_string(), h.snapshot_values()))
        .collect();
    TelemetrySnapshot {
        backend: crate::active_backend().to_string(),
        counters,
        histograms,
        zones: crate::zone::zones_snapshot(),
        journal: crate::journal::snapshot(),
    }
}

/// Zeroes every counter, histogram and zone and clears the journal —
/// entries stay interned (snapshots report explicit zeros), so this
/// scopes a measured phase exactly like `engine::cache::reset` scopes
/// the cache tiers. The op clock is left alone: the replayer owns it.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.read().values() {
        c.reset();
    }
    for h in reg.histograms.read().values() {
        h.reset();
    }
    crate::zone::reset_zones();
    crate::journal::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_monotone_and_bounded() {
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must not decrease at {v}");
            assert!(i < BUCKET_COUNT);
            assert!(
                bucket_lower_bound(i) <= v,
                "lower bound above the value at {v}"
            );
            last = i;
        }
        // Small values are exact.
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_quantiles_hit_bucket_lower_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot_values();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        let p50 = snap.quantile(0.5);
        assert!((40..=50).contains(&p50), "p50 bucket {p50}");
        assert!(snap.quantile(1.0) >= snap.quantile(0.5));
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Self {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            }
        }
    }

    #[test]
    fn counters_sum_across_shards() {
        let c = counter("test.registry.shard_sum");
        c.reset();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let c = counter("test.registry.shard_sum");
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 4000);
        c.reset();
    }
}
