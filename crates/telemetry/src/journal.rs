//! The bounded event journal: a fixed-capacity ring of structured
//! FTL/engine events.
//!
//! Events are recorded only from code that runs on the replay caller
//! thread (controller bookkeeping, the column-kernel escape summary,
//! epoch pre-fan-out aggregation, replay observers) — never from inside
//! a rayon fan-out — so the journal of an identical replay is
//! bit-identical. Each event is stamped with the op clock
//! ([`crate::set_op_index`]) at record time. When the ring is full the
//! oldest event is evicted; `recorded`/`dropped` totals keep the loss
//! visible.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Default ring capacity; override with [`set_capacity`].
pub const DEFAULT_CAPACITY: usize = 1024;

/// A structured FTL/engine event. Payload fields are the minimum needed
/// to replay-diff a trace; bulk statistics live in the metrics
/// registry, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The FTL ran out of free blocks on allocation and erased a
    /// fully-invalid block in place.
    Reclaim {
        /// Physical block erased.
        block: u64,
    },
    /// Garbage collection erased a victim block.
    GcErase {
        /// Physical block erased.
        block: u64,
        /// Live pages relocated out of the victim before the erase.
        survivors: u64,
    },
    /// Garbage collection relocated one live page.
    GcRelocation {
        /// Logical page moved.
        lpn: u64,
        /// Destination physical block.
        block: u64,
        /// Destination page within the block.
        page: u64,
    },
    /// The endurance campaign jumped the P/E epoch forward.
    EpochJump {
        /// Cycles advanced in the jump.
        cycles: u64,
    },
    /// Controller state was restored from a checkpoint.
    CheckpointRestore {
        /// State digest of the restored controller.
        digest: u64,
    },
    /// A flow-map batch left queries unanswered and fell back to exact
    /// ODE integration (one event per batch, aggregated).
    FlowMapEscape {
        /// Queries that escaped to the exact engine.
        queries: u64,
    },
    /// A cycle-map epoch batch had probes outside the map's domain and
    /// fell back per probe (one event per epoch, aggregated).
    CycleMapFallback {
        /// Probes that fell back.
        probes: u64,
    },
    /// An ECC decode scan saw uncorrectable pages.
    DecodeFailure {
        /// Uncorrectable pages in the scan.
        pages: u64,
    },
    /// A read-retry ladder had to step past the nominal threshold.
    ReadRetryStep {
        /// Deepest retry rung used (1 = first retry).
        depth: u64,
    },
    /// A page program reported a failed status (media or injected).
    ProgramFail {
        /// Block of the failed page.
        block: u64,
        /// Page index within the block.
        page: u64,
    },
    /// The FTL retired a grown-bad block into the spare pool.
    BlockRetired {
        /// The retired physical block.
        block: u64,
        /// Live pages relocated out of the block before retirement.
        relocated: u64,
    },
    /// Power was cut at an injected op-clock point; volatile FTL
    /// metadata past the last checkpoint survives only as journaled
    /// deltas.
    PowerLoss {
        /// Metadata deltas pending (not yet folded into a checkpoint)
        /// at the moment power was lost.
        pending_deltas: u64,
    },
    /// Crash recovery replayed the metadata delta journal onto the last
    /// checkpoint.
    RecoveryReplay {
        /// Deltas replayed onto the checkpoint.
        deltas: u64,
    },
    /// Read-reclaim escalation relocated a whole block's live pages
    /// (decode failures past threshold).
    ReadReclaim {
        /// The reclaimed physical block.
        block: u64,
        /// Live pages relocated out of it.
        pages: u64,
    },
}

impl EventKind {
    /// The event's tag string, as serialized under `"kind"`.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Reclaim { .. } => "reclaim",
            Self::GcErase { .. } => "gc_erase",
            Self::GcRelocation { .. } => "gc_relocation",
            Self::EpochJump { .. } => "epoch_jump",
            Self::CheckpointRestore { .. } => "checkpoint_restore",
            Self::FlowMapEscape { .. } => "flowmap_escape",
            Self::CycleMapFallback { .. } => "cyclemap_fallback",
            Self::DecodeFailure { .. } => "decode_failure",
            Self::ReadRetryStep { .. } => "read_retry_step",
            Self::ProgramFail { .. } => "program_fail",
            Self::BlockRetired { .. } => "block_retired",
            Self::PowerLoss { .. } => "power_loss",
            Self::RecoveryReplay { .. } => "recovery_replay",
            Self::ReadReclaim { .. } => "read_reclaim",
        }
    }
}

/// One journal entry: an event stamped with the replay op index current
/// at record time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Op clock value when the event fired.
    pub op: u64,
    /// Active device backend ([`crate::active_backend`]) when the event
    /// fired.
    pub backend: &'static str,
    /// The structured event.
    pub kind: EventKind,
}

#[allow(clippy::cast_precision_loss)]
fn num(v: u64) -> serde::Value {
    serde::Value::Number(v as f64)
}

impl serde::Serialize for JournalEvent {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("op".to_string(), num(self.op)),
            (
                "backend".to_string(),
                serde::Value::String(self.backend.to_string()),
            ),
            (
                "kind".to_string(),
                serde::Value::String(self.kind.tag().to_string()),
            ),
        ];
        match self.kind {
            EventKind::Reclaim { block } => fields.push(("block".to_string(), num(block))),
            EventKind::GcErase { block, survivors } => {
                fields.push(("block".to_string(), num(block)));
                fields.push(("survivors".to_string(), num(survivors)));
            }
            EventKind::GcRelocation { lpn, block, page } => {
                fields.push(("lpn".to_string(), num(lpn)));
                fields.push(("block".to_string(), num(block)));
                fields.push(("page".to_string(), num(page)));
            }
            EventKind::EpochJump { cycles } => fields.push(("cycles".to_string(), num(cycles))),
            EventKind::CheckpointRestore { digest } => {
                // Full-width hex: u64 digests exceed f64's 2^53 integer
                // range, so a JSON number would corrupt them.
                fields.push((
                    "digest".to_string(),
                    serde::Value::String(format!("{digest:#018x}")),
                ));
            }
            EventKind::FlowMapEscape { queries } => {
                fields.push(("queries".to_string(), num(queries)));
            }
            EventKind::CycleMapFallback { probes } => {
                fields.push(("probes".to_string(), num(probes)));
            }
            EventKind::DecodeFailure { pages } => fields.push(("pages".to_string(), num(pages))),
            EventKind::ReadRetryStep { depth } => fields.push(("depth".to_string(), num(depth))),
            EventKind::ProgramFail { block, page } => {
                fields.push(("block".to_string(), num(block)));
                fields.push(("page".to_string(), num(page)));
            }
            EventKind::BlockRetired { block, relocated } => {
                fields.push(("block".to_string(), num(block)));
                fields.push(("relocated".to_string(), num(relocated)));
            }
            EventKind::PowerLoss { pending_deltas } => {
                fields.push(("pending_deltas".to_string(), num(pending_deltas)));
            }
            EventKind::RecoveryReplay { deltas } => {
                fields.push(("deltas".to_string(), num(deltas)));
            }
            EventKind::ReadReclaim { block, pages } => {
                fields.push(("block".to_string(), num(block)));
                fields.push(("pages".to_string(), num(pages)));
            }
        }
        serde::Value::Object(fields)
    }
}
impl serde::Deserialize for JournalEvent {}

impl JournalEvent {
    /// Parses an event back from its [`serde::Serialize::to_value`]
    /// form. Returns `None` on an unknown tag or missing field.
    #[must_use]
    pub fn from_value(value: &serde::Value) -> Option<Self> {
        let op = value.get("op")?.as_u64()?;
        // Traces written before backend attribution existed decode as
        // the default backend.
        let backend = value
            .get("backend")
            .and_then(serde::Value::as_str)
            .map_or(crate::DEFAULT_BACKEND, intern_backend);
        let field = |name: &str| value.get(name).and_then(serde::Value::as_u64);
        let kind = match value.get("kind")?.as_str()? {
            "reclaim" => EventKind::Reclaim {
                block: field("block")?,
            },
            "gc_erase" => EventKind::GcErase {
                block: field("block")?,
                survivors: field("survivors")?,
            },
            "gc_relocation" => EventKind::GcRelocation {
                lpn: field("lpn")?,
                block: field("block")?,
                page: field("page")?,
            },
            "epoch_jump" => EventKind::EpochJump {
                cycles: field("cycles")?,
            },
            "checkpoint_restore" => {
                let hex = value.get("digest")?.as_str()?;
                let digest = u64::from_str_radix(hex.strip_prefix("0x")?, 16).ok()?;
                EventKind::CheckpointRestore { digest }
            }
            "flowmap_escape" => EventKind::FlowMapEscape {
                queries: field("queries")?,
            },
            "cyclemap_fallback" => EventKind::CycleMapFallback {
                probes: field("probes")?,
            },
            "decode_failure" => EventKind::DecodeFailure {
                pages: field("pages")?,
            },
            "read_retry_step" => EventKind::ReadRetryStep {
                depth: field("depth")?,
            },
            "program_fail" => EventKind::ProgramFail {
                block: field("block")?,
                page: field("page")?,
            },
            "block_retired" => EventKind::BlockRetired {
                block: field("block")?,
                relocated: field("relocated")?,
            },
            "power_loss" => EventKind::PowerLoss {
                pending_deltas: field("pending_deltas")?,
            },
            "recovery_replay" => EventKind::RecoveryReplay {
                deltas: field("deltas")?,
            },
            "read_reclaim" => EventKind::ReadReclaim {
                block: field("block")?,
                pages: field("pages")?,
            },
            _ => return None,
        };
        Some(Self { op, backend, kind })
    }
}

/// Maps a decoded backend name onto a `'static` string: the known
/// backends intern to their canonical literals, anything else is leaked
/// once (the set of names in any trace is tiny and fixed).
fn intern_backend(name: &str) -> &'static str {
    match name {
        "gnr-floating-gate" => "gnr-floating-gate",
        "cnt-floating-gate" => "cnt-floating-gate",
        "pcm-resistive" => "pcm-resistive",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

struct Journal {
    events: VecDeque<JournalEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

static JOURNAL: Mutex<Journal> = Mutex::new(Journal {
    events: VecDeque::new(),
    capacity: DEFAULT_CAPACITY,
    recorded: 0,
    dropped: 0,
});

/// Records an event (stamped with the current op clock) if telemetry is
/// enabled; evicts the oldest entry when the ring is full.
pub fn record(kind: EventKind) {
    if !crate::enabled() {
        return;
    }
    let event = JournalEvent {
        op: crate::op_index(),
        backend: crate::active_backend(),
        kind,
    };
    let mut journal = JOURNAL.lock();
    journal.recorded += 1;
    if journal.events.len() >= journal.capacity {
        journal.events.pop_front();
        journal.dropped += 1;
    }
    journal.events.push_back(event);
}

/// Resizes the ring, evicting oldest entries if shrinking below the
/// current length. Capacity 0 is clamped to 1.
pub fn set_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    let mut journal = JOURNAL.lock();
    while journal.events.len() > capacity {
        journal.events.pop_front();
        journal.dropped += 1;
    }
    journal.capacity = capacity;
}

/// Clears the ring and zeroes the `recorded`/`dropped` totals; the
/// capacity is kept.
pub fn clear() {
    let mut journal = JOURNAL.lock();
    journal.events.clear();
    journal.recorded = 0;
    journal.dropped = 0;
}

/// The retained events, oldest first.
#[must_use]
pub fn events() -> Vec<JournalEvent> {
    JOURNAL.lock().events.iter().copied().collect()
}

/// Frozen view of the journal ring in a [`crate::TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Events recorded since the last [`clear`], evicted ones included.
    pub recorded: u64,
    /// Events evicted by capacity pressure.
    pub dropped: u64,
    /// Ring capacity at snapshot time.
    pub capacity: u64,
    /// Retained events, oldest first.
    pub events: Vec<JournalEvent>,
}

impl serde::Serialize for JournalSnapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("recorded".to_string(), num(self.recorded)),
            ("dropped".to_string(), num(self.dropped)),
            ("capacity".to_string(), num(self.capacity)),
            (
                "events".to_string(),
                serde::Value::Array(self.events.iter().map(serde::Serialize::to_value).collect()),
            ),
        ])
    }
}
impl serde::Deserialize for JournalSnapshot {}

impl JournalSnapshot {
    /// Parses a snapshot back from its serialized form.
    #[must_use]
    pub fn from_value(value: &serde::Value) -> Option<Self> {
        Some(Self {
            recorded: value.get("recorded")?.as_u64()?,
            dropped: value.get("dropped")?.as_u64()?,
            capacity: value.get("capacity")?.as_u64()?,
            events: value
                .get("events")?
                .as_array()?
                .iter()
                .map(JournalEvent::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Captures the current ring state.
#[must_use]
pub fn snapshot() -> JournalSnapshot {
    let journal = JOURNAL.lock();
    JournalSnapshot {
        recorded: journal.recorded,
        dropped: journal.dropped,
        capacity: journal.capacity as u64,
        events: journal.events.iter().copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize as _;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        crate::set_enabled(true);
        clear();
        set_capacity(4);
        for i in 0..10 {
            crate::set_op_index(i);
            record(EventKind::Reclaim { block: i });
        }
        let snap = snapshot();
        assert_eq!(snap.recorded, 10);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events[0].op, 6, "oldest retained event");
        assert_eq!(snap.events[3].op, 9, "newest event kept");
        crate::set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        clear();
        crate::set_op_index(0);
    }

    #[test]
    fn digest_survives_json_round_trip() {
        let event = JournalEvent {
            op: 3,
            backend: "pcm-resistive",
            kind: EventKind::CheckpointRestore {
                digest: 0xc36e_c1a2_b87d_0fee,
            },
        };
        let parsed = JournalEvent::from_value(&event.to_value()).unwrap();
        assert_eq!(parsed, event);
    }

    #[test]
    fn unknown_backend_names_survive_decode() {
        let event = JournalEvent {
            op: 0,
            backend: "some-future-backend",
            kind: EventKind::Reclaim { block: 7 },
        };
        let parsed = JournalEvent::from_value(&event.to_value()).unwrap();
        assert_eq!(parsed, event);
    }
}
