//! Pristine graphene sheet constants.
//!
//! These feed the nanoribbon ([`crate::gnr`]) and multilayer
//! ([`crate::mlgnr`]) models.

use gnr_units::{Energy, Length};

/// Carbon–carbon bond length `a_cc` = 1.42 Å.
#[must_use]
pub fn bond_length() -> Length {
    Length::from_angstroms(1.42)
}

/// Graphene lattice constant `a = √3 a_cc` = 2.46 Å.
#[must_use]
pub fn lattice_constant() -> Length {
    Length::from_angstroms(2.46)
}

/// Interlayer (Bernal) spacing in multilayer graphene, 3.35 Å.
#[must_use]
pub fn interlayer_spacing() -> Length {
    Length::from_angstroms(3.35)
}

/// Nearest-neighbour tight-binding hopping energy γ₀ ≈ 2.7 eV.
#[must_use]
pub fn hopping_energy() -> Energy {
    Energy::from_ev(2.7)
}

/// Fermi velocity `v_F ≈ 1.0 × 10⁶ m/s`.
#[must_use]
pub fn fermi_velocity() -> f64 {
    1.0e6
}

/// Work function of intrinsic monolayer graphene, ≈ 4.56 eV.
#[must_use]
pub fn work_function_monolayer() -> Energy {
    Energy::from_ev(4.56)
}

/// Work function of graphite (the many-layer limit), ≈ 4.6 eV.
#[must_use]
pub fn work_function_graphite() -> Energy {
    Energy::from_ev(4.6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_constant_is_sqrt3_times_bond() {
        let ratio = lattice_constant().as_meters() / bond_length().as_meters();
        assert!((ratio - 3.0f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn work_functions_bracket_known_range() {
        assert!(work_function_monolayer().as_ev() > 4.3);
        assert!(work_function_graphite().as_ev() < 4.9);
        assert!(work_function_graphite() > work_function_monolayer());
    }

    #[test]
    fn fermi_velocity_order_of_magnitude() {
        assert!((fermi_velocity() - 1e6).abs() < 2e5);
    }
}
