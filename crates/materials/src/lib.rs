//! # gnr-materials
//!
//! Material models for the `gnr-flash` simulator (reproduction of Hossain
//! et al., IEEE SOCC 2014).
//!
//! The paper's device stacks a **multilayer graphene nanoribbon (MLGNR)
//! channel**, a tunnel oxide, a **carbon nanotube (CNT) floating gate**, a
//! control oxide and a control gate (paper Figure 1). This crate provides
//! the material properties that parameterise the tunneling physics:
//!
//! * [`oxide`] — insulators (SiO₂, Al₂O₃, HfO₂, h-BN, Si₃N₄) with
//!   permittivity, electron affinity, effective tunneling mass, band gap and
//!   breakdown field.
//! * [`graphene`], [`gnr`], [`gnr_bands`], [`mlgnr`] — graphene sheet constants, armchair /
//!   zigzag nanoribbon band structure (width-dependent gap families), and
//!   multilayer stacks with interlayer screening and quantum capacitance.
//! * [`cnt`] — chirality-indexed nanotubes: metallicity, diameter, band gap
//!   and work function (the floating-gate material).
//! * [`silicon`] — bulk silicon and n⁺ poly-silicon (the conventional-FGT
//!   baseline).
//! * [`interface`] — emitter/oxide barrier heights by vacuum alignment
//!   (Anderson's rule), the `ΦB` of the paper's eq. (1) and (4).
//! * [`fermi`] — Fermi–Dirac statistics and graphene carrier densities.
//!
//! # Example
//!
//! The paper's tunnel barrier (MLGNR channel emitting into SiO₂):
//!
//! ```
//! use gnr_materials::interface::TunnelInterface;
//! use gnr_materials::mlgnr::MultilayerGnr;
//! use gnr_materials::oxide::Oxide;
//!
//! let channel = MultilayerGnr::paper_channel();
//! let iface = TunnelInterface::new(channel.work_function(), Oxide::silicon_dioxide())
//!     .unwrap();
//! let phi_b = iface.barrier_height();
//! assert!(phi_b.as_ev() > 3.0 && phi_b.as_ev() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnt;
pub mod fermi;
pub mod gnr;
pub mod gnr_bands;
pub mod graphene;
pub mod interface;
pub mod mlgnr;
pub mod oxide;
pub mod silicon;

mod error;

pub use error::MaterialError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, MaterialError>;
