//! Multilayer graphene nanoribbon (MLGNR) stacks — the paper's channel
//! material.
//!
//! Stacking monolayer ribbons increases the density of states (more charge
//! to tunnel, the reason the paper's drain bias "increases the electron
//! density in the graphene channel") and shifts the work function toward
//! the graphite value. Interlayer screening limits how many layers couple
//! electrostatically to the gate.

use gnr_units::constants::{ELEMENTARY_CHARGE, REDUCED_PLANCK};
use gnr_units::{CapacitancePerArea, Energy, Length, Voltage};

use crate::gnr::{Edge, Nanoribbon};
use crate::graphene;
use crate::{MaterialError, Result};

/// Interlayer electrostatic screening length in graphite, ≈ 0.6 nm
/// (≈ 2 layers): layers further from the oxide barely feel the gate.
const SCREENING_LENGTH_NM: f64 = 0.6;

/// A multilayer graphene nanoribbon channel.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultilayerGnr {
    ribbon: Nanoribbon,
    layers: u32,
}

impl MultilayerGnr {
    /// Creates a stack of `layers` identical ribbons.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] when `layers == 0` or
    /// `layers > 100` (beyond any published MLGNR interconnect stack).
    pub fn new(ribbon: Nanoribbon, layers: u32) -> Result<Self> {
        if layers == 0 || layers > 100 {
            return Err(MaterialError::InvalidParameter {
                name: "layers",
                value: f64::from(layers),
                constraint: "must be within 1..=100",
            });
        }
        Ok(Self { ribbon, layers })
    }

    /// The channel assumed by the paper's worked example: a 22 nm-class
    /// armchair ribbon (N = 18 dimer lines ≈ 2.1 nm width) stacked 5
    /// layers deep — quasi-metallic enough to source FN electrons while
    /// retaining a ribbon gap.
    #[must_use]
    pub fn paper_channel() -> Self {
        let ribbon = Nanoribbon::new(Edge::Armchair, 18).expect("N = 18 is valid");
        Self::new(ribbon, 5).expect("5 layers is valid")
    }

    /// The constituent ribbon.
    #[must_use]
    pub fn ribbon(&self) -> Nanoribbon {
        self.ribbon
    }

    /// Number of stacked layers.
    #[must_use]
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Total stack thickness: `layers` sheets separated by the interlayer
    /// spacing (a single layer is one atomic sheet ≈ 0.34 nm effective).
    #[must_use]
    pub fn thickness(&self) -> Length {
        Length::from_meters(f64::from(self.layers) * graphene::interlayer_spacing().as_meters())
    }

    /// Work function, interpolating from the monolayer value toward the
    /// graphite value with an exponential layer saturation (λ = 2 layers).
    #[must_use]
    pub fn work_function(&self) -> Energy {
        let wf_mono = graphene::work_function_monolayer().as_ev();
        let wf_graphite = graphene::work_function_graphite().as_ev();
        let n = f64::from(self.layers);
        let blend = 1.0 - (-(n - 1.0) / 2.0).exp();
        Energy::from_ev(wf_mono + (wf_graphite - wf_mono) * blend)
    }

    /// Number of layers that effectively couple to the gate, limited by
    /// interlayer screening: `min(layers, 1 + λ_screen / d_interlayer)`.
    #[must_use]
    pub fn effective_layers(&self) -> f64 {
        let max_coupled =
            1.0 + SCREENING_LENGTH_NM / graphene::interlayer_spacing().as_nanometers();
        f64::from(self.layers).min(max_coupled)
    }

    /// Graphene quantum capacitance per unit area at channel potential
    /// `v_ch`: `C_q = 2 q² |E_F| / (π (ħ v_F)²)` with `E_F = q·v_ch`,
    /// scaled by the effective (screening-limited) layer count.
    ///
    /// Near the Dirac point the ideal value vanishes; a thermal floor of
    /// `E_F ≈ 25.9 meV` (room temperature) is applied, the standard
    /// regularisation.
    #[must_use]
    pub fn quantum_capacitance(&self, v_ch: Voltage) -> CapacitancePerArea {
        let hbar_vf = REDUCED_PLANCK * graphene::fermi_velocity();
        let e_f = (v_ch.as_volts().abs() * ELEMENTARY_CHARGE).max(0.0259 * ELEMENTARY_CHARGE);
        let cq_single = 2.0 * ELEMENTARY_CHARGE * ELEMENTARY_CHARGE * e_f
            / (core::f64::consts::PI * hbar_vf * hbar_vf);
        CapacitancePerArea::from_farads_per_square_meter(cq_single * self.effective_layers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_is_plausible() {
        let ch = MultilayerGnr::paper_channel();
        assert_eq!(ch.layers(), 5);
        let wf = ch.work_function().as_ev();
        assert!(wf > 4.5 && wf < 4.65, "wf = {wf}");
        assert!(ch.thickness().as_nanometers() > 1.0);
    }

    #[test]
    fn work_function_increases_with_layers() {
        let ribbon = Nanoribbon::new(Edge::Armchair, 18).unwrap();
        let one = MultilayerGnr::new(ribbon, 1).unwrap().work_function();
        let many = MultilayerGnr::new(ribbon, 30).unwrap().work_function();
        assert!(many > one);
        assert!((one.as_ev() - 4.56).abs() < 1e-9);
        assert!((many.as_ev() - 4.6).abs() < 0.01);
    }

    #[test]
    fn screening_caps_effective_layers() {
        let ribbon = Nanoribbon::new(Edge::Armchair, 18).unwrap();
        let thick = MultilayerGnr::new(ribbon, 50).unwrap();
        assert!(thick.effective_layers() < 4.0);
        let thin = MultilayerGnr::new(ribbon, 1).unwrap();
        assert!((thin.effective_layers() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantum_capacitance_grows_with_bias() {
        let ch = MultilayerGnr::paper_channel();
        let low = ch.quantum_capacitance(Voltage::from_volts(0.05));
        let high = ch.quantum_capacitance(Voltage::from_volts(0.5));
        assert!(high.as_farads_per_square_meter() > low.as_farads_per_square_meter());
    }

    #[test]
    fn quantum_capacitance_floor_at_dirac_point() {
        let ch = MultilayerGnr::paper_channel();
        let zero = ch.quantum_capacitance(Voltage::ZERO);
        assert!(zero.as_farads_per_square_meter() > 0.0);
        // Symmetric in bias sign (electron/hole symmetry).
        let pos = ch.quantum_capacitance(Voltage::from_volts(0.3));
        let neg = ch.quantum_capacitance(Voltage::from_volts(-0.3));
        assert!(
            (pos.as_farads_per_square_meter() - neg.as_farads_per_square_meter()).abs() < 1e-12
        );
    }

    #[test]
    fn layer_bounds_enforced() {
        let ribbon = Nanoribbon::new(Edge::Armchair, 18).unwrap();
        assert!(MultilayerGnr::new(ribbon, 0).is_err());
        assert!(MultilayerGnr::new(ribbon, 101).is_err());
    }

    #[test]
    fn quantum_capacitance_magnitude_sanity() {
        // Monolayer graphene follows C_q ≈ 23·|V_ch| µF/cm² (per volt of
        // channel potential); at 0.3 V that is ≈ 7 µF/cm².
        let ribbon = Nanoribbon::new(Edge::Armchair, 18).unwrap();
        let mono = MultilayerGnr::new(ribbon, 1).unwrap();
        let cq = mono.quantum_capacitance(Voltage::from_volts(0.3));
        let uf_cm2 = cq.as_farads_per_square_meter() * 100.0; // F/m² → µF/cm²
        assert!(uf_cm2 > 5.0 && uf_cm2 < 10.0, "C_q = {uf_cm2} µF/cm²");
    }
}
