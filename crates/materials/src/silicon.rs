//! Bulk silicon and poly-silicon constants for the conventional-FGT
//! baseline.
//!
//! The paper repeatedly contrasts the proposed device with "conventional
//! silicon FGT" (15–20 V FN programming, Si/SiO₂ barrier); these constants
//! configure that baseline in `gnr-flash::baseline`.

use gnr_units::Energy;

/// Electron affinity of silicon, χ = 4.05 eV.
#[must_use]
pub fn electron_affinity() -> Energy {
    Energy::from_ev(4.05)
}

/// Band gap of silicon at 300 K, 1.12 eV.
#[must_use]
pub fn band_gap() -> Energy {
    Energy::from_ev(1.12)
}

/// Work function of degenerate n⁺ poly-silicon (Fermi level at the
/// conduction-band edge): equals the electron affinity.
#[must_use]
pub fn n_poly_work_function() -> Energy {
    electron_affinity()
}

/// Effective work function of the inverted n-channel surface used as the
/// FN emitter in a conventional cell: χ + small quantisation offset.
#[must_use]
pub fn inversion_layer_work_function() -> Energy {
    Energy::from_ev(4.05 + 0.05)
}

/// The canonical Si/SiO₂ electron barrier, ≈ 3.1 eV (Lenzlinger–Snow
/// measured 3.05–3.2 eV). Provided as a reference value for validation
/// tests; the simulator computes barriers from alignments.
#[must_use]
pub fn si_sio2_reference_barrier() -> Energy {
    Energy::from_ev(3.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oxide::Oxide;

    #[test]
    fn computed_si_sio2_barrier_matches_reference() {
        let computed = inversion_layer_work_function().as_ev()
            - Oxide::silicon_dioxide().electron_affinity().as_ev();
        assert!(
            (computed - si_sio2_reference_barrier().as_ev()).abs() < 0.1,
            "computed barrier {computed} eV"
        );
    }

    #[test]
    fn n_poly_is_degenerate() {
        assert_eq!(n_poly_work_function().as_ev(), electron_affinity().as_ev());
    }
}
