//! Carbon nanotube models — the paper's floating-gate material.
//!
//! The floating gate of the proposed device is a CNT layer (paper Figure
//! 1). For the charge-storage model the relevant properties are the work
//! function (sets the barrier for charge *leaving* the floating gate), the
//! metallicity (a metallic gate equilibrates stored charge quickly) and the
//! geometric capacitance contribution of the tube array.

use gnr_units::{Energy, Length};

use crate::graphene;
use crate::{MaterialError, Result};

/// A chirality index pair `(n, m)` with `n ≥ m ≥ 0`, `n > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Chirality {
    n: u32,
    m: u32,
}

impl Chirality {
    /// Creates a chirality pair.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] unless `n ≥ m` and `n > 0`.
    pub fn new(n: u32, m: u32) -> Result<Self> {
        if n == 0 || m > n {
            return Err(MaterialError::InvalidParameter {
                name: "chirality",
                value: f64::from(n),
                constraint: "requires n > 0 and n >= m",
            });
        }
        Ok(Self { n, m })
    }

    /// First index `n`.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Second index `m`.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Metallic when `(n − m) mod 3 == 0` (armchair and 1/3 of the rest).
    #[must_use]
    pub fn is_metallic(&self) -> bool {
        (self.n - self.m).is_multiple_of(3)
    }

    /// Tube diameter `d = a·√(n² + nm + m²)/π` with `a` the graphene
    /// lattice constant.
    #[must_use]
    pub fn diameter(&self) -> Length {
        let n = f64::from(self.n);
        let m = f64::from(self.m);
        let a = graphene::lattice_constant().as_meters();
        Length::from_meters(a * (n * n + n * m + m * m).sqrt() / core::f64::consts::PI)
    }
}

/// A single-walled carbon nanotube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Cnt {
    chirality: Chirality,
}

impl Cnt {
    /// Creates a nanotube with the given chirality.
    #[must_use]
    pub fn new(chirality: Chirality) -> Self {
        Self { chirality }
    }

    /// The metallic (10, 10) armchair tube used as the paper's
    /// floating-gate preset (metallic tubes equilibrate stored charge
    /// across the gate, behaving like a conventional conductive FG).
    #[must_use]
    pub fn paper_floating_gate() -> Self {
        Self::new(Chirality::new(10, 10).expect("(10, 10) is valid"))
    }

    /// Chirality indices.
    #[must_use]
    pub fn chirality(&self) -> Chirality {
        self.chirality
    }

    /// Tube diameter.
    #[must_use]
    pub fn diameter(&self) -> Length {
        self.chirality.diameter()
    }

    /// Band gap: 0 for metallic tubes, else the textbook
    /// `E_g ≈ 2 γ₀ a_cc / d ≈ 0.84 eV·nm / d` scaling.
    #[must_use]
    pub fn band_gap(&self) -> Energy {
        if self.chirality.is_metallic() {
            return Energy::from_ev(0.0);
        }
        let d_nm = self.diameter().as_nanometers();
        let prefactor_ev_nm =
            2.0 * graphene::hopping_energy().as_ev() * graphene::bond_length().as_nanometers();
        Energy::from_ev(prefactor_ev_nm / d_nm)
    }

    /// Work function: the graphite-like bulk value 4.7 eV with the
    /// curvature correction `+0.2 eV·nm / d` for small tubes
    /// (photoemission-fitted trend).
    #[must_use]
    pub fn work_function(&self) -> Energy {
        let d_nm = self.diameter().as_nanometers();
        Energy::from_ev(4.7 + 0.2 * (1.0 / d_nm - 1.0 / 1.356).clamp(-0.5, 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armchair_tubes_are_metallic() {
        assert!(Chirality::new(10, 10).unwrap().is_metallic());
        assert!(Chirality::new(9, 0).unwrap().is_metallic());
        assert!(!Chirality::new(10, 0).unwrap().is_metallic());
        assert!(!Chirality::new(8, 0).unwrap().is_metallic());
    }

    #[test]
    fn diameter_of_10_10_tube() {
        // (10,10): d = 2.46 Å * sqrt(300) / π ≈ 13.56 Å.
        let d = Chirality::new(10, 10).unwrap().diameter();
        assert!((d.as_angstroms() - 13.56).abs() < 0.05);
    }

    #[test]
    fn semiconducting_gap_scales_inverse_diameter() {
        let small = Cnt::new(Chirality::new(10, 0).unwrap());
        let large = Cnt::new(Chirality::new(20, 0).unwrap());
        assert!(small.band_gap() > large.band_gap());
        // (10,0): d ≈ 0.78 nm → Eg ≈ 0.98 eV. Accept the textbook window.
        let gap = small.band_gap().as_ev();
        assert!(gap > 0.7 && gap < 1.3, "gap = {gap}");
    }

    #[test]
    fn metallic_tube_has_zero_gap() {
        assert_eq!(Cnt::paper_floating_gate().band_gap().as_ev(), 0.0);
    }

    #[test]
    fn work_function_in_photoemission_range() {
        let wf = Cnt::paper_floating_gate().work_function().as_ev();
        assert!(wf > 4.5 && wf < 5.0, "wf = {wf}");
    }

    #[test]
    fn smaller_tubes_have_larger_work_function() {
        let small = Cnt::new(Chirality::new(7, 7).unwrap());
        let large = Cnt::new(Chirality::new(15, 15).unwrap());
        assert!(small.work_function() > large.work_function());
    }

    #[test]
    fn invalid_chirality_rejected() {
        assert!(Chirality::new(0, 0).is_err());
        assert!(Chirality::new(5, 6).is_err());
    }
}
