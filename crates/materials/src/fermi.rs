//! Fermi–Dirac statistics and graphene carrier densities.
//!
//! Used by the channel model: the paper applies a 50 mV drain bias "to
//! increase the electron density in the graphene channel" — the density
//! change is quantified by [`graphene_sheet_density`].

use gnr_units::constants::{BOLTZMANN, ELEMENTARY_CHARGE, REDUCED_PLANCK};
use gnr_units::{Energy, Temperature};

use crate::graphene;

/// Fermi–Dirac occupation `f(E) = 1 / (1 + exp((E − μ)/kT))`.
///
/// Handles the `T → 0` limit as a step function.
#[must_use]
pub fn fermi_dirac(energy: Energy, chemical_potential: Energy, temperature: Temperature) -> f64 {
    let kt = BOLTZMANN * temperature.as_kelvin();
    let de = energy.as_joules() - chemical_potential.as_joules();
    if kt <= 0.0 {
        return if de < 0.0 {
            1.0
        } else if de > 0.0 {
            0.0
        } else {
            0.5
        };
    }
    let x = de / kt;
    // Guard against overflow for |x| > ~700.
    if x > 700.0 {
        0.0
    } else if x < -700.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Linear density of states of 2-D graphene at energy `E` (per area, per
/// joule): `g(E) = 2|E| / (π (ħ v_F)²)`.
#[must_use]
pub fn graphene_dos(energy: Energy) -> f64 {
    let hbar_vf = REDUCED_PLANCK * graphene::fermi_velocity();
    2.0 * energy.as_joules().abs() / (core::f64::consts::PI * hbar_vf * hbar_vf)
}

/// Degenerate-limit sheet carrier density of graphene at Fermi level
/// `E_F` (per m²): `n = E_F² / (π (ħ v_F)²)`; the sign of `E_F` picks
/// electrons (+) or holes (−), returned as a signed density.
#[must_use]
pub fn graphene_sheet_density(fermi_level: Energy) -> f64 {
    let hbar_vf = REDUCED_PLANCK * graphene::fermi_velocity();
    let e = fermi_level.as_joules();
    e.signum() * e * e / (core::f64::consts::PI * hbar_vf * hbar_vf)
}

/// Fermi level required for a given (positive) electron sheet density:
/// the inverse of [`graphene_sheet_density`].
///
/// # Panics
///
/// Panics if `density` is negative.
#[must_use]
pub fn fermi_level_for_density(density: f64) -> Energy {
    assert!(density >= 0.0, "density must be non-negative");
    let hbar_vf = REDUCED_PLANCK * graphene::fermi_velocity();
    Energy::from_joules((density * core::f64::consts::PI).sqrt() * hbar_vf)
}

/// Sheet-density increase produced by shifting the channel potential by
/// `delta_v` volts (e.g. the paper's 50 mV drain bias), starting from a
/// Fermi level `ef0`.
#[must_use]
pub fn density_increase_from_bias(ef0: Energy, delta_v: f64) -> f64 {
    let ef1 = Energy::from_joules(ef0.as_joules() + delta_v * ELEMENTARY_CHARGE);
    graphene_sheet_density(ef1) - graphene_sheet_density(ef0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupation_is_half_at_mu() {
        let f = fermi_dirac(
            Energy::from_ev(1.0),
            Energy::from_ev(1.0),
            Temperature::room(),
        );
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupation_limits() {
        let t = Temperature::room();
        assert!(fermi_dirac(Energy::from_ev(0.0), Energy::from_ev(1.0), t) > 0.999);
        assert!(fermi_dirac(Energy::from_ev(2.0), Energy::from_ev(1.0), t) < 1e-3);
    }

    #[test]
    fn zero_temperature_is_step() {
        let t = Temperature::from_kelvin(0.0);
        assert_eq!(
            fermi_dirac(Energy::from_ev(0.5), Energy::from_ev(1.0), t),
            1.0
        );
        assert_eq!(
            fermi_dirac(Energy::from_ev(1.5), Energy::from_ev(1.0), t),
            0.0
        );
    }

    #[test]
    fn extreme_arguments_do_not_overflow() {
        let t = Temperature::from_kelvin(1.0);
        let f = fermi_dirac(Energy::from_ev(100.0), Energy::from_ev(0.0), t);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn dos_vanishes_at_dirac_point_and_is_symmetric() {
        assert_eq!(graphene_dos(Energy::from_ev(0.0)), 0.0);
        assert_eq!(
            graphene_dos(Energy::from_ev(0.3)),
            graphene_dos(Energy::from_ev(-0.3))
        );
    }

    #[test]
    fn sheet_density_at_100mev_is_order_1e15_per_m2() {
        // Known benchmark: E_F = 0.1 eV → n ≈ 7.3e14 cm⁻²... in m⁻²: ≈7.3e14*? —
        // compute: n = (0.1 eV)² / (π (ħ v_F)²) ≈ 5.9e14 m⁻² × 12.3 ≈ 7e15 m⁻².
        let n = graphene_sheet_density(Energy::from_ev(0.1));
        assert!(n > 1e14 && n < 1e16, "n = {n:e}");
    }

    #[test]
    fn density_fermi_level_round_trip() {
        let ef = Energy::from_ev(0.25);
        let n = graphene_sheet_density(ef);
        let back = fermi_level_for_density(n);
        assert!((back.as_ev() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hole_density_is_negative() {
        assert!(graphene_sheet_density(Energy::from_ev(-0.2)) < 0.0);
    }

    #[test]
    fn drain_bias_increases_density() {
        // The paper's stated purpose of the 50 mV drain bias.
        let inc = density_increase_from_bias(Energy::from_ev(0.1), 0.05);
        assert!(inc > 0.0);
    }
}
