//! Emitter/oxide interfaces and barrier heights.
//!
//! The paper's `ΦB` — "the barrier seen by the carriers from the channel"
//! (§II) — is computed here by vacuum-level alignment (Anderson's rule):
//! `ΦB = W_emitter − χ_oxide`. The paper notes the work function "is a
//! property of the surface of the material" (§IV); accordingly the emitter
//! side is captured as a work function, so MLGNR channels, CNT floating
//! gates, silicon and metals all flow through the same type.

use gnr_units::{Energy, Length, Mass};

use crate::oxide::Oxide;
use crate::{MaterialError, Result};

/// One emitter → oxide tunneling interface.
///
/// This is directional: tunneling *out of* the floating gate sees a
/// different barrier than tunneling *into* it, because the emitters differ
/// (channel vs CNT). The device model therefore holds one
/// `TunnelInterface` per direction per oxide.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TunnelInterface {
    emitter_work_function: Energy,
    oxide: Oxide,
}

impl TunnelInterface {
    /// Creates an interface between an emitter (by work function) and an
    /// oxide.
    ///
    /// # Errors
    ///
    /// [`MaterialError::NonPositiveBarrier`] when the work function does
    /// not exceed the oxide electron affinity — the FN picture requires a
    /// positive barrier.
    pub fn new(emitter_work_function: Energy, oxide: Oxide) -> Result<Self> {
        if emitter_work_function.as_ev() <= oxide.electron_affinity().as_ev() {
            return Err(MaterialError::NonPositiveBarrier {
                emitter_work_function_ev: emitter_work_function.as_ev(),
                oxide_affinity_ev: oxide.electron_affinity().as_ev(),
            });
        }
        Ok(Self {
            emitter_work_function,
            oxide,
        })
    }

    /// Emitter work function.
    #[must_use]
    pub fn emitter_work_function(&self) -> Energy {
        self.emitter_work_function
    }

    /// The oxide being tunneled through.
    #[must_use]
    pub fn oxide(&self) -> &Oxide {
        &self.oxide
    }

    /// Barrier height `ΦB = W_emitter − χ_oxide` (Anderson alignment).
    #[must_use]
    pub fn barrier_height(&self) -> Energy {
        Energy::from_ev(self.emitter_work_function.as_ev() - self.oxide.electron_affinity().as_ev())
    }

    /// Effective tunneling mass in the oxide (`m_ox`).
    #[must_use]
    pub fn effective_mass(&self) -> Mass {
        self.oxide.effective_mass()
    }

    /// Potential drop across a film of `thickness` at which the FN regime
    /// ends and direct tunneling takes over: `V_ox = ΦB / q` (the
    /// triangular barrier stops reaching through the film).
    ///
    /// Below this drop — or for films thinner than ~4 nm (paper §II ref.
    /// [1]) — the `gnr-tunneling::regime` module selects direct tunneling.
    #[must_use]
    pub fn fn_onset_voltage(&self) -> f64 {
        self.barrier_height().as_ev()
    }

    /// Convenience: the field magnitude at which the drop across
    /// `thickness` equals the barrier (FN onset).
    #[must_use]
    pub fn fn_onset_field(&self, thickness: Length) -> gnr_units::ElectricField {
        gnr_units::ElectricField::from_volts_per_meter(
            self.fn_onset_voltage() / thickness.as_meters(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlgnr::MultilayerGnr;
    use crate::{cnt::Cnt, silicon};

    #[test]
    fn graphene_sio2_barrier_is_about_3_6_ev() {
        let iface = TunnelInterface::new(
            MultilayerGnr::paper_channel().work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap();
        let phi = iface.barrier_height().as_ev();
        assert!(phi > 3.5 && phi < 3.75, "ΦB = {phi} eV");
    }

    #[test]
    fn cnt_sio2_barrier_exceeds_channel_barrier() {
        // The CNT FG work function > MLGNR channel work function, so charge
        // leaks out of the FG less readily than it tunnels in — the
        // asymmetry the paper's Figure 4 relies on.
        let ch = TunnelInterface::new(
            MultilayerGnr::paper_channel().work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap();
        let fg = TunnelInterface::new(
            Cnt::paper_floating_gate().work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap();
        assert!(fg.barrier_height() > ch.barrier_height());
    }

    #[test]
    fn si_sio2_barrier_matches_lenzlinger_snow() {
        let iface = TunnelInterface::new(
            silicon::inversion_layer_work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap();
        let phi = iface.barrier_height().as_ev();
        assert!((phi - 3.15).abs() < 0.1, "ΦB = {phi} eV");
    }

    #[test]
    fn non_positive_barrier_rejected() {
        // A 0.5 eV "work function" is below the SiO2 affinity.
        let err = TunnelInterface::new(Energy::from_ev(0.5), Oxide::silicon_dioxide());
        assert!(matches!(err, Err(MaterialError::NonPositiveBarrier { .. })));
    }

    #[test]
    fn fn_onset_field_scales_inverse_thickness() {
        let iface = TunnelInterface::new(
            silicon::inversion_layer_work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap();
        let thin = iface.fn_onset_field(Length::from_nanometers(5.0));
        let thick = iface.fn_onset_field(Length::from_nanometers(10.0));
        assert!((thin.as_volts_per_meter() / thick.as_volts_per_meter() - 2.0).abs() < 1e-9);
    }
}
