//! Nearest-neighbour tight-binding band structure of armchair graphene
//! nanoribbons.
//!
//! The quick `E_g ≈ α/W` scaling in [`crate::gnr`] is enough for the
//! flash-memory model; this module provides the underlying physics — the
//! analytic NN-TB subbands of an N-dimer armchair ribbon:
//!
//! ```text
//! E_n(k) = ±t·√(1 + 4·cosθ_n·cos(k·d/2) + 4·cos²θ_n),
//! θ_n = n·π/(N+1),  n = 1..N,  d = 3·a_cc (1-D period)
//! ```
//!
//! At `k = 0` the subband edge is `t·|1 + 2·cosθ_n|`; a ribbon is
//! metallic exactly when some subband has `cosθ_n = −1/2`, which happens
//! iff `N = 3p + 2` — the tight-binding family rule the simplified model
//! quotes.

use gnr_units::constants::REDUCED_PLANCK;
use gnr_units::{Energy, Mass};

use crate::gnr::{Edge, Nanoribbon};
use crate::graphene;
use crate::{MaterialError, Result};

/// The tight-binding subband structure of one armchair ribbon.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AgnrBands {
    dimer_lines: u32,
    hopping: Energy,
    /// `cosθ_n` per subband, n = 1..N.
    cos_theta: Vec<f64>,
}

impl AgnrBands {
    /// Builds the band structure of an armchair ribbon with the default
    /// hopping energy γ₀ = 2.7 eV.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] when the ribbon is not
    /// armchair.
    pub fn new(ribbon: Nanoribbon) -> Result<Self> {
        Self::with_hopping(ribbon, graphene::hopping_energy())
    }

    /// Builds the band structure with an explicit hopping energy.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] when the ribbon is not
    /// armchair or the hopping energy is not positive.
    pub fn with_hopping(ribbon: Nanoribbon, hopping: Energy) -> Result<Self> {
        if ribbon.edge() != Edge::Armchair {
            return Err(MaterialError::InvalidParameter {
                name: "edge",
                value: 0.0,
                constraint: "tight-binding subbands implemented for armchair ribbons",
            });
        }
        if hopping.as_joules() <= 0.0 {
            return Err(MaterialError::InvalidParameter {
                name: "hopping",
                value: hopping.as_ev(),
                constraint: "must be positive",
            });
        }
        let n = ribbon.dimer_lines();
        let cos_theta = (1..=n)
            .map(|i| (f64::from(i) * core::f64::consts::PI / f64::from(n + 1)).cos())
            .collect();
        Ok(Self {
            dimer_lines: n,
            hopping,
            cos_theta,
        })
    }

    /// Number of subbands (= dimer lines).
    #[must_use]
    pub fn subband_count(&self) -> usize {
        self.cos_theta.len()
    }

    /// Conduction-subband edge — the minimum of `E_n(k)` over the zone —
    /// of subband `n` (1-based).
    ///
    /// `E_n` is monotone in `cos(k·d/2)`, so the minimum sits at `k = 0`
    /// when `cosθ_n ≤ 0` and at the zone boundary when `cosθ_n > 0`;
    /// either way the edge is `t·|1 − 2·|cosθ_n||`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is 0 or exceeds the subband count.
    #[must_use]
    pub fn subband_edge(&self, n: usize) -> Energy {
        assert!(
            n >= 1 && n <= self.cos_theta.len(),
            "subband index out of range"
        );
        let c = self.cos_theta[n - 1];
        Energy::from_joules(self.hopping.as_joules() * (1.0 - 2.0 * c.abs()).abs())
    }

    /// The wavevector at which subband `n` attains its edge: `0` for
    /// `cosθ_n ≤ 0`, the zone boundary `2π/d` otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `n` is out of range.
    #[must_use]
    pub fn edge_wavevector(&self, n: usize) -> f64 {
        assert!(
            n >= 1 && n <= self.cos_theta.len(),
            "subband index out of range"
        );
        if self.cos_theta[n - 1] <= 0.0 {
            0.0
        } else {
            let d = 3.0 * graphene::bond_length().as_meters();
            2.0 * core::f64::consts::PI / d
        }
    }

    /// The exact tight-binding band gap: twice the smallest subband edge.
    #[must_use]
    pub fn band_gap(&self) -> Energy {
        let min_edge = (1..=self.subband_count())
            .map(|n| self.subband_edge(n).as_joules())
            .fold(f64::INFINITY, f64::min);
        Energy::from_joules(2.0 * min_edge)
    }

    /// `true` when some subband passes through zero (`N = 3p + 2`).
    #[must_use]
    pub fn is_metallic(&self) -> bool {
        self.band_gap().as_ev() < 1e-9
    }

    /// Conduction-band dispersion `E_n(k)` of subband `n` at longitudinal
    /// wavevector `k` (1/m).
    ///
    /// # Panics
    ///
    /// Panics when `n` is out of range.
    #[must_use]
    pub fn dispersion(&self, n: usize, k: f64) -> Energy {
        assert!(
            n >= 1 && n <= self.cos_theta.len(),
            "subband index out of range"
        );
        let c = self.cos_theta[n - 1];
        let d = 3.0 * graphene::bond_length().as_meters();
        let t = self.hopping.as_joules();
        let inner = 1.0 + 4.0 * c * (k * d / 2.0).cos() + 4.0 * c * c;
        Energy::from_joules(t * inner.max(0.0).sqrt())
    }

    /// Effective mass of the lowest conduction subband,
    /// `m* = ħ²/(d²E/dk²)` at the band edge (central second difference
    /// around [`Self::edge_wavevector`]).
    ///
    /// Returns `None` for metallic ribbons (linear bands carry no mass).
    #[must_use]
    pub fn effective_mass(&self) -> Option<Mass> {
        if self.is_metallic() {
            return None;
        }
        let n_min = (1..=self.subband_count())
            .min_by(|&a, &b| {
                self.subband_edge(a)
                    .as_joules()
                    .total_cmp(&self.subband_edge(b).as_joules())
            })
            .expect("at least one subband");
        let k_edge = self.edge_wavevector(n_min);
        let dk = 1.0e7; // 1/m — far inside the parabolic region
        let e0 = self.dispersion(n_min, k_edge).as_joules();
        let ep = self.dispersion(n_min, k_edge + dk).as_joules();
        let em = self.dispersion(n_min, k_edge - dk).as_joules();
        let d2e = (ep - 2.0 * e0 + em) / (dk * dk);
        if d2e <= 0.0 {
            return None;
        }
        Some(Mass::from_kilograms(REDUCED_PLANCK * REDUCED_PLANCK / d2e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands(n: u32) -> AgnrBands {
        AgnrBands::new(Nanoribbon::new(Edge::Armchair, n).unwrap()).unwrap()
    }

    #[test]
    fn family_rule_matches_tight_binding() {
        // N = 3p+2 metallic, others semiconducting — for many widths.
        for n in 3..40u32 {
            let metallic = bands(n).is_metallic();
            assert_eq!(metallic, n % 3 == 2, "N = {n}");
        }
    }

    #[test]
    fn gap_decreases_with_width_within_family() {
        // 3p+1 family: N = 7, 13, 19, 25.
        let gaps: Vec<f64> = [7u32, 13, 19, 25]
            .iter()
            .map(|&n| bands(n).band_gap().as_ev())
            .collect();
        for pair in gaps.windows(2) {
            assert!(pair[1] < pair[0], "{gaps:?}");
        }
    }

    #[test]
    fn tb_gap_agrees_with_alpha_over_w_scaling() {
        // The E_g ≈ 1.0/W fit of the simplified model should agree with
        // tight binding within a factor of ~2 for the 3p+1 family.
        for n in [10u32, 13, 16, 19] {
            let ribbon = Nanoribbon::new(Edge::Armchair, n).unwrap();
            let tb = bands(n).band_gap().as_ev();
            let fit = ribbon.band_gap().as_ev();
            let ratio = tb / fit;
            assert!((0.5..2.0).contains(&ratio), "N = {n}: tb {tb}, fit {fit}");
        }
    }

    #[test]
    fn dispersion_is_even_and_increasing_from_the_edge() {
        let b = bands(13);
        // A subband with cosθ < 0 has its edge at k = 0: pick the last.
        let n = 13;
        let e0 = b.dispersion(n, 0.0).as_joules();
        assert_eq!(b.edge_wavevector(n), 0.0);
        for k in [1e8, 2e8, 4e8] {
            assert!(
                (b.dispersion(n, k).as_joules() - b.dispersion(n, -k).as_joules()).abs() < 1e-30
            );
            assert!(b.dispersion(n, k).as_joules() >= e0 - 1e-25);
        }
    }

    #[test]
    fn positive_cos_subband_dips_at_zone_boundary() {
        let b = bands(13);
        let n = 1; // cosθ close to +1
        let k_edge = b.edge_wavevector(n);
        assert!(k_edge > 0.0);
        let at_edge = b.dispersion(n, k_edge).as_joules();
        let at_zero = b.dispersion(n, 0.0).as_joules();
        assert!(at_edge < at_zero);
        assert!((at_edge - b.subband_edge(n).as_joules()).abs() < 1e-25);
    }

    #[test]
    fn metallic_ribbon_has_linear_band_near_its_edge() {
        // N = 11 (3p+2): E ≈ ħ·v·|k − k_edge| near the crossing.
        let b = bands(11);
        let n_min = (1..=b.subband_count())
            .min_by(|&x, &y| {
                b.subband_edge(x)
                    .as_joules()
                    .total_cmp(&b.subband_edge(y).as_joules())
            })
            .unwrap();
        let k0 = b.edge_wavevector(n_min);
        let e1 = b.dispersion(n_min, k0 + 1.0e8).as_joules();
        let e2 = b.dispersion(n_min, k0 + 2.0e8).as_joules();
        assert!((e2 / e1 - 2.0).abs() < 0.01, "not linear: {}", e2 / e1);
        // The slope is the graphene Fermi velocity scale.
        let v = e1 / (REDUCED_PLANCK * 1.0e8);
        assert!(v > 5.0e5 && v < 1.5e6, "v = {v:e}");
    }

    #[test]
    fn semiconducting_effective_mass_is_physical() {
        let m = bands(13).effective_mass().expect("semiconducting");
        let ratio = m.as_electron_masses();
        // AGNR effective masses are a few hundredths of m0.
        assert!(ratio > 0.01 && ratio < 0.5, "m* = {ratio} m0");
    }

    #[test]
    fn metallic_ribbon_has_no_mass() {
        assert!(bands(11).effective_mass().is_none());
    }

    #[test]
    fn zigzag_ribbons_rejected() {
        let z = Nanoribbon::new(Edge::Zigzag, 10).unwrap();
        assert!(AgnrBands::new(z).is_err());
    }

    #[test]
    fn subband_count_equals_dimer_lines() {
        assert_eq!(bands(9).subband_count(), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subband_index_validated() {
        let _ = bands(9).subband_edge(0);
    }
}
