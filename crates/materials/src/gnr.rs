//! Graphene nanoribbon (GNR) band structure.
//!
//! Armchair GNRs (AGNR) are semiconducting with a width-dependent gap that
//! splits into three families by the dimer-line count `N mod 3`; zigzag
//! ribbons are (in the simple picture used here) quasi-metallic. The
//! analytic gap model is the standard `E_g ≈ α_family / W` scaling fitted
//! to first-principles results (Son–Cohen–Louie); it is an approximation,
//! which is sufficient because the flash-memory model consumes only the
//! work function and a coarse gap classification.

use gnr_units::{Energy, Length};

use crate::graphene;
use crate::{MaterialError, Result};

/// Ribbon edge termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Edge {
    /// Armchair edge — semiconducting families.
    Armchair,
    /// Zigzag edge — quasi-metallic (edge states).
    Zigzag,
}

/// The three armchair families by dimer count `N mod 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArmchairFamily {
    /// `N = 3p`: moderate gap.
    ThreeP,
    /// `N = 3p + 1`: largest gap.
    ThreePPlusOne,
    /// `N = 3p + 2`: smallest gap (quasi-metallic in tight binding).
    ThreePPlusTwo,
}

/// A graphene nanoribbon specified by edge type and dimer-line count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Nanoribbon {
    edge: Edge,
    dimer_lines: u32,
}

impl Nanoribbon {
    /// Creates a ribbon with `dimer_lines` dimer lines across its width.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] when `dimer_lines < 3` (below
    /// that the "ribbon" is a polymer chain, not graphene).
    pub fn new(edge: Edge, dimer_lines: u32) -> Result<Self> {
        if dimer_lines < 3 {
            return Err(MaterialError::InvalidParameter {
                name: "dimer_lines",
                value: f64::from(dimer_lines),
                constraint: "must be at least 3",
            });
        }
        Ok(Self { edge, dimer_lines })
    }

    /// Edge termination.
    #[must_use]
    pub fn edge(&self) -> Edge {
        self.edge
    }

    /// Dimer-line count `N`.
    #[must_use]
    pub fn dimer_lines(&self) -> u32 {
        self.dimer_lines
    }

    /// Armchair family, or `None` for zigzag ribbons.
    #[must_use]
    pub fn family(&self) -> Option<ArmchairFamily> {
        match self.edge {
            Edge::Zigzag => None,
            Edge::Armchair => Some(match self.dimer_lines % 3 {
                0 => ArmchairFamily::ThreeP,
                1 => ArmchairFamily::ThreePPlusOne,
                _ => ArmchairFamily::ThreePPlusTwo,
            }),
        }
    }

    /// Ribbon width `W = (N − 1)·a/2` with `a` the graphene lattice
    /// constant.
    #[must_use]
    pub fn width(&self) -> Length {
        let a = graphene::lattice_constant().as_meters();
        Length::from_meters(f64::from(self.dimer_lines - 1) * a / 2.0)
    }

    /// Band gap from the `E_g = α / W` family scaling.
    ///
    /// Family prefactors (fits to ab-initio gaps): `3p` → 0.8 eV·nm,
    /// `3p+1` → 1.0 eV·nm, `3p+2` → 0.08 eV·nm; zigzag → 0 (quasi-metallic).
    #[must_use]
    pub fn band_gap(&self) -> Energy {
        let w_nm = self.width().as_nanometers();
        let alpha_ev_nm = match self.family() {
            None => return Energy::from_ev(0.0),
            Some(ArmchairFamily::ThreeP) => 0.8,
            Some(ArmchairFamily::ThreePPlusOne) => 1.0,
            Some(ArmchairFamily::ThreePPlusTwo) => 0.08,
        };
        Energy::from_ev(alpha_ev_nm / w_nm)
    }

    /// `true` when the gap is below thermal smearing at room temperature
    /// (taken as 4 `k_B T` ≈ 0.1 eV) — treated as metallic by the device
    /// model.
    #[must_use]
    pub fn is_quasi_metallic(&self) -> bool {
        self.band_gap().as_ev() < 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_assigned_by_mod_three() {
        let n9 = Nanoribbon::new(Edge::Armchair, 9).unwrap();
        let n10 = Nanoribbon::new(Edge::Armchair, 10).unwrap();
        let n11 = Nanoribbon::new(Edge::Armchair, 11).unwrap();
        assert_eq!(n9.family(), Some(ArmchairFamily::ThreeP));
        assert_eq!(n10.family(), Some(ArmchairFamily::ThreePPlusOne));
        assert_eq!(n11.family(), Some(ArmchairFamily::ThreePPlusTwo));
    }

    #[test]
    fn zigzag_has_no_family_and_no_gap() {
        let z = Nanoribbon::new(Edge::Zigzag, 12).unwrap();
        assert_eq!(z.family(), None);
        assert_eq!(z.band_gap().as_ev(), 0.0);
        assert!(z.is_quasi_metallic());
    }

    #[test]
    fn gap_shrinks_with_width_within_a_family() {
        let narrow = Nanoribbon::new(Edge::Armchair, 10).unwrap();
        let wide = Nanoribbon::new(Edge::Armchair, 40).unwrap();
        assert_eq!(narrow.family(), wide.family());
        assert!(narrow.band_gap() > wide.band_gap());
    }

    #[test]
    fn family_gap_ordering_matches_ab_initio_trend() {
        // Same width scale, different families: 3p+1 > 3p > 3p+2.
        let g3p = Nanoribbon::new(Edge::Armchair, 9).unwrap().band_gap();
        let g3p1 = Nanoribbon::new(Edge::Armchair, 10).unwrap().band_gap();
        let g3p2 = Nanoribbon::new(Edge::Armchair, 11).unwrap().band_gap();
        assert!(g3p1 > g3p);
        assert!(g3p > g3p2);
    }

    #[test]
    fn width_formula() {
        let r = Nanoribbon::new(Edge::Armchair, 9).unwrap();
        // (9-1) * 2.46 Å / 2 = 9.84 Å.
        assert!((r.width().as_angstroms() - 9.84).abs() < 1e-9);
    }

    #[test]
    fn too_narrow_ribbon_rejected() {
        assert!(Nanoribbon::new(Edge::Armchair, 2).is_err());
    }

    #[test]
    fn typical_2nm_agnr_gap_near_half_ev() {
        // N = 17 → W ≈ 1.97 nm, 3p+2 family is tiny; use N = 16 (3p+1).
        let r = Nanoribbon::new(Edge::Armchair, 16).unwrap();
        let gap = r.band_gap().as_ev();
        assert!(gap > 0.3 && gap < 0.8, "gap = {gap} eV");
    }
}
