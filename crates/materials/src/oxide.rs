//! Insulating oxide (and nitride) models.
//!
//! An [`Oxide`] carries everything the tunneling models need: relative
//! permittivity (capacitances, eq. (2)), electron affinity (barrier
//! heights, eq. (4)), effective tunneling mass (`m_ox` in the FN `B`
//! coefficient), band gap and breakdown field (reliability analyses in
//! `gnr-flash-array`).
//!
//! Preset values follow the standard device-physics literature
//! (Lenzlinger–Snow for SiO₂, Robertson for high-k affinities).

use gnr_units::constants::VACUUM_PERMITTIVITY;
use gnr_units::{CapacitancePerArea, ElectricField, Energy, Length, Mass};

use crate::{MaterialError, Result};

/// An insulating barrier material.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Oxide {
    name: String,
    relative_permittivity: f64,
    electron_affinity: Energy,
    effective_mass: Mass,
    band_gap: Energy,
    breakdown_field: ElectricField,
}

impl Oxide {
    /// Creates a custom oxide.
    ///
    /// # Errors
    ///
    /// [`MaterialError::InvalidParameter`] when the permittivity is not
    /// ≥ 1, or any energy/mass/field is non-positive.
    pub fn new(
        name: impl Into<String>,
        relative_permittivity: f64,
        electron_affinity: Energy,
        effective_mass: Mass,
        band_gap: Energy,
        breakdown_field: ElectricField,
    ) -> Result<Self> {
        if !(relative_permittivity >= 1.0) {
            return Err(MaterialError::InvalidParameter {
                name: "relative_permittivity",
                value: relative_permittivity,
                constraint: "must be at least 1 (vacuum)",
            });
        }
        if electron_affinity.as_ev() <= 0.0 {
            return Err(MaterialError::InvalidParameter {
                name: "electron_affinity",
                value: electron_affinity.as_ev(),
                constraint: "must be positive (eV)",
            });
        }
        if effective_mass.as_electron_masses() <= 0.0 {
            return Err(MaterialError::InvalidParameter {
                name: "effective_mass",
                value: effective_mass.as_electron_masses(),
                constraint: "must be positive (m0)",
            });
        }
        if band_gap.as_ev() <= 0.0 {
            return Err(MaterialError::InvalidParameter {
                name: "band_gap",
                value: band_gap.as_ev(),
                constraint: "must be positive (eV)",
            });
        }
        if breakdown_field.as_volts_per_meter() <= 0.0 {
            return Err(MaterialError::InvalidParameter {
                name: "breakdown_field",
                value: breakdown_field.as_volts_per_meter(),
                constraint: "must be positive (V/m)",
            });
        }
        Ok(Self {
            name: name.into(),
            relative_permittivity,
            electron_affinity,
            effective_mass,
            band_gap,
            breakdown_field,
        })
    }

    /// Thermal SiO₂ — the paper's implied tunnel/control dielectric.
    ///
    /// ε_r = 3.9, χ = 0.95 eV, m_ox = 0.42 m₀ (Lenzlinger–Snow),
    /// E_g = 9.0 eV, E_bd ≈ 10 MV/cm.
    #[must_use]
    pub fn silicon_dioxide() -> Self {
        Self::new(
            "SiO2",
            3.9,
            Energy::from_ev(0.95),
            Mass::from_electron_masses(0.42),
            Energy::from_ev(9.0),
            ElectricField::from_megavolts_per_centimeter(10.0),
        )
        .expect("preset values are valid")
    }

    /// Al₂O₃ (alumina), a common inter-gate dielectric.
    #[must_use]
    pub fn aluminum_oxide() -> Self {
        Self::new(
            "Al2O3",
            9.0,
            Energy::from_ev(1.35),
            Mass::from_electron_masses(0.28),
            Energy::from_ev(6.8),
            ElectricField::from_megavolts_per_centimeter(8.0),
        )
        .expect("preset values are valid")
    }

    /// HfO₂ (hafnia) high-k dielectric.
    #[must_use]
    pub fn hafnium_dioxide() -> Self {
        Self::new(
            "HfO2",
            20.0,
            Energy::from_ev(2.4),
            Mass::from_electron_masses(0.17),
            Energy::from_ev(5.8),
            ElectricField::from_megavolts_per_centimeter(5.0),
        )
        .expect("preset values are valid")
    }

    /// Hexagonal boron nitride — the natural 2-D partner dielectric for a
    /// graphene channel.
    #[must_use]
    pub fn hexagonal_boron_nitride() -> Self {
        Self::new(
            "h-BN",
            3.5,
            Energy::from_ev(2.0),
            Mass::from_electron_masses(0.5),
            Energy::from_ev(5.97),
            ElectricField::from_megavolts_per_centimeter(12.0),
        )
        .expect("preset values are valid")
    }

    /// Si₃N₄ (charge-trap layer material in SONOS-style stacks).
    #[must_use]
    pub fn silicon_nitride() -> Self {
        Self::new(
            "Si3N4",
            7.5,
            Energy::from_ev(2.1),
            Mass::from_electron_masses(0.42),
            Energy::from_ev(5.3),
            ElectricField::from_megavolts_per_centimeter(7.0),
        )
        .expect("preset values are valid")
    }

    /// Material name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative permittivity ε_r.
    #[must_use]
    pub fn relative_permittivity(&self) -> f64 {
        self.relative_permittivity
    }

    /// Electron affinity χ (conduction-band edge below vacuum).
    #[must_use]
    pub fn electron_affinity(&self) -> Energy {
        self.electron_affinity
    }

    /// Effective tunneling mass `m_ox`.
    #[must_use]
    pub fn effective_mass(&self) -> Mass {
        self.effective_mass
    }

    /// Band gap.
    #[must_use]
    pub fn band_gap(&self) -> Energy {
        self.band_gap
    }

    /// Catastrophic-breakdown field.
    #[must_use]
    pub fn breakdown_field(&self) -> ElectricField {
        self.breakdown_field
    }

    /// Parallel-plate capacitance per unit area for a film of the given
    /// thickness: `ε₀ ε_r / t`.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is not positive.
    #[must_use]
    pub fn capacitance_per_area(&self, thickness: Length) -> CapacitancePerArea {
        assert!(
            thickness.as_meters() > 0.0,
            "oxide thickness must be positive"
        );
        CapacitancePerArea::from_farads_per_square_meter(
            VACUUM_PERMITTIVITY * self.relative_permittivity / thickness.as_meters(),
        )
    }

    /// Fraction of the breakdown field reached at the given field
    /// (> 1 means the film is beyond catastrophic breakdown).
    #[must_use]
    pub fn field_stress_ratio(&self, field: ElectricField) -> f64 {
        field.abs().as_volts_per_meter() / self.breakdown_field.as_volts_per_meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sio2_preset_matches_literature() {
        let ox = Oxide::silicon_dioxide();
        assert_eq!(ox.name(), "SiO2");
        assert!((ox.relative_permittivity() - 3.9).abs() < 1e-12);
        assert!((ox.effective_mass().as_electron_masses() - 0.42).abs() < 1e-12);
        assert!((ox.band_gap().as_ev() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn capacitance_per_area_of_5nm_sio2() {
        // ε0 * 3.9 / 5 nm ≈ 6.906e-3 F/m².
        let c = Oxide::silicon_dioxide().capacitance_per_area(Length::from_nanometers(5.0));
        assert!((c.as_farads_per_square_meter() - 6.906e-3).abs() < 1e-5);
    }

    #[test]
    fn high_k_has_higher_capacitance_for_same_thickness() {
        let t = Length::from_nanometers(5.0);
        let c_sio2 = Oxide::silicon_dioxide().capacitance_per_area(t);
        let c_hfo2 = Oxide::hafnium_dioxide().capacitance_per_area(t);
        assert!(c_hfo2.as_farads_per_square_meter() > 4.0 * c_sio2.as_farads_per_square_meter());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Oxide::new(
            "bad",
            0.5,
            Energy::from_ev(1.0),
            Mass::from_electron_masses(0.4),
            Energy::from_ev(9.0),
            ElectricField::from_megavolts_per_centimeter(10.0),
        )
        .is_err());
        assert!(Oxide::new(
            "bad",
            3.9,
            Energy::from_ev(-1.0),
            Mass::from_electron_masses(0.4),
            Energy::from_ev(9.0),
            ElectricField::from_megavolts_per_centimeter(10.0),
        )
        .is_err());
    }

    #[test]
    fn stress_ratio_flags_overstress() {
        let ox = Oxide::silicon_dioxide();
        let over = ElectricField::from_megavolts_per_centimeter(18.0);
        assert!(ox.field_stress_ratio(over) > 1.0);
        let under = ElectricField::from_megavolts_per_centimeter(5.0);
        assert!(ox.field_stress_ratio(under) < 1.0);
        // Sign-independent.
        assert_eq!(ox.field_stress_ratio(-over), ox.field_stress_ratio(over));
    }

    #[test]
    #[should_panic(expected = "thickness must be positive")]
    fn zero_thickness_panics() {
        let _ = Oxide::silicon_dioxide().capacitance_per_area(Length::from_nanometers(0.0));
    }

    #[test]
    fn all_presets_are_distinct_and_valid() {
        let presets = [
            Oxide::silicon_dioxide(),
            Oxide::aluminum_oxide(),
            Oxide::hafnium_dioxide(),
            Oxide::hexagonal_boron_nitride(),
            Oxide::silicon_nitride(),
        ];
        for (i, a) in presets.iter().enumerate() {
            assert!(a.band_gap().as_ev() > 0.0);
            for b in presets.iter().skip(i + 1) {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
