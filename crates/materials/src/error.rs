//! Error type for material-model construction.

use core::fmt;

/// Errors produced when constructing or combining material models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MaterialError {
    /// A structural parameter was outside its physical range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The requested interface would have a non-positive electron barrier
    /// (the emitter Fermi level lies above the oxide conduction band), so
    /// the FN triangular-barrier picture does not apply.
    NonPositiveBarrier {
        /// Emitter work function in eV.
        emitter_work_function_ev: f64,
        /// Oxide electron affinity in eV.
        oxide_affinity_ev: f64,
    },
}

impl fmt::Display for MaterialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid {name} = {value}: {constraint}")
            }
            Self::NonPositiveBarrier {
                emitter_work_function_ev,
                oxide_affinity_ev,
            } => {
                write!(
                    f,
                    "non-positive tunnel barrier: work function {emitter_work_function_ev} eV \
                     does not exceed oxide affinity {oxide_affinity_ev} eV"
                )
            }
        }
    }
}

impl std::error::Error for MaterialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = MaterialError::InvalidParameter {
            name: "layers",
            value: 0.0,
            constraint: "must be at least 1",
        };
        assert!(e.to_string().contains("layers"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MaterialError>();
    }
}
