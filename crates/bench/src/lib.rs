//! # gnr-bench
//!
//! Benchmark and figure-regeneration harness for the `gnr-flash`
//! reproduction.
//!
//! Two consumers:
//!
//! * the `figures` binary — regenerates every paper figure, writes
//!   `results/*.csv`/`results/*.json`, runs the shape checks and prints a
//!   compact report (the reproduction record of EXPERIMENTS.md);
//! * the Criterion benches under `benches/` — one per figure plus
//!   ablations; each asserts its shape check before timing so
//!   `cargo bench` doubles as a reproduction test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reliability_experiment;
pub mod report;
pub mod shape;
pub mod traces;
pub mod workload_experiment;

pub use report::{
    ascii_table, cache_stats_json, cache_stats_snapshot_json, format_series_summary,
    telemetry_json, telemetry_phase, telemetry_snapshot_json, write_amplification,
    write_results_file,
};
pub use shape::{bench_backend, bench_config, bench_shape, bench_threads, parse_shape, smoke_mode};
pub use traces::{scheduler_trace, SCHEDULER_FULL_SHAPE, SCHEDULER_SMOKE_SHAPE};
pub use workload_experiment::extra_experiments;
