//! Reporting utilities: ASCII tables, result files and series summaries.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use gnr_flash::experiments::FigureData;

/// Renders rows as a fixed-width ASCII table with a header rule.
///
/// # Panics
///
/// Panics when rows are ragged with respect to the header.
#[must_use]
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// The engine-cache telemetry as a JSON object fragment
/// (`{"j_tables":{...},"flow_maps":{...}}`), recorded under an
/// `"engine_cache"` key by every bench JSON so cache efficiency shows
/// up in the perf trajectory alongside the timings. Serialized through
/// serde from [`gnr_flash::engine::cache::EngineCacheStats`], so the
/// hand-formatted bench reports and the serde-built ones
/// (`reliability_sweep`) emit one schema.
#[must_use]
pub fn cache_stats_json() -> String {
    cache_stats_snapshot_json(&gnr_flash::engine::cache::stats())
}

/// [`cache_stats_json`] over an explicit snapshot, for benches that
/// capture the counters at a phase boundary (paired with
/// [`gnr_flash::engine::cache::reset`] before the measured phase) and
/// serialize them after later phases have already moved the live
/// counters on.
#[must_use]
pub fn cache_stats_snapshot_json(stats: &gnr_flash::engine::cache::EngineCacheStats) -> String {
    serde_json::to_string(stats).expect("cache stats serialize")
}

/// The live unified-telemetry snapshot as a JSON object fragment,
/// recorded under the `"telemetry"` key of every bench JSON — counters,
/// histograms, the zone profile and the event journal in one block.
#[must_use]
pub fn telemetry_json() -> String {
    telemetry_snapshot_json(&gnr_flash::telemetry::snapshot())
}

/// [`telemetry_json`] over an explicit snapshot, for benches that
/// capture telemetry at a phase boundary and serialize it later.
#[must_use]
pub fn telemetry_snapshot_json(snapshot: &gnr_flash::telemetry::TelemetrySnapshot) -> String {
    serde_json::to_string(snapshot).expect("telemetry snapshot serialize")
}

/// Runs `f` as a fully-instrumented telemetry phase: enables metrics,
/// journal and profiling, resets the registry so the snapshot covers
/// exactly this phase, and restores the ambient flags afterwards — the
/// measured (telemetry-off) bench phases stay comparable to historical
/// numbers while every bench still emits a real `"telemetry"` block.
pub fn telemetry_phase<T>(f: impl FnOnce() -> T) -> (T, gnr_flash::telemetry::TelemetrySnapshot) {
    use gnr_flash::telemetry;
    let was_enabled = telemetry::enabled();
    let was_profiling = telemetry::profiling_enabled();
    telemetry::set_enabled(true);
    telemetry::set_profiling(true);
    telemetry::reset();
    let out = f();
    let snapshot = telemetry::snapshot();
    telemetry::set_enabled(was_enabled);
    telemetry::set_profiling(was_profiling);
    (out, snapshot)
}

/// Derived write amplification from a telemetry snapshot:
/// `(host pages + GC relocations) / host pages` (1.0 when no host
/// pages were written — an idle FTL amplifies nothing).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn write_amplification(snapshot: &gnr_flash::telemetry::TelemetrySnapshot) -> f64 {
    let host = snapshot.counter("ftl.host_pages_written").unwrap_or(0);
    let reloc = snapshot.counter("ftl.gc.relocations").unwrap_or(0);
    if host == 0 {
        1.0
    } else {
        (host + reloc) as f64 / host as f64
    }
}

/// Writes `contents` under `results/` (created on demand) and returns the
/// path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_results_file(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(contents.as_bytes())?;
    Ok(path)
}

/// One-line summary of each series of a figure: label, y at the first and
/// last grid point, and the decade span.
#[must_use]
pub fn format_series_summary(fig: &FigureData) -> String {
    let mut rows = Vec::new();
    for s in &fig.series {
        let first = *s.y.first().unwrap_or(&f64::NAN);
        let last = *s.y.last().unwrap_or(&f64::NAN);
        let decades = if first > 0.0 && last > 0.0 {
            (last / first).abs().log10()
        } else {
            f64::NAN
        };
        rows.push(vec![
            s.label.clone(),
            format!("{first:.3e}"),
            format!("{last:.3e}"),
            format!("{decades:+.1}"),
        ]);
    }
    ascii_table(&["series", "y(first)", "y(last)", "decades"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_flash::experiments::SweepSeries;

    #[test]
    fn table_alignment() {
        let t = ascii_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = ascii_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn summary_counts_decades() {
        let fig = FigureData {
            id: "x".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![SweepSeries {
                label: "s".into(),
                x: vec![0.0, 1.0],
                y: vec![1.0, 1000.0],
            }],
        };
        let s = format_series_summary(&fig);
        assert!(s.contains("+3.0"));
    }
}
