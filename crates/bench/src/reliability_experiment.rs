//! The reliability experiment: the margins → RBER → ECC → UBER pipeline
//! for the figures binary.
//!
//! A small trace of the `reliability_sweep` bench: one seeded 4×4×32
//! array, scanned fresh and after an accelerated ten-year 85 °C bake,
//! raw versus BCH-corrected. Shape checks pin the structural properties
//! any healthy pipeline must show — deterministic sampling, ECC never
//! above raw, retention never *improving* the raw rate.

use gnr_flash::experiments::{Artifact, Experiment, ExperimentContext, ExperimentReport};
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::retention::RetentionModel;
use gnr_flash_array::workload::PagePattern;
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::{scan_array, ReliabilityPoint};
use gnr_units::Temperature;

pub(crate) struct ReliabilityExperiment;

impl Experiment for ReliabilityExperiment {
    fn id(&self) -> &'static str {
        "reliability"
    }
    fn title(&self) -> &'static str {
        "Reliability pipeline (raw BER vs post-ECC UBER, fresh and baked)"
    }
    fn run(&self, _ctx: &ExperimentContext) -> gnr_flash::Result<ExperimentReport> {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 32,
        };
        let mut array = NandArray::new(config);
        for block in 0..config.blocks {
            for page in 0..config.pages_per_block {
                let seed = (block * config.pages_per_block + page) as u64;
                let bits = PagePattern::Seeded { seed }.expand(config.page_width);
                array
                    .program_page(block, page, &bits)
                    .map_err(array_error)?;
            }
        }

        // σ high enough that the 512-cell array shows raw errors.
        let ber = BerModel {
            read_noise_sigma: 0.55,
            ..BerModel::default()
        };
        let codec = EccConfig::bch_for_width(config.page_width, 2)
            .and_then(|ecc| ecc.build())
            .map_err(reliability_error)?;
        let truth = ber.noiseless_bits(array.population(), array.batch());

        let scan = |array: &NandArray, pass: u64| -> gnr_flash::Result<ReliabilityPoint> {
            scan_array(array, &truth, codec.as_ref(), &ber, None, pass).map_err(reliability_error)
        };
        let fresh = scan(&array, 0)?;
        let rescan = scan(&array, 0)?;

        let mut baked = array.clone();
        RetentionModel::default().bake_population(
            baked.population_mut(),
            3.156e8, // ten years
            Temperature::from_celsius(85.0),
        );
        let baked_point = scan(&baked, 1)?;

        let describe = |label: &str, p: &ReliabilityPoint| {
            format!(
                "{label}: RBER {:.3e} → UBER {:.3e} with {} \
                 ({} corrected bits, {} uncorrectable pages, ref {:.2} V)",
                p.rber,
                p.uber,
                codec.name(),
                p.decode.corrected_bits,
                p.decode.uncorrectable_pages,
                p.reference,
            )
        };
        let summary = vec![
            describe("fresh", &fresh),
            describe("10 y @ 85 °C", &baked_point),
        ];

        let mut check = Ok(());
        if rescan != fresh {
            check = Err("BER sampling not reproducible under a fixed seed".to_string());
        } else if fresh.raw_errors == 0 {
            check = Err("no raw errors: noise model produced nothing to correct".to_string());
        } else if fresh.uber > fresh.rber || baked_point.uber > baked_point.rber {
            check = Err("post-ECC UBER exceeded raw BER".to_string());
        } else if baked_point.rber < fresh.rber {
            check = Err(format!(
                "retention bake improved raw BER ({:.3e} -> {:.3e})",
                fresh.rber, baked_point.rber
            ));
        }

        let artifacts = vec![
            Artifact {
                name: "reliability_fresh.json".into(),
                contents: serde_json::to_string_pretty(&fresh).expect("serializable"),
            },
            Artifact {
                name: "reliability_baked.json".into(),
                contents: serde_json::to_string_pretty(&baked_point).expect("serializable"),
            },
        ];
        Ok(ExperimentReport {
            summary,
            artifacts,
            check,
        })
    }
}

fn array_error(e: gnr_flash_array::ArrayError) -> gnr_flash::DeviceError {
    match e {
        gnr_flash_array::ArrayError::Device(inner) => inner,
        other => gnr_flash::DeviceError::Numerics(gnr_numerics::NumericsError::InvalidInput(
            other.to_string(),
        )),
    }
}

fn reliability_error(e: gnr_reliability::ReliabilityError) -> gnr_flash::DeviceError {
    gnr_flash::DeviceError::Numerics(gnr_numerics::NumericsError::InvalidInput(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_flash::experiments::ExperimentContext;

    #[test]
    fn reliability_experiment_runs_and_checks_pass() {
        let report = ReliabilityExperiment
            .run(&ExperimentContext::paper())
            .unwrap();
        assert!(report.check.is_ok(), "{:?}", report.check);
        assert_eq!(report.artifacts.len(), 2);
        assert!(report.summary.iter().any(|l| l.contains("fresh")));
    }
}
