//! Regenerates every figure of the paper and records the reproduction.
//!
//! ```text
//! cargo run -p gnr-bench --bin figures
//! ```
//!
//! Writes `results/fig*.csv` (+ JSON for the transients), runs every
//! shape check, and prints the per-figure summaries that EXPERIMENTS.md
//! quotes.

use gnr_bench::{ascii_table, format_series_summary, write_results_file};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::experiments::{
    band_diagram, erase_transient, fig4, fig5, fig6, fig7, fig8, fig9, fn_plot_fig,
    saturation_sweep, temperature_fig,
};
use gnr_flash::presets;
use gnr_units::fmt_eng::sci;
use gnr_units::Charge;

fn main() {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let mut failures = 0usize;
    let mut check = |name: &str, result: Result<(), String>| match result {
        Ok(()) => println!("  [check] {name}: OK"),
        Err(e) => {
            failures += 1;
            println!("  [check] {name}: FAILED — {e}");
        }
    };

    println!("== Figure 2: FN band diagram at VGS = +15 V ==");
    let bd = band_diagram::generate(&device, presets::program_vgs(), Charge::ZERO);
    println!(
        "  VFG = {:.2} V; tunnel barrier peak = {:.2} eV",
        bd.vfg,
        bd.regions[1].points.first().map_or(f64::NAN, |p| p.1)
    );
    check("fig2 band diagram", band_diagram::check(&bd));
    let json = serde_json::to_string_pretty(&bd).expect("serializable");
    report_path("fig2_band_diagram.json", &write_results_file("fig2_band_diagram.json", &json));

    println!("\n== Figure 4: programming onset (Jin vs Jout) ==");
    let f4 = fig4::generate(&device).expect("fig4 transient");
    println!(
        "  Jin(0) = {}, Jout(0) = {}, ratio = {:.1e}",
        sci(f4.j_in_onset, "A/m^2"),
        sci(f4.j_out_onset, "A/m^2"),
        f4.onset_ratio()
    );
    println!(
        "  oxide drops at t=0: tunnel {:.1} V, control {:.1} V (paper: 9 V / 6 V)",
        f4.tunnel_drop, f4.control_drop
    );
    check("fig4 onset", fig4::check(&f4));
    let json = serde_json::to_string_pretty(&f4).expect("serializable");
    report_path("fig4_onset.json", &write_results_file("fig4_onset.json", &json));

    println!("\n== Figure 5: transient to saturation ==");
    let f5 = fig5::generate(&device).expect("fig5 transient");
    println!(
        "  t_sat = {} s, charge at saturation = {:.1} electrons",
        f5.t_sat.map_or("n/a".into(), |t| format!("{t:.3e}")),
        f5.charge_at_sat.map_or(f64::NAN, |q| Charge::from_coulombs(q).as_electrons())
    );
    check("fig5 saturation", fig5::check(&f5));
    let mut csv = String::from("t_s,j_in,j_out,vfg,charge\n");
    for s in &f5.samples {
        csv.push_str(&format!(
            "{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}\n",
            s.t, s.j_in, s.j_out, s.vfg, s.charge
        ));
    }
    report_path("fig5_transient.csv", &write_results_file("fig5_transient.csv", &csv));

    let sweeps: [(&str, fn() -> gnr_flash::Result<gnr_flash::experiments::FigureData>, fn(&gnr_flash::experiments::FigureData) -> Result<(), String>); 4] = [
        ("fig6", fig6::generate, fig6::check),
        ("fig7", fig7::generate, fig7::check),
        ("fig8", fig8::generate, fig8::check),
        ("fig9", fig9::generate, fig9::check),
    ];
    for (id, generate, check_fn) in sweeps {
        let fig = generate().expect("sweep generation");
        println!("\n== {}: {} ==", id.to_uppercase(), fig.title);
        print!("{}", format_series_summary(&fig));
        check(id, check_fn(&fig));
        report_path(
            &format!("{id}.csv"),
            &write_results_file(&format!("{id}.csv"), &fig.to_csv()),
        );
    }

    println!("\n== Extension: FN-plot parameter extraction (§IV, ref. [9]) ==");
    let fp = fn_plot_fig::generate(&device).expect("fn plot");
    println!(
        "  extracted B = {:.4e} V/m (true {:.4e}); barrier {:.3} eV (true {:.3}); R² = {:.6}",
        fp.extracted_b, fp.true_b, fp.recovered_barrier_ev, fp.true_barrier_ev, fp.r_squared
    );
    check("fn-plot extraction", fn_plot_fig::check(&fp));
    let json = serde_json::to_string_pretty(&fp).expect("serializable");
    report_path("fn_plot.json", &write_results_file("fn_plot.json", &json));

    println!("\n== Extension: temperature study 250-400 K ==");
    let tf = temperature_fig::generate(&device).expect("temperature fig");
    print!("{}", format_series_summary(&tf));
    check("temperature study", temperature_fig::check(&tf, &device));
    report_path(
        "temperature.csv",
        &write_results_file("temperature.csv", &tf.to_csv()),
    );

    println!("\n== Extension: erase transient (the §IV.b mirror of Figure 5) ==");
    let et = erase_transient::generate(&device).expect("erase transient");
    println!(
        "  from {:.1} electrons at {} V: t_sat = {} s, final depletion = {:.1} electrons",
        Charge::from_coulombs(et.initial_charge).as_electrons(),
        et.vgs,
        et.t_sat.map_or("n/a".into(), |t| format!("{t:.3e}")),
        et.charge_at_sat
            .map_or(f64::NAN, |q| Charge::from_coulombs(q).as_electrons())
    );
    check("erase transient", erase_transient::check(&et));
    let mut csv = String::from("t_s,j_tunnel,j_control,vfg,charge\n");
    for s in &et.samples {
        csv.push_str(&format!(
            "{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}\n",
            s.t, s.j_in, s.j_out, s.vfg, s.charge
        ));
    }
    report_path(
        "erase_transient.csv",
        &write_results_file("erase_transient.csv", &csv),
    );

    println!("\n== Extension: t_sat vs VGS (the conclusion, quantified) ==");
    let ss = saturation_sweep::generate(&device, &saturation_sweep::default_grid())
        .expect("saturation sweep");
    let rows: Vec<Vec<String>> = ss
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.vgs),
                format!("{:.3e}", p.t_sat),
                format!("{:.1}", Charge::from_coulombs(p.charge_at_sat).as_electrons()),
                format!("{:.2}", p.window),
            ]
        })
        .collect();
    print!("{}", ascii_table(&["VGS (V)", "t_sat (s)", "electrons", "window (V)"], &rows));
    check("saturation sweep", saturation_sweep::check(&ss));
    let json = serde_json::to_string_pretty(&ss).expect("serializable");
    report_path(
        "saturation_sweep.json",
        &write_results_file("saturation_sweep.json", &json),
    );

    // Headline comparison table: the worked example of §III.
    println!("\n== Worked example (§III) ==");
    let rows = vec![
        vec!["VGS".into(), "15 V".into(), "15 V".into()],
        vec!["GCR".into(), "0.6".into(), format!("{:.2}", device.capacitances().gcr())],
        vec![
            "VFG (QFG=0)".into(),
            "9 V".into(),
            format!(
                "{:.2} V",
                device
                    .floating_gate_voltage(presets::program_vgs(), Charge::ZERO)
                    .as_volts()
            ),
        ],
        vec![
            "control-oxide drop".into(),
            "6 V".into(),
            format!("{:.2} V", 15.0 - bd.vfg),
        ],
    ];
    print!("{}", ascii_table(&["quantity", "paper", "simulated"], &rows));

    if failures > 0 {
        eprintln!("\n{failures} figure check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nAll figure checks passed. CSVs under results/.");
}

fn report_path(name: &str, result: &std::io::Result<std::path::PathBuf>) {
    match result {
        Ok(p) => println!("  [data] {} -> {}", name, p.display()),
        Err(e) => println!("  [data] {name}: write failed ({e})"),
    }
}
