//! Regenerates every figure of the paper and records the reproduction.
//!
//! ```text
//! cargo run -p gnr-bench --bin figures
//! ```
//!
//! Iterates the [`gnr_flash::experiments::registry`] — every paper
//! figure plus the extension studies — through the batched engine,
//! writes each experiment's artifacts under `results/`, runs every
//! shape check and prints the per-figure summaries that EXPERIMENTS.md
//! quotes. Array-layer experiments (the trace-driven workloads) are
//! appended from [`gnr_bench::extra_experiments`], since the core
//! registry cannot depend on the array crate. Adding an experiment to
//! either list adds it here with no changes to this binary.

use gnr_bench::{ascii_table, extra_experiments, write_results_file};
use gnr_flash::experiments::ExperimentContext;
use gnr_flash::presets;
use gnr_units::Charge;

fn main() {
    let ctx = ExperimentContext::paper();
    let mut failures = 0usize;

    let experiments = gnr_flash::experiments::registry()
        .into_iter()
        .chain(extra_experiments());
    for experiment in experiments {
        println!("== {}: {} ==", experiment.id(), experiment.title());
        let report = match experiment.run(&ctx) {
            Ok(report) => report,
            Err(e) => {
                failures += 1;
                println!("  [check] {}: FAILED to run — {e}", experiment.id());
                continue;
            }
        };
        for line in &report.summary {
            println!("  {line}");
        }
        match &report.check {
            Ok(()) => println!("  [check] {}: OK", experiment.id()),
            Err(e) => {
                failures += 1;
                println!("  [check] {}: FAILED — {e}", experiment.id());
            }
        }
        for artifact in &report.artifacts {
            match write_results_file(&artifact.name, &artifact.contents) {
                Ok(path) => println!("  [data] {} -> {}", artifact.name, path.display()),
                Err(e) => println!("  [data] {}: write failed ({e})", artifact.name),
            }
        }
        println!();
    }

    // Headline comparison table: the worked example of §III.
    println!("== Worked example (§III) ==");
    let device = &ctx.device;
    let vfg = device
        .floating_gate_voltage(presets::program_vgs(), Charge::ZERO)
        .as_volts();
    let rows = vec![
        vec!["VGS".into(), "15 V".into(), "15 V".into()],
        vec![
            "GCR".into(),
            "0.6".into(),
            format!("{:.2}", device.capacitances().gcr()),
        ],
        vec!["VFG (QFG=0)".into(), "9 V".into(), format!("{vfg:.2} V")],
        vec![
            "control-oxide drop".into(),
            "6 V".into(),
            format!("{:.2} V", 15.0 - vfg),
        ],
    ];
    print!(
        "{}",
        ascii_table(&["quantity", "paper", "simulated"], &rows)
    );

    if failures > 0 {
        eprintln!("\n{failures} figure check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nAll figure checks passed. CSVs under results/.");
}
