//! Shared bench workloads: traces and shapes referenced by more than
//! one bench, hoisted here so a baseline and the bench claiming to beat
//! it can never silently measure different workloads.

use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{PagePattern, WorkloadOp, WorkloadTrace};

/// The P/E-scheduler bench shape (full runs) — shared by
/// `pe_scheduler` (the committed ops/s baseline) and `engine_flowmap`
/// (the flow-map speedup measured against that baseline).
pub const SCHEDULER_FULL_SHAPE: NandConfig = NandConfig {
    blocks: 16,
    pages_per_block: 16,
    page_width: 64,
};

/// The P/E-scheduler smoke shape (CI runs).
pub const SCHEDULER_SMOKE_SHAPE: NandConfig = NandConfig {
    blocks: 4,
    pages_per_block: 2,
    page_width: 16,
};

/// The scheduler workload: write every logical page, rewrite the even
/// ones (stale-page/reclaim pressure), then read everything back.
/// Sized to the controller's logical capacity.
#[must_use]
pub fn scheduler_trace(capacity: usize) -> WorkloadTrace {
    let mut ops = Vec::new();
    for lpn in 0..capacity {
        ops.push(WorkloadOp::Write {
            lpn: Some(lpn),
            pattern: PagePattern::Seeded { seed: lpn as u64 },
        });
    }
    for lpn in (0..capacity).step_by(2) {
        ops.push(WorkloadOp::Write {
            lpn: Some(lpn),
            pattern: PagePattern::Seeded {
                seed: (capacity + lpn) as u64,
            },
        });
    }
    for lpn in 0..capacity {
        ops.push(WorkloadOp::Read { lpn });
    }
    WorkloadTrace {
        name: "pe_scheduler".into(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_write_rewrite_read() {
        let t = scheduler_trace(8);
        // 8 writes + 4 rewrites + 8 reads.
        assert_eq!(t.ops.len(), 20);
        assert!(matches!(t.ops[0], WorkloadOp::Write { lpn: Some(0), .. }));
        assert!(matches!(t.ops[19], WorkloadOp::Read { lpn: 7 }));
    }
}
