//! Bench-shape selection: honest defaults plus the `GNR_BENCH_SHAPE`,
//! `GNR_BENCH_SMOKE`, `GNR_BENCH_THREADS` and `GNR_BENCH_BACKEND`
//! environment overrides shared by the array-level benches.

use std::sync::OnceLock;

use gnr_flash::backend::{BackendKind, CellBackend};
use gnr_flash_array::nand::NandConfig;

/// The rayon worker count in effect for this bench process, resolved
/// exactly once (the global pool can only be sized before first use).
static BENCH_THREADS: OnceLock<usize> = OnceLock::new();

/// Applies `GNR_BENCH_THREADS` to the global rayon pool (first call
/// only — the pool is sized once per process) and returns the worker
/// count actually in effect. Every bench records this as the `threads`
/// field next to `cores` in its JSON, so a thread-matrix run is
/// attributable from the committed record alone. Unset means the pool's
/// own default (all available cores).
///
/// # Panics
///
/// Panics when `GNR_BENCH_THREADS` is set but not a positive integer,
/// so CI misconfigurations fail loudly instead of silently timing the
/// wrong pool.
#[must_use]
pub fn bench_threads() -> usize {
    *BENCH_THREADS.get_or_init(|| {
        if let Ok(spec) = std::env::var("GNR_BENCH_THREADS") {
            let n: usize = spec
                .trim()
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    panic!("GNR_BENCH_THREADS must be a positive integer, got `{spec}`")
                });
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .expect("the global pool is sized before first use");
        }
        rayon::current_num_threads()
    })
}

/// Parses a `BxPxW` shape string (blocks × pages-per-block × width),
/// e.g. `64x64x256`. Separators `x`/`X` both work.
///
/// # Errors
///
/// A human-readable message for malformed strings or zero dimensions.
pub fn parse_shape(spec: &str) -> Result<NandConfig, String> {
    let parts: Vec<&str> = spec.split(['x', 'X']).collect();
    if parts.len() != 3 {
        return Err(format!("shape `{spec}` must be BxPxW, e.g. 64x64x256"));
    }
    let dim = |s: &str, name: &str| -> Result<usize, String> {
        let v: usize = s
            .trim()
            .parse()
            .map_err(|_| format!("bad {name} in shape `{spec}`"))?;
        if v == 0 {
            return Err(format!("{name} must be positive in `{spec}`"));
        }
        Ok(v)
    };
    Ok(NandConfig {
        blocks: dim(parts[0], "blocks")?,
        pages_per_block: dim(parts[1], "pages-per-block")?,
        page_width: dim(parts[2], "page-width")?,
    })
}

/// The shape a bench should run: `GNR_BENCH_SHAPE` when set (panics on a
/// malformed value so CI misconfigurations fail loudly), otherwise
/// `default`.
///
/// # Panics
///
/// Panics when `GNR_BENCH_SHAPE` is set but malformed.
#[must_use]
pub fn bench_shape(default: NandConfig) -> NandConfig {
    // Every bench resolves its shape before doing work, so this is the
    // uniform point at which `GNR_BENCH_THREADS` takes effect.
    let _ = bench_threads();
    match std::env::var("GNR_BENCH_SHAPE") {
        Ok(spec) => parse_shape(&spec).expect("GNR_BENCH_SHAPE"),
        Err(_) => default,
    }
}

/// The device backend a bench should run: `GNR_BENCH_BACKEND` when set
/// (the stable names `gnr-floating-gate`/`cnt-floating-gate`/
/// `pcm-resistive` or the short aliases `gnr`/`cnt`/`pcm`), otherwise
/// the paper's GNR floating gate. Every backend-aware bench records the
/// resolved name as the `backend` field of its JSON, next to
/// `cores`/`threads`, so backend-matrix runs are attributable from the
/// committed record alone.
///
/// # Panics
///
/// Panics when `GNR_BENCH_BACKEND` is set but names no known backend,
/// so CI misconfigurations fail loudly instead of silently benching the
/// default cell physics.
#[must_use]
pub fn bench_backend() -> CellBackend {
    match std::env::var("GNR_BENCH_BACKEND") {
        Ok(spec) => {
            let kind = BackendKind::from_name(spec.trim()).unwrap_or_else(|| {
                panic!("GNR_BENCH_BACKEND must name a known backend, got `{spec}`")
            });
            CellBackend::preset(kind)
        }
        Err(_) => CellBackend::preset(BackendKind::GnrFloatingGate),
    }
}

/// `true` when `GNR_BENCH_SMOKE` requests the 1-iteration CI smoke mode
/// (any value other than `0`/empty).
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var("GNR_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The uniform environment-override policy every array-level bench
/// follows: `GNR_BENCH_SMOKE` picks between the CI-sized and the full
/// default shape, and an explicit `GNR_BENCH_SHAPE` wins over *both* —
/// so a custom shape behaves identically whether or not the run is a
/// smoke run. `GNR_BENCH_THREADS` is applied to the global rayon pool
/// here too (see [`bench_threads`]), so every bench honors it without
/// its own wiring. Returns the resolved shape plus the smoke flag
/// (which benches still use to shrink iteration counts).
///
/// # Panics
///
/// Panics when `GNR_BENCH_SHAPE` is set but malformed (CI
/// misconfigurations fail loudly).
#[must_use]
pub fn bench_config(smoke_default: NandConfig, full_default: NandConfig) -> (NandConfig, bool) {
    let smoke = smoke_mode();
    let default = if smoke { smoke_default } else { full_default };
    (bench_shape(default), smoke)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_parse() {
        let c = parse_shape("64x64x256").unwrap();
        assert_eq!((c.blocks, c.pages_per_block, c.page_width), (64, 64, 256));
        assert_eq!(c.cells(), 1_048_576);
        assert!(parse_shape("4x4").is_err());
        assert!(parse_shape("0x4x4").is_err());
        assert!(parse_shape("axbxc").is_err());
    }
}
