//! The workload experiment: a trace-driven array run for the figures
//! binary.
//!
//! The core registry (`gnr_flash::experiments::registry`) holds the
//! device-physics figures; this experiment lives in `gnr-bench` because
//! it needs the array layer on top. The figures binary appends it (see
//! [`extra_experiments`]), so workload summaries land in `results/`
//! alongside the paper figures.

use gnr_flash::experiments::{Artifact, Experiment, ExperimentContext, ExperimentReport};
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};

/// Array- and reliability-layer experiments the figures binary runs
/// beyond the core registry.
#[must_use]
pub fn extra_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(WorkloadExperiment),
        Box::new(crate::reliability_experiment::ReliabilityExperiment),
    ]
}

struct WorkloadExperiment;

impl Experiment for WorkloadExperiment {
    fn id(&self) -> &'static str {
        "workload"
    }
    fn title(&self) -> &'static str {
        "Trace-driven array workloads (fill / GC churn / read-heavy)"
    }
    fn run(&self, _ctx: &ExperimentContext) -> gnr_flash::Result<ExperimentReport> {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        };
        let capacity = config.logical_pages();
        let traces = [
            WorkloadTrace::full_array_cycle(config),
            WorkloadTrace::gc_churn(2 * capacity, capacity, 0x6e_0c),
            WorkloadTrace::read_heavy(4, 32, capacity, 0x6e_0d),
        ];

        let mut summary = Vec::new();
        let mut artifacts = Vec::new();
        let mut check = Ok(());
        for trace in traces {
            let mut controller = FlashController::new(config);
            let report = replay(&mut controller, &trace, &ReplayOptions::default())
                .map_err(experiment_error)?;
            let wear = &report.snapshots.last().expect("final snapshot").wear;
            summary.push(format!(
                "{}: {} ops ({} writes, {} reads, {} erases) in {:.1} ms; \
                 {:.0} cells/s, wear spread {}, {} GC relocations",
                report.trace,
                report.ops,
                report.writes,
                report.reads,
                report.erases,
                report.wall_seconds * 1e3,
                report.cells_per_second,
                wear.spread(),
                wear.gc_relocations,
            ));
            if check.is_ok() {
                check = check_report(&trace.name, wear.spread(), &report);
            }
            artifacts.push(Artifact {
                name: format!("workload_{}.json", report.trace),
                contents: serde_json::to_string_pretty(&report).expect("serializable"),
            });
        }
        Ok(ExperimentReport {
            summary,
            artifacts,
            check,
        })
    }
}

fn check_report(
    name: &str,
    wear_spread: u64,
    report: &gnr_flash_array::workload::WorkloadReport,
) -> Result<(), String> {
    // Shape checks in the spirit of the figure checks: structural
    // properties any healthy run must show.
    if report.writes == 0 {
        return Err(format!("{name}: no writes completed"));
    }
    if wear_spread > 1 && name != "read_heavy" {
        return Err(format!("{name}: wear spread {wear_spread} exceeds 1"));
    }
    let last = report.snapshots.last().expect("final snapshot");
    if let Some(margins) = &last.margins {
        if let Some(margin) = margins.worst_case_margin {
            if margin <= 0.0 {
                return Err(format!("{name}: read margin collapsed ({margin:.2} V)"));
            }
        }
    }
    Ok(())
}

fn experiment_error(e: gnr_flash_array::ArrayError) -> gnr_flash::DeviceError {
    match e {
        gnr_flash_array::ArrayError::Device(inner) => inner,
        other => gnr_flash::DeviceError::Numerics(gnr_numerics::NumericsError::InvalidInput(
            other.to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_flash::experiments::ExperimentContext;

    #[test]
    fn workload_experiment_runs_and_checks_pass() {
        let report = WorkloadExperiment.run(&ExperimentContext::paper()).unwrap();
        assert!(report.check.is_ok(), "{:?}", report.check);
        assert_eq!(report.artifacts.len(), 3);
        assert!(report.summary.iter().any(|l| l.contains("gc_churn")));
    }
}
