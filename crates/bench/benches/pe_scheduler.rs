//! P/E operation scheduler bench: multi-plane throughput, adaptive vs
//! fixed ISPP pulse counts, and erase-verify + soft-program compaction.
//!
//! Three records land in `BENCH_pe_scheduler.json`:
//!
//! * **Scheduler ops/s** — the same write/read trace replayed through a
//!   single-plane sequential controller and a multi-plane parallel one,
//!   with the parity digest (FNV over the final ΔVT column) asserted
//!   equal: plane scheduling changes wall clock only, never state.
//! * **Adaptive ISPP** — mean pulses-per-program and mean overshoot of
//!   the adaptive controller vs the fixed nominal ladder at the same
//!   +2 V verify target over a process-varied population (the
//!   acceptance bar: adaptive mean pulses ≤ fixed mean pulses).
//! * **Erase-verify + soft-program** — erased-distribution width after
//!   the closed-loop erase vs the raw block erase (must be narrower).
//!
//! Environment: `GNR_BENCH_SHAPE=BxPxW` overrides the trace shape;
//! `GNR_BENCH_SMOKE=1` shrinks everything to a CI-sized smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_config, bench_threads, cache_stats_json, scheduler_trace, telemetry_phase,
    telemetry_snapshot_json, SCHEDULER_FULL_SHAPE, SCHEDULER_SMOKE_SHAPE,
};
use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::ispp::IsppProgrammer;
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::pe::{AdaptiveIspp, EraseVerify, PeCommand, PlaneScheduler, SoftProgram};
use gnr_flash_array::population::{CellPopulation, PopulationVariation};
use gnr_flash_array::workload::{replay, ReplayOptions};

struct SchedulerNumbers {
    ops: usize,
    sequential_seconds: f64,
    sequential_ops_per_second: f64,
    multi_plane_seconds: f64,
    multi_plane_ops_per_second: f64,
    planes: usize,
    digest: u64,
}

#[allow(clippy::cast_precision_loss)]
fn measure_scheduler(config: NandConfig, planes: usize) -> SchedulerNumbers {
    let trace = scheduler_trace(config.logical_pages());
    let options = ReplayOptions {
        snapshot_interval: 0,
        margin_scan: false,
    };

    let mut sequential =
        FlashController::over(NandArray::new(config).with_batch(BatchSimulator::sequential()));
    let seq_report = replay(&mut sequential, &trace, &options).expect("sequential replay");

    let mut scheduled = FlashController::new(config).with_planes(planes);
    let sched_report = replay(&mut scheduled, &trace, &options).expect("scheduled replay");

    let digest = gnr_flash_array::margins::state_digest(scheduled.array());
    let seq_digest = gnr_flash_array::margins::state_digest(sequential.array());
    assert_eq!(
        digest, seq_digest,
        "multi-plane execution must be bit-identical to sequential"
    );
    assert_eq!(
        scheduled.array().population().snapshot(),
        sequential.array().population().snapshot(),
        "population columns must match"
    );

    let ops = trace.ops.len();
    SchedulerNumbers {
        ops,
        sequential_seconds: seq_report.wall_seconds,
        sequential_ops_per_second: ops as f64 / seq_report.wall_seconds.max(1e-12),
        multi_plane_seconds: sched_report.wall_seconds,
        multi_plane_ops_per_second: ops as f64 / sched_report.wall_seconds.max(1e-12),
        planes,
        digest,
    }
}

struct IsppNumbers {
    cells: usize,
    fixed_mean_pulses: f64,
    adaptive_mean_pulses: f64,
    fixed_mean_overshoot: f64,
    adaptive_mean_overshoot: f64,
}

#[allow(clippy::cast_precision_loss)]
fn measure_ispp(cells: usize) -> IsppNumbers {
    let blueprint = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper();
    let variation = PopulationVariation::default();
    // Continuously-varied populations are the flow-map cache's
    // documented pathological shape (every cell a single-use key), so
    // the ISPP comparison runs the exact engine.
    let batch = BatchSimulator::new().with_mode(gnr_flash::engine::EngineMode::Exact);
    let indices: Vec<usize> = (0..cells).collect();
    let target = 2.0;

    let mut fixed_pop = CellPopulation::with_variation(blueprint.clone(), cells, &variation)
        .expect("varied population");
    let fixed_reports = fixed_pop.program_cells(&IsppProgrammer::nominal(), &indices, &batch);

    let mut adaptive_pop =
        CellPopulation::with_variation(blueprint, cells, &variation).expect("varied population");
    let adaptive_reports =
        AdaptiveIspp::nominal().program_cells(&mut adaptive_pop, &indices, &batch);

    let mean = |reports: &[gnr_flash_array::Result<gnr_flash_array::ispp::IsppReport>],
                f: &dyn Fn(&gnr_flash_array::ispp::IsppReport) -> f64| {
        let values: Vec<f64> = reports
            .iter()
            .map(|r| f(r.as_ref().expect("nominal recipes converge")))
            .collect();
        values.iter().sum::<f64>() / values.len() as f64
    };
    let numbers = IsppNumbers {
        cells,
        fixed_mean_pulses: mean(&fixed_reports, &|r| r.pulses as f64),
        adaptive_mean_pulses: mean(&adaptive_reports, &|r| r.pulses as f64),
        fixed_mean_overshoot: mean(&fixed_reports, &|r| r.final_vt_shift - target),
        adaptive_mean_overshoot: mean(&adaptive_reports, &|r| r.final_vt_shift - target),
    };
    assert!(
        numbers.adaptive_mean_pulses <= numbers.fixed_mean_pulses,
        "adaptive ISPP must not need more pulses than the fixed ladder: {:.3} vs {:.3}",
        numbers.adaptive_mean_pulses,
        numbers.fixed_mean_pulses
    );
    numbers
}

struct EraseNumbers {
    block_cells: usize,
    raw_width_volts: f64,
    verified_width_volts: f64,
    erase_pulses: usize,
    soft_programmed_cells: usize,
}

fn measure_erase(config: NandConfig) -> EraseNumbers {
    let variation = PopulationVariation::default();
    let build = || {
        let pop = CellPopulation::with_variation(
            gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper(),
            config.cells(),
            &variation,
        )
        .expect("varied population");
        // Exact engine: per-cell-unique variants make flow-map keys
        // single-use (see `gnr_flash::engine::flowmap` docs).
        let mut array = NandArray::with_population(config, pop)
            .with_batch(BatchSimulator::new().with_mode(gnr_flash::engine::EngineMode::Exact));
        for page in 0..config.pages_per_block {
            let bits: Vec<bool> = (0..config.page_width)
                .map(|i| (i + page) % 3 == 0)
                .collect();
            array.program_page(0, page, &bits).expect("program");
        }
        array
    };
    let width = |array: &NandArray| {
        let column = array.population().vt_shift_column(array.batch());
        let block = &column[..config.pages_per_block * config.page_width];
        block.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - block.iter().copied().fold(f64::INFINITY, f64::min)
    };

    let mut raw = build();
    raw.erase_block(0).expect("raw erase");
    let raw_width_volts = width(&raw);

    let mut verified = build();
    let report = verified
        .erase_block_verified(0, &EraseVerify::nominal(), Some(&SoftProgram::nominal()))
        .expect("verified erase");
    let verified_width_volts = width(&verified);
    assert!(
        verified_width_volts < raw_width_volts,
        "erase-verify + soft-program must narrow the erased distribution: \
         {verified_width_volts:.3} vs {raw_width_volts:.3} V"
    );

    EraseNumbers {
        block_cells: config.pages_per_block * config.page_width,
        raw_width_volts,
        verified_width_volts,
        erase_pulses: report.erase_pulses,
        soft_programmed_cells: report.soft_programmed_cells,
    }
}

fn measure_pe_scheduler() {
    let (config, smoke) = bench_config(SCHEDULER_SMOKE_SHAPE, SCHEDULER_FULL_SHAPE);
    // Stats cover the three measured phases only.
    gnr_flash::engine::cache::reset();
    let planes = config.blocks.min(4);
    let sched = measure_scheduler(config, planes);
    let ispp = measure_ispp(if smoke { 8 } else { 32 });
    let erase = measure_erase(NandConfig {
        blocks: 1,
        pages_per_block: 2,
        page_width: if smoke { 16 } else { 32 },
    });

    println!(
        "pe_scheduler {}x{}x{}: {} ops — sequential {:.0} ops/s, {}-plane {:.0} ops/s \
         (digest {:#018x}); adaptive ISPP {:.2} pulses vs fixed {:.2} \
         (overshoot {:+.3} vs {:+.3} V); erase width verified {:.3} V vs raw {:.3} V \
         ({} erase pulses, {} soft-programmed)",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        sched.ops,
        sched.sequential_ops_per_second,
        sched.planes,
        sched.multi_plane_ops_per_second,
        sched.digest,
        ispp.adaptive_mean_pulses,
        ispp.fixed_mean_pulses,
        ispp.adaptive_mean_overshoot,
        ispp.fixed_mean_overshoot,
        erase.verified_width_volts,
        erase.raw_width_volts,
        erase.erase_pulses,
        erase.soft_programmed_cells,
    );

    // Telemetry pass: the smoke-shaped trace through a multi-plane
    // controller with full instrumentation on — the measured phases
    // above stay telemetry-off.
    let (_, telemetry) = telemetry_phase(|| {
        let config = SCHEDULER_SMOKE_SHAPE;
        let trace = scheduler_trace(config.logical_pages());
        let mut controller = FlashController::new(config).with_planes(config.blocks.min(4));
        replay(
            &mut controller,
            &trace,
            &ReplayOptions {
                snapshot_interval: 0,
                margin_scan: false,
            },
        )
        .expect("telemetry replay")
    });

    let json = format!(
        "{{\n  \"bench\": \"pe_scheduler\",\n  \"config\": \"{}x{}x{}\",\n  \
         \"smoke\": {},\n  \"backend\": \"gnr-floating-gate\",\n  \"cores\": {},\n  \"threads\": {},\n  \"ops\": {},\n  \
         \"planes\": {},\n  \
         \"sequential_seconds\": {:.4},\n  \"sequential_ops_per_second\": {:.1},\n  \
         \"multi_plane_seconds\": {:.4},\n  \"multi_plane_ops_per_second\": {:.1},\n  \
         \"parity_digest\": \"{:#018x}\",\n  \"ispp_cells\": {},\n  \
         \"fixed_mean_pulses\": {:.4},\n  \"adaptive_mean_pulses\": {:.4},\n  \
         \"fixed_mean_overshoot_volts\": {:.4},\n  \
         \"adaptive_mean_overshoot_volts\": {:.4},\n  \"erase_block_cells\": {},\n  \
         \"raw_erase_width_volts\": {:.4},\n  \"verified_erase_width_volts\": {:.4},\n  \
         \"erase_pulses\": {},\n  \"soft_programmed_cells\": {},\n  \
         \"engine_cache\": {},\n  \"telemetry\": {}\n}}\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        smoke,
        rayon::current_num_threads(),
        bench_threads(),
        sched.ops,
        sched.planes,
        sched.sequential_seconds,
        sched.sequential_ops_per_second,
        sched.multi_plane_seconds,
        sched.multi_plane_ops_per_second,
        sched.digest,
        ispp.cells,
        ispp.fixed_mean_pulses,
        ispp.adaptive_mean_pulses,
        ispp.fixed_mean_overshoot,
        ispp.adaptive_mean_overshoot,
        erase.block_cells,
        erase.raw_width_volts,
        erase.verified_width_volts,
        erase.erase_pulses,
        erase.soft_programmed_cells,
        cache_stats_json(),
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pe_scheduler.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_pe_scheduler(c: &mut Criterion) {
    measure_pe_scheduler();

    // Criterion timing on a small fixed shape: one scheduled round of
    // four distinct-block page programs.
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 2,
        page_width: 16,
    };
    let bits: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut group = c.benchmark_group("pe_scheduler");
    group.sample_size(10);
    group.bench_function("four_plane_program_round_4x2x16", |b| {
        b.iter(|| {
            let mut array = NandArray::new(config);
            let commands: Vec<PeCommand> = (0..4)
                .map(|block| PeCommand::Program {
                    block,
                    page: 0,
                    bits: bits.clone(),
                })
                .collect();
            let execution = PlaneScheduler::new(4).execute(&mut array, commands);
            execution.first_error().expect("programs verify");
            execution
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pe_scheduler);
criterion_main!(benches);
