//! Fault-injection overhead and crash-recovery bench.
//!
//! Replays the same GC-churn stream twice — faults off, then a seeded
//! [`FaultPlan`] with grown-bad blocks and program-status failures over
//! a fault-tolerant controller — and reports both throughputs plus the
//! retirement/program-fail tallies, so the robustness machinery's cost
//! is a recorded trajectory. Every run (including the CI smoke run)
//! also sweeps power-loss points through `crash_and_recover` and
//! **asserts** the recovered digest equals the uninterrupted run's at
//! every cut — the crash-consistency pin rides along with the numbers.
//!
//! Environment: `GNR_BENCH_SHAPE=BxPxW`, `GNR_BENCH_SMOKE=1`,
//! `GNR_BENCH_BACKEND=gnr|cnt|pcm` as in the other array benches.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_backend, bench_config, bench_threads, telemetry_phase, telemetry_snapshot_json,
};
use gnr_flash::backend::CellBackend;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::fault::{crash_and_recover, replay_ops, FaultPlan};
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{GcChurnSource, TraceSource};

/// The seeded plan the faulted phases run under: a slice of blocks grow
/// bad at mid-life erase counts and a thin program-fail lottery rides
/// on every page program.
fn bench_plan() -> FaultPlan {
    FaultPlan {
        // One explicit grown-bad block guarantees retirement traffic on
        // every shape (including the CI smoke shape); the seeded
        // lotteries scale the rest with the array.
        bad_block_after_erases: vec![(1, 2)],
        grown_bad_fraction: 0.05,
        grown_bad_min_erases: 2,
        grown_bad_max_erases: 8,
        program_fail_probability: 0.005,
        ..FaultPlan::seeded(0xfa17_b3c4)
    }
}

struct ChurnOutcome {
    seconds: f64,
    ops: usize,
    blocks_retired: usize,
    program_fails: u64,
    read_only: bool,
    live_pages_readable: bool,
}

/// One churn phase: `ops` one-op ticks through the batched replayer.
/// `plan: Some` runs fault-tolerant with a quarter of the blocks held
/// as spares; `None` is the faults-off baseline on the same shape.
fn churn(config: NandConfig, backend: &CellBackend, plan: Option<FaultPlan>) -> ChurnOutcome {
    let spares = if plan.is_some() { config.blocks / 4 } else { 0 };
    let mut controller = FlashController::with_backend(config, backend);
    if plan.is_some() {
        controller = controller.with_fault_tolerance(spares);
    }
    controller.set_faults(plan);
    let capacity = controller.logical_capacity();
    let source = GcChurnSource::new(capacity, 2 * capacity, 0xbead);
    let ops = source.len();

    let start = std::time::Instant::now();
    // Spare exhaustion surfaces as a clean ReadOnly error, not a panic;
    // the run records how far it got.
    let read_only = replay_ops(&mut controller, &source, 0, ops).is_err();
    let seconds = start.elapsed().as_secs_f64();

    let live_pages_readable = controller
        .live_logical_pages()
        .into_iter()
        .all(|lpn| controller.read_logical(lpn).is_ok());
    ChurnOutcome {
        seconds,
        ops,
        blocks_retired: controller.retired_blocks(),
        program_fails: controller.program_fail_count(),
        read_only: read_only || controller.read_only(),
        live_pages_readable,
    }
}

/// The crash-consistency pin: cut power at up to `max_points` op-clock
/// indices of a small churn stream and demand digest-identical
/// recovery at every cut plus an identical finish. Panics on any
/// mismatch — a bench run is also a correctness run.
fn crash_sweep(backend: &CellBackend, max_points: usize) -> (usize, usize) {
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 2,
        page_width: 8,
    };
    let build_plain = || {
        FlashController::with_backend(config, backend)
            .with_fault_tolerance(1)
            .with_crash_consistency(3)
    };
    let capacity = build_plain().logical_capacity();
    let source = GcChurnSource::new(capacity, 5 * capacity, 0x5eed);
    let len = source.len();
    let plan = FaultPlan {
        bad_block_after_erases: vec![(2, 2)],
        power_loss_ops: (0..len as u64).collect(),
        ..FaultPlan::seeded(0x00c0_ffee)
    };
    let build = || build_plain().with_faults(Some(plan.clone()));

    let mut reference = build();
    let mut prefix = Vec::with_capacity(len + 1);
    prefix.push(reference.state_digest());
    for i in 0..len {
        replay_ops(&mut reference, &source, i, i + 1).expect("reference run replays");
        prefix.push(reference.state_digest());
    }
    let final_digest = reference.state_digest();

    let stride = len.div_ceil(max_points).max(1);
    let mut points = 0;
    let mut max_deltas = 0;
    for crash_op in (0..len).step_by(stride) {
        let outcome = crash_and_recover(backend, &build, &plan, &source, crash_op)
            .expect("crash-and-recover completes");
        assert_eq!(
            outcome.recovered_digest, prefix[crash_op],
            "recovered digest diverged at op {crash_op}"
        );
        assert_eq!(
            outcome.final_digest, final_digest,
            "post-recovery digest diverged at op {crash_op}"
        );
        points += 1;
        max_deltas = max_deltas.max(outcome.deltas_replayed);
    }
    (points, max_deltas)
}

fn measure_fault_injection() {
    let (config, smoke) = bench_config(
        NandConfig {
            blocks: 8,
            pages_per_block: 4,
            page_width: 16,
        },
        NandConfig {
            blocks: 32,
            pages_per_block: 16,
            page_width: 64,
        },
    );
    let backend = bench_backend();

    // Warm the global engine caches so baseline and faulted phases both
    // measure steady-state throughput, not first-touch table builds.
    let _ = churn(config, &backend, None);
    let baseline = churn(config, &backend, None);
    let faulted = churn(config, &backend, Some(bench_plan()));
    assert!(
        faulted.live_pages_readable,
        "fault churn must keep every live logical page readable"
    );

    let sweep_cap = if smoke { usize::MAX } else { 64 };
    let (crash_points, crash_max_deltas) = crash_sweep(&backend, sweep_cap);

    #[allow(clippy::cast_precision_loss)]
    let ops_per_second = |o: &ChurnOutcome| {
        if o.seconds > 0.0 {
            o.ops as f64 / o.seconds
        } else {
            0.0
        }
    };
    println!(
        "fault_injection [{}] {}x{}x{}: baseline {:.0} ops/s, faulted {:.0} ops/s; \
         {} blocks retired, {} program fails, read_only={}; \
         crash sweep {} points (max {} deltas) digest-identical",
        backend.kind().name(),
        config.blocks,
        config.pages_per_block,
        config.page_width,
        ops_per_second(&baseline),
        ops_per_second(&faulted),
        faulted.blocks_retired,
        faulted.program_fails,
        faulted.read_only,
        crash_points,
        crash_max_deltas,
    );

    // Telemetry pass: one full crash-and-recover under a retiring fault
    // plan with instrumentation on, so the report carries the fault
    // counters (program fails, retirements, power loss, recovery
    // replay) and their journal events.
    let (_, telemetry) = telemetry_phase(|| {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 2,
            page_width: 8,
        };
        let build_plain = || {
            FlashController::with_backend(config, &backend)
                .with_fault_tolerance(1)
                .with_crash_consistency(3)
        };
        let capacity = build_plain().logical_capacity();
        let source = GcChurnSource::new(capacity, 5 * capacity, 0x5eed);
        let plan = FaultPlan {
            bad_block_after_erases: vec![(2, 2)],
            ..FaultPlan::seeded(0x00c0_ffee)
        };
        let build = || build_plain().with_faults(Some(plan.clone()));
        let outcome = crash_and_recover(&backend, &build, &plan, &source, source.len() / 2)
            .expect("telemetry crash-and-recover completes");
        assert_eq!(
            outcome.recovered_digest, outcome.digest_at_crash,
            "telemetry-phase recovery must be digest-identical"
        );
    });

    let json = format!(
        "{{\n  \"bench\": \"fault_injection\",\n  \"config\": \"{}x{}x{}\",\n  \
         \"smoke\": {},\n  \"backend\": \"{}\",\n  \"cores\": {},\n  \"threads\": {},\n  \
         \"churn_ops\": {},\n  \"baseline_ops_per_second\": {:.1},\n  \
         \"faulted_ops_per_second\": {:.1},\n  \"blocks_retired\": {},\n  \
         \"program_fails\": {},\n  \"spare_blocks\": {},\n  \"read_only\": {},\n  \
         \"live_pages_readable\": {},\n  \"crash_sweep_points\": {},\n  \
         \"crash_sweep_max_deltas\": {},\n  \"crash_digests_identical\": true,\n  \
         \"telemetry\": {}\n}}\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        smoke,
        backend.kind().name(),
        rayon::current_num_threads(),
        bench_threads(),
        faulted.ops,
        ops_per_second(&baseline),
        ops_per_second(&faulted),
        faulted.blocks_retired,
        faulted.program_fails,
        config.blocks / 4,
        faulted.read_only,
        faulted.live_pages_readable,
        crash_points,
        crash_max_deltas,
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fault_injection.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_faults(c: &mut Criterion) {
    measure_fault_injection();

    // Criterion timings on a small, fixed shape so the numbers are
    // comparable across hosts regardless of the env overrides above.
    let config = NandConfig {
        blocks: 8,
        pages_per_block: 4,
        page_width: 16,
    };
    let backend = bench_backend();
    let mut group = c.benchmark_group("fault_injection");
    group.sample_size(10);
    group.bench_function("faulted_churn_8x4x16", |b| {
        b.iter(|| {
            let mut controller = FlashController::with_backend(config, &backend)
                .with_fault_tolerance(2)
                .with_faults(Some(bench_plan()));
            let capacity = controller.logical_capacity();
            let source = GcChurnSource::new(capacity, capacity, 0xbead);
            let _ = replay_ops(&mut controller, &source, 0, source.len());
            controller.state_digest()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
