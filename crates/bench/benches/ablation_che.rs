//! FN vs CHE programming ablation — the paper's §II comparison.
//!
//! Checks: FN per-cell programming current stays below 1 nA (the paper's
//! NAND claim) while CHE draws the 0.3–1 mA class channel current, and the
//! per-operation energy gap exceeds three orders of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::nor::{fn_pulse_energy, CheBias, NorCell};
use gnr_units::{Charge, Voltage};
use std::hint::black_box;

fn bench_che(c: &mut Criterion) {
    // FN side: peak programming current per cell.
    let device = gnr_flash::device::FloatingGateTransistor::mlgnr_cnt_paper();
    let state = device.tunneling_state(Voltage::from_volts(15.0), Voltage::ZERO, Charge::ZERO);
    let i_fn = state.tunnel_flow.abs().as_amps_per_square_meter()
        * device.geometry().gate_area().as_square_meters();
    assert!(
        i_fn < 1.0e-9,
        "FN cell current must be < 1 nA, got {i_fn:e} A"
    );

    // CHE side: energy comparison.
    let bias = CheBias::default();
    assert!(bias.drain_current.as_milliamps() >= 0.3);
    let mut fn_cell = FlashCell::paper_cell();
    fn_cell.program_default().expect("program");
    let e_fn = fn_pulse_energy(fn_cell.charge(), Voltage::from_volts(15.0));
    let nor = NorCell::new(FlashCell::paper_cell());
    let e_che = nor.che_pulse_energy(&bias);
    assert!(e_che / e_fn > 1.0e3, "energy ratio {:e}", e_che / e_fn);

    let mut group = c.benchmark_group("ablation_che");
    group.sample_size(10);
    group.bench_function("fn_program_pulse", |b| {
        b.iter(|| {
            let mut cell = FlashCell::paper_cell();
            cell.program_default().expect("program");
            black_box(cell.charge())
        });
    });
    group.bench_function("che_program_pulse", |b| {
        b.iter(|| {
            let mut cell = NorCell::new(FlashCell::paper_cell());
            cell.program_che(&bias);
            black_box(cell.cell().charge())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_che);
criterion_main!(benches);
