//! Benches the Figure 4/5 programming transient (onset + saturation).
//!
//! Asserts the paper shapes before timing, so `cargo bench` is also a
//! reproduction check.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::experiments::{fig4, fig5};
use std::hint::black_box;

fn bench_transients(c: &mut Criterion) {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();

    // Reproduction check once, outside the timing loop.
    let f4 = fig4::generate(&device).expect("fig4");
    fig4::check(&f4).expect("fig4 shape");
    let f5 = fig5::generate(&device).expect("fig5");
    fig5::check(&f5).expect("fig5 shape");

    let mut group = c.benchmark_group("fig4_fig5");
    group.sample_size(10);
    group.bench_function("fig4_onset", |b| {
        b.iter(|| fig4::generate(black_box(&device)).expect("fig4"));
    });
    group.bench_function("fig5_saturation", |b| {
        b.iter(|| fig5::generate(black_box(&device)).expect("fig5"));
    });
    group.finish();
}

criterion_group!(benches, bench_transients);
criterion_main!(benches);
