//! Benches the Figure 6 sweep: program JFN vs VGS over four GCR values.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::experiments::fig6;

fn bench_fig6(c: &mut Criterion) {
    let fig = fig6::generate().expect("fig6");
    fig6::check(&fig).expect("fig6 shape");

    c.bench_function("fig6_program_gcr_sweep", |b| {
        b.iter(|| fig6::generate().expect("fig6"));
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
