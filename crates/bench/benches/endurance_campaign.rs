//! Long-horizon endurance campaign: the time-scale-jumping acceptance
//! bench.
//!
//! Runs a checkpointable campaign on the acceptance shape (64×64×256,
//! ≥1M cells): 10 rounds, each one epoch jump of 1000 composed P/E
//! cycles per block followed by a full-fidelity GC-churn observation
//! window with an RBER/UBER scan. Against it, a pulse-by-pulse
//! flow-map-replay baseline is timed on a cell sample, so the JSON
//! records the epoch speedup directly (the acceptance bar is ≥20×; the
//! composed maps clear it by orders of magnitude because an epoch pays
//! O(log n) interpolations per *distinct* charge, not O(n · pulses)
//! per cell).
//!
//! Every invocation — smoke included — also runs the
//! restore-equals-uninterrupted assertion on a tiny shape: a campaign
//! checkpointed mid-epoch through JSON and resumed must land on the
//! exact controller digest of the run that never stopped.
//!
//! Environment: `GNR_BENCH_SHAPE=BxPxW`, `GNR_BENCH_SMOKE=1`,
//! `GNR_BENCH_THREADS=N` as in the other array benches. The run writes
//! `BENCH_endurance_campaign.json` at the workspace root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_config, bench_threads, cache_stats_json, telemetry_phase, telemetry_snapshot_json,
};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{cycle_once, ChargeBalanceEngine};
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::ispp::nominal_cycle_recipe;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{CampaignCheckpoint, CampaignRunner, EnduranceCampaign};
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::ReliabilityObserver;

fn campaign_for(capacity: usize, rounds: usize, cycles_per_round: u64) -> EnduranceCampaign {
    EnduranceCampaign {
        rounds,
        cycles_per_round,
        epoch_chunk: 0,
        recipe: nominal_cycle_recipe().expect("nominal recipe freezes"),
        window_overwrites: (capacity / 4).clamp(8, 1024),
        window_segment: 0,
        window_seed: 0xCAFE,
    }
}

/// The pulse-by-pulse baseline: explicit flow-map replay of the same
/// recipe, cell by cell and cycle by cycle, on a sample of the
/// population's current charges. Returns (cell·cycles, seconds).
fn per_pulse_baseline(controller: &FlashController, cycles: u64) -> (u64, f64) {
    let recipe = nominal_cycle_recipe().expect("nominal recipe freezes");
    let pop = controller.array().population();
    let sample: Vec<f64> = pop.charge_column().iter().copied().take(2048).collect();
    let engine = ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper());
    let t0 = Instant::now();
    for &q0 in &sample {
        let mut q = q0;
        for _ in 0..cycles {
            q = cycle_once(&engine, &recipe, q)
                .expect("explicit cycle runs")
                .charge;
        }
    }
    (sample.len() as u64 * cycles, t0.elapsed().as_secs_f64())
}

/// Restore-equals-uninterrupted on a tiny shape, asserted on every
/// invocation. Returns the shared final digest (hex) for the JSON.
fn assert_resume_digest() -> String {
    let config = NandConfig {
        blocks: 3,
        pages_per_block: 2,
        page_width: 8,
    };
    let capacity = config.logical_pages();
    let mut campaign = campaign_for(capacity, 2, 5);
    campaign.epoch_chunk = 2; // checkpoints land mid-epoch
    campaign.window_segment = 3; // and mid-window

    let mut uninterrupted = FlashController::new(config);
    let mut runner = CampaignRunner::new(&campaign);
    runner
        .run_to_end(&mut uninterrupted, &mut ())
        .expect("uninterrupted campaign runs");
    let want = uninterrupted.state_digest();

    let mut controller = FlashController::new(config);
    let mut runner = CampaignRunner::new(&campaign);
    for _ in 0..4 {
        runner
            .step(&mut controller, &mut ())
            .expect("prefix steps run")
            .expect("campaign not exhausted");
    }
    let json = serde_json::to_string(&CampaignCheckpoint {
        controller: controller.snapshot(),
        state: runner.state(),
    })
    .expect("checkpoint serializes");
    let decoded = CampaignCheckpoint::from_json(&json).expect("checkpoint decodes");
    let mut resumed = FlashController::restore(
        FloatingGateTransistor::mlgnr_cnt_paper(),
        decoded.controller,
    )
    .expect("controller restores");
    let mut runner = CampaignRunner::resume(&campaign, decoded.state);
    runner
        .run_to_end(&mut resumed, &mut ())
        .expect("resumed campaign runs");
    assert_eq!(
        resumed.state_digest(),
        want,
        "restored campaign must be digest-identical to the uninterrupted run"
    );
    format!("{want:016x}")
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn measure_endurance_campaign() {
    let (config, smoke) = bench_config(
        NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        },
        NandConfig {
            blocks: 64,
            pages_per_block: 64,
            page_width: 256,
        },
    );
    let resume_digest = assert_resume_digest();
    println!("resume-digest assertion ok ({resume_digest})");

    let (rounds, cycles_per_round) = if smoke { (2, 50) } else { (10, 1000) };
    let mut controller = FlashController::new(config);
    let campaign = campaign_for(controller.logical_capacity(), rounds, cycles_per_round);
    // t scales with the page: the smoke page (16 bits, m = 4) can only
    // fit t = 2 parity runs; the acceptance page (256 bits) takes t = 4.
    let t = if config.page_width >= 64 { 4 } else { 2 };
    let ecc = EccConfig::bch_for_width(config.page_width, t).expect("codec fits the page");
    let mut observer =
        ReliabilityObserver::new(&ecc, BerModel::default(), None).expect("observer builds");

    // Stats cover the measured campaign only.
    gnr_flash::engine::cache::reset();
    let mut epoch_seconds = 0.0f64;
    let mut window_seconds = 0.0f64;
    let mut window_ops = 0usize;
    let mut map_probes = 0u64;
    let mut fallback_probes = 0u64;
    let mut runner = CampaignRunner::new(&campaign);
    loop {
        let t0 = Instant::now();
        let Some(report) = runner
            .step(&mut controller, &mut observer)
            .expect("campaign step runs")
        else {
            break;
        };
        let dt = t0.elapsed().as_secs_f64();
        if report.cycles > 0 {
            epoch_seconds += dt;
            let epoch = report.epoch.expect("epoch steps report telemetry");
            map_probes += epoch.map_probes as u64;
            fallback_probes += epoch.fallback_probes as u64;
        } else {
            window_seconds += dt;
            window_ops += report.ops;
        }
    }

    let cells = config.cells() as u64;
    let total_cycles = rounds as u64 * cycles_per_round;
    let cell_cycles = cells * total_cycles;
    let epoch_rate = cell_cycles as f64 / epoch_seconds.max(1e-12);

    let baseline_cycles = if smoke { 2 } else { 5 };
    let (baseline_cell_cycles, baseline_seconds) = per_pulse_baseline(&controller, baseline_cycles);
    let baseline_rate = baseline_cell_cycles as f64 / baseline_seconds.max(1e-12);
    let speedup = epoch_rate / baseline_rate;
    assert!(
        speedup >= 20.0,
        "epoch jumps must beat pulse-by-pulse replay by >= 20x, got {speedup:.1}x"
    );

    let fmt_traj = |f: &dyn Fn(&gnr_reliability::uber::ReliabilityPoint) -> f64| {
        let vals: Vec<String> = observer
            .trajectory
            .iter()
            .map(|p| format!("{:.6e}", f(p)))
            .collect();
        format!("[{}]", vals.join(", "))
    };
    let rber_trajectory = fmt_traj(&|p| p.rber);
    let uber_trajectory = fmt_traj(&|p| p.uber);
    let wear_trajectory = fmt_traj(&|p| p.mean_injected_charge);

    println!(
        "endurance_campaign {}x{}x{} ({} cells): {} rounds x {} cycles -> \
         {:.2e} cell-cycles in {:.2} s epoch time ({:.3e} cell-cycles/s); \
         per-pulse baseline {:.3e} cell-cycles/s; speedup {:.0}x; \
         {} window ops in {:.2} s; final RBER {:.3e}, UBER {:.3e}",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        cells,
        rounds,
        cycles_per_round,
        cell_cycles as f64,
        epoch_seconds,
        epoch_rate,
        baseline_rate,
        speedup,
        window_ops,
        window_seconds,
        observer.trajectory.last().map_or(0.0, |p| p.rber),
        observer.trajectory.last().map_or(0.0, |p| p.uber),
    );

    // Telemetry pass: a smoke-shaped campaign (with a reliability
    // observer, so decode/retry instrumentation fires too) under full
    // instrumentation — the measured campaign above stays telemetry-off.
    let (_, telemetry) = telemetry_phase(|| {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        };
        let mut controller = FlashController::new(config);
        let campaign = campaign_for(controller.logical_capacity(), 2, 50);
        let ecc = EccConfig::bch_for_width(config.page_width, 2).expect("codec fits the page");
        let mut observer =
            ReliabilityObserver::new(&ecc, BerModel::default(), None).expect("observer builds");
        let mut runner = CampaignRunner::new(&campaign);
        runner
            .run_to_end(&mut controller, &mut observer)
            .expect("telemetry campaign runs")
    });

    let json = format!(
        "{{\n  \"bench\": \"endurance_campaign\",\n  \"config\": \"{}x{}x{}\",\n  \
         \"smoke\": {},\n  \"backend\": \"gnr-floating-gate\",\n  \"cores\": {},\n  \"threads\": {},\n  \"cells\": {},\n  \
         \"rounds\": {},\n  \"cycles_per_round\": {},\n  \"total_cycles\": {},\n  \
         \"epoch_seconds\": {:.3},\n  \"epoch_cell_cycles_per_second\": {:.3e},\n  \
         \"epoch_map_probes\": {},\n  \"epoch_fallback_probes\": {},\n  \
         \"baseline_cell_cycles\": {},\n  \"baseline_seconds\": {:.3},\n  \
         \"baseline_cell_cycles_per_second\": {:.3e},\n  \
         \"speedup_vs_per_pulse\": {:.1},\n  \
         \"window_ops\": {},\n  \"window_seconds\": {:.3},\n  \
         \"rber_trajectory\": {},\n  \"uber_trajectory\": {},\n  \
         \"mean_injected_charge_trajectory\": {},\n  \
         \"resume_digest\": \"{}\",\n  \"resume_check\": \"ok\",\n  \
         \"engine_cache\": {},\n  \"telemetry\": {}\n}}\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        smoke,
        rayon::current_num_threads(),
        bench_threads(),
        cells,
        rounds,
        cycles_per_round,
        total_cycles,
        epoch_seconds,
        epoch_rate,
        map_probes,
        fallback_probes,
        baseline_cell_cycles,
        baseline_seconds,
        baseline_rate,
        speedup,
        window_ops,
        window_seconds,
        rber_trajectory,
        uber_trajectory,
        wear_trajectory,
        resume_digest,
        cache_stats_json(),
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_endurance_campaign.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_campaign(c: &mut Criterion) {
    measure_endurance_campaign();

    // Criterion timings on a small fixed shape so the numbers compare
    // across hosts regardless of the env overrides above.
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let mut group = c.benchmark_group("endurance_campaign");
    group.sample_size(10);
    group.bench_function("campaign_2x50_4x4x16", |b| {
        b.iter(|| {
            let mut controller = FlashController::new(config);
            let campaign = campaign_for(controller.logical_capacity(), 2, 50);
            let mut runner = CampaignRunner::new(&campaign);
            runner
                .run_to_end(&mut controller, &mut ())
                .expect("campaign runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
