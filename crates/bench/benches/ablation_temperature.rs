//! Temperature ablation: the Lenzlinger–Snow finite-temperature factor on
//! the programming current, 250–400 K.
//!
//! The analytic eq. (4) the paper uses is a zero-temperature law; this
//! ablation quantifies how much the room-temperature correction shifts
//! the Figure 6 nominal point.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::device::FloatingGateTransistor;
use gnr_units::{Temperature, Voltage};
use std::hint::black_box;

fn bench_temperature(c: &mut Criterion) {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let vfg = Voltage::from_volts(9.0); // the §III worked example

    // Shape check: correction grows with T, bounded at the nominal point.
    let j0 = device
        .tunnel_flow(vfg, Voltage::ZERO)
        .as_amps_per_square_meter();
    let mut prev = j0;
    for t in [250.0, 300.0, 350.0, 400.0] {
        let j = device
            .tunnel_flow_at(vfg, Voltage::ZERO, Temperature::from_kelvin(t))
            .as_amps_per_square_meter();
        assert!(j > prev, "J must grow with temperature");
        prev = j;
    }
    let j300 = device
        .tunnel_flow_at(vfg, Voltage::ZERO, Temperature::from_kelvin(300.0))
        .as_amps_per_square_meter();
    assert!(
        j300 / j0 < 1.5,
        "room-T correction should be modest: {}",
        j300 / j0
    );

    c.bench_function("temperature_sweep_250_400K", |b| {
        b.iter(|| {
            (0..31)
                .map(|i| {
                    let t = Temperature::from_kelvin(250.0 + 5.0 * f64::from(i));
                    device
                        .tunnel_flow_at(black_box(vfg), Voltage::ZERO, t)
                        .as_amps_per_square_meter()
                })
                .sum::<f64>()
        });
    });
}

criterion_group!(benches, bench_temperature);
criterion_main!(benches);
