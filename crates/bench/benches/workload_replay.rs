//! Workload replay at scale: the struct-of-arrays acceptance bench.
//!
//! Constructs the acceptance-criterion NAND array — 64×64×256, ≥1M
//! cells — and replays a full page-program + block-erase workload trace
//! through the `FlashController`, then a steady-state GC-churn burst.
//! Memory stays proportional to per-cell *state* (no per-cell device
//! clones); the run writes `BENCH_workload_replay.json` at the workspace
//! root with `cells_per_second` and `bytes_per_cell` (the peak-RSS
//! proxy) so the scaling trajectory is recorded per run.
//!
//! Environment:
//!
//! * `GNR_BENCH_SHAPE=BxPxW` overrides the array shape;
//! * `GNR_BENCH_SMOKE=1` shrinks to a 4×4×16 smoke run (CI bit-rot
//!   guard, ~a second);
//! * `GNR_BENCH_BACKEND=gnr|cnt|pcm` selects the device backend the
//!   replay runs on (GNR floating gate by default).

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_backend, bench_config, bench_threads, cache_stats_json, telemetry_phase,
    telemetry_snapshot_json,
};
use gnr_flash::backend::CellBackend;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandConfig;
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};

fn full_cycle_report(
    config: NandConfig,
    backend: &CellBackend,
    smoke: bool,
) -> (
    gnr_flash_array::workload::WorkloadReport,
    gnr_flash_array::workload::WorkloadReport,
) {
    let margin_scan = config.cells() <= 1 << 22;
    let options = ReplayOptions {
        snapshot_interval: 0,
        margin_scan,
    };

    let mut controller = FlashController::with_backend(config, backend);
    let cycle = replay(
        &mut controller,
        &WorkloadTrace::full_array_cycle(config),
        &options,
    )
    .expect("full-array cycle replays");

    // Steady-state churn on the same (now worn) array: bounded op count
    // so the bench stays minutes-not-hours even at the 1M-cell shape —
    // and a handful of ops in smoke mode, where the churn phase would
    // otherwise dominate CI bench time on custom shapes.
    let capacity = controller.logical_capacity();
    let churn_ops = if smoke {
        8
    } else {
        (capacity / 4).clamp(8, 2048)
    };
    let churn = replay(
        &mut controller,
        &WorkloadTrace::gc_churn(churn_ops, capacity, 0xbead),
        &options,
    )
    .expect("gc churn replays");
    (cycle, churn)
}

fn measure_workload_replay() {
    let (config, smoke) = bench_config(
        NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        },
        NandConfig {
            blocks: 64,
            pages_per_block: 64,
            page_width: 256,
        },
    );

    let backend = bench_backend();

    // Stats cover the measured replay only, not warmup from earlier
    // phases sharing this process.
    gnr_flash::engine::cache::reset();
    let (cycle, churn) = full_cycle_report(config, &backend, smoke);
    let churn_wear = &churn.snapshots.last().expect("snapshot").wear;

    // Write amplification of the churn phase: physical page programs
    // (host writes + GC relocations) per host write. The full-cycle
    // phase never relocates, so the churn ratio is the steady-state one.
    #[allow(clippy::cast_precision_loss)]
    let churn_write_amplification = if churn.writes > 0 {
        (churn.writes + churn_wear.gc_relocations) as f64 / churn.writes as f64
    } else {
        1.0
    };

    println!(
        "workload_replay [{}] {}x{}x{} ({} cells, {} B/cell state): \
         full cycle {} writes + {} erases in {:.2} s ({:.0} cells/s); \
         churn {} writes, {} GC relocations (WA {:.3}), wear spread {}",
        backend.kind().name(),
        config.blocks,
        config.pages_per_block,
        config.page_width,
        cycle.cells,
        cycle.bytes_per_cell,
        cycle.writes,
        cycle.erases,
        cycle.wall_seconds,
        cycle.cells_per_second,
        churn.writes,
        churn_wear.gc_relocations,
        churn_write_amplification,
        churn_wear.spread(),
    );

    // Telemetry pass: a short smoke-shaped churn replay with the full
    // instrumentation stack on, so the report carries a real
    // `"telemetry"` block without perturbing the measured timings above.
    let (_, telemetry) = telemetry_phase(|| {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        };
        let mut controller = FlashController::with_backend(config, &backend);
        let capacity = controller.logical_capacity();
        replay(
            &mut controller,
            &WorkloadTrace::gc_churn(32, capacity, 0xbead),
            &ReplayOptions::default(),
        )
        .expect("telemetry churn replays")
    });

    let json = format!(
        "{{\n  \"bench\": \"workload_replay\",\n  \"config\": \"{}x{}x{}\",\n  \
         \"smoke\": {},\n  \"backend\": \"{}\",\n  \"cores\": {},\n  \"threads\": {},\n  \
         \"cells\": {},\n  \
         \"bytes_per_cell\": {},\n  \"full_cycle_writes\": {},\n  \
         \"full_cycle_erases\": {},\n  \"full_cycle_seconds\": {:.3},\n  \
         \"cells_per_second\": {:.1},\n  \"churn_writes\": {},\n  \
         \"churn_seconds\": {:.3},\n  \"churn_gc_relocations\": {},\n  \
         \"churn_write_amplification\": {:.4},\n  \
         \"total_erases\": {},\n  \"wear_spread\": {},\n  \
         \"engine_cache\": {},\n  \"telemetry\": {}\n}}\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        smoke,
        backend.kind().name(),
        rayon::current_num_threads(),
        bench_threads(),
        cycle.cells,
        cycle.bytes_per_cell,
        cycle.writes,
        cycle.erases,
        cycle.wall_seconds,
        cycle.cells_per_second,
        churn.writes,
        churn.wall_seconds,
        churn_wear.gc_relocations,
        churn_write_amplification,
        churn_wear.total_erases,
        churn_wear.spread(),
        cache_stats_json(),
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_workload_replay.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_workload(c: &mut Criterion) {
    measure_workload_replay();

    // Criterion timings on a small, fixed shape so the numbers are
    // comparable across hosts regardless of the env overrides above.
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let mut group = c.benchmark_group("workload_replay");
    group.sample_size(10);
    group.bench_function("full_array_cycle_4x4x16", |b| {
        let trace = WorkloadTrace::full_array_cycle(config);
        b.iter(|| {
            let mut controller = FlashController::new(config);
            replay(&mut controller, &trace, &ReplayOptions::default()).expect("replay")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
