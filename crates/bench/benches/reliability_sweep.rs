//! Reliability sweep at array scale: margins → raw BER → ECC → UBER.
//!
//! Builds the acceptance-criterion 64×64×256 NAND array (≥1M cells),
//! programs every page with seeded data, then measures raw and post-ECC
//! error rates over a grid of wear levels (synthetic P/E-cycle fluence
//! through the endurance model's charge-per-cycle) × retention bake
//! times (85 °C, through the retention model's charge decay). Each
//! corner re-centers the read reference on its margin histogram and
//! samples one full deterministic read; per-page error patterns are
//! decoded by a BCH codec sized to the page. The fresh-cell corner is
//! scanned twice to assert bit-identical sampling, and the whole grid
//! lands in `BENCH_reliability_sweep.json` at the workspace root.
//!
//! Environment:
//!
//! * `GNR_BENCH_SHAPE=BxPxW` overrides the array shape;
//! * `GNR_BENCH_SMOKE=1` shrinks to a 4×4×16 smoke run (CI bit-rot
//!   guard, seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{bench_config, bench_threads, telemetry_phase};
use gnr_flash::engine::cache::EngineCacheStats;
use gnr_flash_array::cell::FlashCell;
use gnr_flash_array::endurance::EnduranceModel;
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::retention::RetentionModel;
use gnr_flash_array::workload::PagePattern;
use gnr_reliability::ber::BerModel;
use gnr_reliability::codec::EccConfig;
use gnr_reliability::uber::{scan_array, ReliabilityPoint};
use gnr_units::{Temperature, Voltage};

/// One corner of the sweep grid.
#[derive(Debug, Clone, serde::Serialize)]
struct SweepCorner {
    wear_cycles: f64,
    trap_offset_volts: f64,
    retention_seconds: f64,
    point: ReliabilityPoint,
}

/// The committed sweep record.
#[derive(Debug, Clone, serde::Serialize)]
struct SweepReport {
    bench: String,
    config: String,
    smoke: bool,
    backend: String,
    cores: usize,
    threads: usize,
    cells: usize,
    codec: String,
    code_bits: usize,
    data_bits: usize,
    correctable: usize,
    read_noise_sigma: f64,
    seed: u64,
    wear_offsets_volts: Vec<f64>,
    wear_cycles: Vec<f64>,
    retention_seconds: Vec<f64>,
    bake_temperature_celsius: f64,
    grid: Vec<SweepCorner>,
    fresh_rber: f64,
    fresh_uber: f64,
    /// `rber / max(uber, 1/coded_bits)` in the fresh corner — a
    /// measured-zero UBER reports its resolution floor, not infinity.
    fresh_uber_improvement_min: f64,
    deterministic: bool,
    fill_seconds: f64,
    sweep_seconds: f64,
    engine_cache: EngineCacheStats,
    telemetry: gnr_flash::telemetry::TelemetrySnapshot,
}

/// Programs every page of a fresh array with seeded pseudo-random data.
fn fill_array(config: NandConfig) -> NandArray {
    let mut array = NandArray::new(config);
    let width = config.page_width;
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            let seed = (block * config.pages_per_block + page) as u64;
            let bits = PagePattern::Seeded { seed }.expand(width);
            array
                .program_page(block, page, &bits)
                .expect("fresh pages program");
        }
    }
    array
}

/// P/E cycles whose cumulative fluence produces a given trap-induced
/// threshold offset — the inverse of the endurance model's √-law, so
/// wear levels are stated in volts of erased-state drift and recorded
/// in cycles.
fn cycles_for_offset(
    model: &EnduranceModel,
    cfc_farads: f64,
    charge_per_cycle: f64,
    offset_volts: f64,
) -> f64 {
    if offset_volts <= 0.0 {
        return 0.0;
    }
    let e = gnr_units::constants::ELEMENTARY_CHARGE;
    let trap_electrons = offset_volts * cfc_farads / e;
    let injected_electrons = (trap_electrons / model.trap_sqrt_coefficient).powi(2);
    injected_electrons * e / charge_per_cycle
}

#[allow(clippy::too_many_lines)]
fn measure_reliability_sweep() {
    let (config, smoke) = bench_config(
        NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        },
        NandConfig {
            blocks: 64,
            pages_per_block: 64,
            page_width: 256,
        },
    );

    // BCH sized to the page: t = 8 on 256-bit pages (255, 191) — the
    // NAND-class rate-¾ point; t = 2 on narrow pages (the 16-bit smoke
    // shape). Keyed on the page width, not the smoke flag, so a
    // `GNR_BENCH_SHAPE` override measures the same operating point
    // whether or not the run is a smoke run.
    let strength = if config.page_width < 64 { 2 } else { 8 };
    let ecc = EccConfig::bch_for_width(config.page_width, strength).expect("codec fits page");
    let codec = ecc.build().expect("codec builds");

    let ber = BerModel {
        read_noise_sigma: 0.40,
        ..BerModel::default()
    };
    let endurance = EnduranceModel::default();
    let retention = RetentionModel::default();
    let bake_temp = Temperature::from_celsius(85.0);

    // Representative P/E cycle → charge moved per cycle, for the
    // synthetic-wear fluence.
    let cycle_report = endurance
        .simulate(&FlashCell::paper_cell(), 1, Voltage::from_volts(1.0))
        .expect("representative cycle");
    let charge_per_cycle = cycle_report.charge_per_cycle;
    let cfc = FlashCell::paper_cell()
        .device()
        .capacitances()
        .cfc()
        .as_farads();

    let wear_offsets = [0.0, 0.12, 0.35];
    let wear_cycles: Vec<f64> = wear_offsets
        .iter()
        .map(|&v| cycles_for_offset(&endurance, cfc, charge_per_cycle, v))
        .collect();
    let year = 3.156e7;
    let retention_seconds = [0.0, year, 10.0 * year];

    // Stats cover the measured fill + sweep only.
    gnr_flash::engine::cache::reset();
    let t0 = std::time::Instant::now();
    let base = fill_array(config);
    let fill_seconds = t0.elapsed().as_secs_f64();
    let truth = ber.noiseless_bits(base.population(), base.batch());
    let all_cells: Vec<usize> = (0..base.population().len()).collect();

    let t1 = std::time::Instant::now();
    let mut grid = Vec::new();
    for (wi, (&offset, &cycles)) in wear_offsets.iter().zip(&wear_cycles).enumerate() {
        for (ri, &bake_s) in retention_seconds.iter().enumerate() {
            let mut corner = base.clone();
            if cycles > 0.0 {
                corner
                    .population_mut()
                    .add_injected_charge(&all_cells, cycles * charge_per_cycle);
            }
            if bake_s > 0.0 {
                retention.bake_population(corner.population_mut(), bake_s, bake_temp);
            }
            let pass = (wi * retention_seconds.len() + ri) as u64;
            let point = scan_array(&corner, &truth, codec.as_ref(), &ber, None, pass)
                .expect("corner scans");
            println!(
                "wear {cycles:>10.0} cycles ({offset:.2} V) × bake {bake_s:>9.2e} s: \
                 RBER {:.3e}, UBER {:.3e}, {} uncorrectable pages, ref {:.3} V",
                point.rber, point.uber, point.decode.uncorrectable_pages, point.reference,
            );
            grid.push(SweepCorner {
                wear_cycles: cycles,
                trap_offset_volts: offset,
                retention_seconds: bake_s,
                point,
            });
        }
    }
    let sweep_seconds = t1.elapsed().as_secs_f64();

    // Determinism: the fresh corner re-scanned at the same pass must be
    // bit-identical (the acceptance criterion of the seeded BER model).
    let rescan = scan_array(&base, &truth, codec.as_ref(), &ber, None, 0).expect("rescan");
    let deterministic = rescan == grid[0].point;
    assert!(deterministic, "fresh-corner scan must be reproducible");

    let fresh = grid[0].point;
    #[allow(clippy::cast_precision_loss)]
    let floor = 1.0 / fresh.coded_bits as f64;
    let fresh_uber_improvement_min = fresh.rber / fresh.uber.max(floor);
    println!(
        "fresh corner: RBER {:.3e} → UBER {:.3e} ({}≥{:.0}× with {})",
        fresh.rber,
        fresh.uber,
        if fresh.uber == 0.0 { "" } else { "=" },
        fresh_uber_improvement_min,
        codec.name(),
    );

    // Telemetry pass: one fully-instrumented smoke-shaped fill + scan —
    // the measured fill/sweep above stay telemetry-off.
    let (_, telemetry) = telemetry_phase(|| {
        let config = NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        };
        let array = fill_array(config);
        let ber = BerModel {
            read_noise_sigma: 0.40,
            ..BerModel::default()
        };
        let ecc = EccConfig::bch_for_width(config.page_width, 2).expect("codec fits page");
        let codec = ecc.build().expect("codec builds");
        let truth = ber.noiseless_bits(array.population(), array.batch());
        scan_array(&array, &truth, codec.as_ref(), &ber, None, 0).expect("telemetry scan")
    });

    let report = SweepReport {
        bench: "reliability_sweep".into(),
        config: format!(
            "{}x{}x{}",
            config.blocks, config.pages_per_block, config.page_width
        ),
        smoke,
        backend: gnr_flash::backend::BackendKind::GnrFloatingGate
            .name()
            .into(),
        cores: rayon::current_num_threads(),
        threads: bench_threads(),
        cells: config.cells(),
        codec: codec.name(),
        code_bits: codec.code_bits(),
        data_bits: codec.data_bits(),
        correctable: codec.correctable(),
        read_noise_sigma: ber.read_noise_sigma,
        seed: ber.seed,
        wear_offsets_volts: wear_offsets.to_vec(),
        wear_cycles,
        retention_seconds: retention_seconds.to_vec(),
        bake_temperature_celsius: 85.0,
        grid,
        fresh_rber: fresh.rber,
        fresh_uber: fresh.uber,
        fresh_uber_improvement_min,
        deterministic,
        fill_seconds,
        sweep_seconds,
        engine_cache: gnr_flash::engine::cache::stats(),
        telemetry,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_reliability_sweep.json"
    );
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_reliability(c: &mut Criterion) {
    measure_reliability_sweep();

    // Criterion timings on a small fixed shape so numbers are
    // comparable across hosts regardless of the env overrides above.
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let array = fill_array(config);
    let ber = BerModel::default();
    let codec = EccConfig::Bch { m: 4, t: 2 }.build().expect("codec");
    let truth = ber.noiseless_bits(array.population(), array.batch());
    let mut group = c.benchmark_group("reliability_sweep");
    group.sample_size(20);
    group.bench_function("scan_array_4x4x16", |b| {
        let mut pass = 0u64;
        b.iter(|| {
            pass += 1;
            scan_array(&array, &truth, codec.as_ref(), &ber, None, pass).expect("scan")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
