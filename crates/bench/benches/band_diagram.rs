//! Benches the Figure 2 band-diagram construction.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::experiments::band_diagram;
use gnr_flash::presets;
use gnr_units::Charge;
use std::hint::black_box;

fn bench_band_diagram(c: &mut Criterion) {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let data = band_diagram::generate(&device, presets::program_vgs(), Charge::ZERO);
    band_diagram::check(&data).expect("fig2 shape");

    c.bench_function("fig2_band_diagram", |b| {
        b.iter(|| band_diagram::generate(black_box(&device), presets::program_vgs(), Charge::ZERO));
    });
}

criterion_group!(benches, bench_band_diagram);
criterion_main!(benches);
