//! Array-level throughput: page programming with ISPP and block erase —
//! the paper's §II point that FN's tiny per-cell current lets "many cells
//! be programmed at a time".

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash_array::nand::{NandArray, NandConfig};
use std::hint::black_box;

fn bench_array(c: &mut Criterion) {
    let config = NandConfig { blocks: 2, pages_per_block: 2, page_width: 16 };

    // Functional check: a page programs and reads back.
    let mut array = NandArray::new(config);
    let pattern: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    array.program_page(0, 0, &pattern).expect("program");
    assert_eq!(array.read_page(0, 0).expect("read"), pattern);

    let mut group = c.benchmark_group("array_throughput");
    group.sample_size(10);
    group.bench_function("program_16_cell_page", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array
        });
    });
    group.bench_function("erase_block", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array.erase_block(0).expect("erase");
            array
        });
    });
    group.bench_function("read_page", |b| {
        let mut array = NandArray::new(config);
        array.program_page(0, 0, &pattern).expect("program");
        b.iter(|| array.read_page(0, 0).expect("read"));
    });
    group.finish();
}

criterion_group!(benches, bench_array);
criterion_main!(benches);
