//! Array-level throughput: page programming with ISPP and block erase —
//! the paper's §II point that FN's tiny per-cell current lets "many cells
//! be programmed at a time".
//!
//! Besides the Criterion timings, this bench measures the batched
//! (rayon fan-out) vs sequential wall-clock on the acceptance-criterion
//! 4×4×16 NAND array and writes `BENCH_array_throughput.json` at the
//! workspace root so the perf trajectory of the batch engine is recorded
//! per run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_shape, bench_threads, cache_stats_json, telemetry_phase, telemetry_snapshot_json,
};
use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::nand::{NandArray, NandConfig};
use std::hint::black_box;

/// Programs every page of a fresh array with a checkerboard; returns the
/// elapsed wall-clock.
fn program_all_pages(config: NandConfig, batch: BatchSimulator) -> Duration {
    let pattern: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut array = NandArray::new(config).with_batch(batch);
    let start = Instant::now();
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            array.program_page(block, page, &pattern).expect("program");
        }
    }
    start.elapsed()
}

/// Erases every (programmed) block; returns the elapsed wall-clock.
fn erase_all_blocks(config: NandConfig, batch: BatchSimulator) -> Duration {
    let pattern: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut array = NandArray::new(config).with_batch(batch);
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            array.program_page(block, page, &pattern).expect("program");
        }
    }
    let start = Instant::now();
    for block in 0..config.blocks {
        array.erase_block(block).expect("erase");
    }
    start.elapsed()
}

fn best_of<F: FnMut() -> Duration>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| f()).min().expect("at least one run")
}

/// Batch-vs-sequential wall-clock on the bench shape (default 4×4×16;
/// `GNR_BENCH_SHAPE=BxPxW` grows it so multi-core hosts exercise a
/// non-trivial array), written to `BENCH_array_throughput.json`.
///
/// Honesty rule: `cores` is always recorded, and the speedup
/// *conclusions* are only drawn on multi-core hosts — a 1-core host
/// cannot measure fan-out, so its "speedup" is noise around 1× and the
/// JSON says so (`speedup_meaningful: false`, speedups `null`) instead
/// of committing a misleading ratio.
fn measure_batch_speedup() {
    let config = bench_shape(NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    });
    let shape = format!(
        "{}x{}x{}",
        config.blocks, config.pages_per_block, config.page_width
    );
    let cores = rayon::current_num_threads();
    let threads = bench_threads();
    let runs = 3;
    // Stats cover the measured program/erase sweeps only.
    gnr_flash::engine::cache::reset();

    let seq_program = best_of(runs, || {
        program_all_pages(config, BatchSimulator::sequential())
    });
    let par_program = best_of(runs, || program_all_pages(config, BatchSimulator::new()));
    let seq_erase = best_of(runs, || {
        erase_all_blocks(config, BatchSimulator::sequential())
    });
    let par_erase = best_of(runs, || erase_all_blocks(config, BatchSimulator::new()));

    let speedup_meaningful = cores > 1;
    let program_speedup = seq_program.as_secs_f64() / par_program.as_secs_f64().max(1e-12);
    let erase_speedup = seq_erase.as_secs_f64() / par_erase.as_secs_f64().max(1e-12);

    if speedup_meaningful {
        println!(
            "batch speedup on {shape} ({cores} cores): page-program {program_speedup:.2}x \
             ({seq_program:?} -> {par_program:?}), block-erase {erase_speedup:.2}x \
             ({seq_erase:?} -> {par_erase:?})",
        );
    } else {
        println!(
            "batch timings on {shape} (1 core — speedups not meaningful): \
             page-program {seq_program:?} seq / {par_program:?} par, \
             block-erase {seq_erase:?} seq / {par_erase:?} par",
        );
    }

    let fmt_speedup = |s: f64| {
        if speedup_meaningful {
            format!("{s:.3}")
        } else {
            "null".to_string()
        }
    };
    // Telemetry pass: one fully-instrumented program sweep on the fixed
    // smoke shape — the measured sweeps above stay telemetry-off.
    let (_, telemetry) = telemetry_phase(|| {
        program_all_pages(
            NandConfig {
                blocks: 4,
                pages_per_block: 4,
                page_width: 16,
            },
            BatchSimulator::new(),
        )
    });

    let json = format!(
        "{{\n  \"bench\": \"array_throughput\",\n  \"config\": \"{shape}\",\n  \
         \"backend\": \"gnr-floating-gate\",\n  \
         \"cores\": {cores},\n  \"threads\": {threads},\n  \
         \"speedup_meaningful\": {speedup_meaningful},\n  \
         \"sequential_program_ms\": {:.3},\n  \
         \"parallel_program_ms\": {:.3},\n  \"program_speedup\": {},\n  \
         \"sequential_erase_ms\": {:.3},\n  \"parallel_erase_ms\": {:.3},\n  \
         \"erase_speedup\": {},\n  \"engine_cache\": {},\n  \"telemetry\": {}\n}}\n",
        seq_program.as_secs_f64() * 1e3,
        par_program.as_secs_f64() * 1e3,
        fmt_speedup(program_speedup),
        seq_erase.as_secs_f64() * 1e3,
        par_erase.as_secs_f64() * 1e3,
        fmt_speedup(erase_speedup),
        cache_stats_json(),
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_array_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_array(c: &mut Criterion) {
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 2,
        page_width: 16,
    };

    // Functional check: a page programs and reads back.
    let mut array = NandArray::new(config);
    let pattern: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    array.program_page(0, 0, &pattern).expect("program");
    assert_eq!(array.read_page(0, 0).expect("read"), pattern);

    measure_batch_speedup();

    let mut group = c.benchmark_group("array_throughput");
    group.sample_size(10);
    group.bench_function("program_16_cell_page", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array
        });
    });
    group.bench_function("program_16_cell_page_sequential", |b| {
        b.iter(|| {
            let mut array =
                NandArray::new(black_box(config)).with_batch(BatchSimulator::sequential());
            array.program_page(0, 0, &pattern).expect("program");
            array
        });
    });
    group.bench_function("erase_block", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array.erase_block(0).expect("erase");
            array
        });
    });
    group.bench_function("read_page", |b| {
        let mut array = NandArray::new(config);
        array.program_page(0, 0, &pattern).expect("program");
        b.iter(|| array.read_page(0, 0).expect("read"));
    });
    group.finish();
}

criterion_group!(benches, bench_array);
criterion_main!(benches);
