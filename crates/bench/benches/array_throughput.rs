//! Array-level throughput: page programming with ISPP and block erase —
//! the paper's §II point that FN's tiny per-cell current lets "many cells
//! be programmed at a time".
//!
//! Besides the Criterion timings, this bench measures the batched
//! (rayon fan-out) vs sequential wall-clock on the acceptance-criterion
//! 4×4×16 NAND array and writes `BENCH_array_throughput.json` at the
//! workspace root so the perf trajectory of the batch engine is recorded
//! per run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::nand::{NandArray, NandConfig};
use std::hint::black_box;

/// Programs every page of a fresh array with a checkerboard; returns the
/// elapsed wall-clock.
fn program_all_pages(config: NandConfig, batch: BatchSimulator) -> Duration {
    let pattern: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut array = NandArray::new(config).with_batch(batch);
    let start = Instant::now();
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            array.program_page(block, page, &pattern).expect("program");
        }
    }
    start.elapsed()
}

/// Erases every (programmed) block; returns the elapsed wall-clock.
fn erase_all_blocks(config: NandConfig, batch: BatchSimulator) -> Duration {
    let pattern: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut array = NandArray::new(config).with_batch(batch);
    for block in 0..config.blocks {
        for page in 0..config.pages_per_block {
            array.program_page(block, page, &pattern).expect("program");
        }
    }
    let start = Instant::now();
    for block in 0..config.blocks {
        array.erase_block(block).expect("erase");
    }
    start.elapsed()
}

fn best_of<F: FnMut() -> Duration>(runs: usize, mut f: F) -> Duration {
    (0..runs).map(|_| f()).min().expect("at least one run")
}

/// Batch-vs-sequential speedup on the 4×4×16 acceptance config, written
/// to `BENCH_array_throughput.json`.
fn measure_batch_speedup() {
    let config = NandConfig {
        blocks: 4,
        pages_per_block: 4,
        page_width: 16,
    };
    let runs = 3;

    let seq_program = best_of(runs, || {
        program_all_pages(config, BatchSimulator::sequential())
    });
    let par_program = best_of(runs, || program_all_pages(config, BatchSimulator::new()));
    let seq_erase = best_of(runs, || {
        erase_all_blocks(config, BatchSimulator::sequential())
    });
    let par_erase = best_of(runs, || erase_all_blocks(config, BatchSimulator::new()));

    let program_speedup = seq_program.as_secs_f64() / par_program.as_secs_f64().max(1e-12);
    let erase_speedup = seq_erase.as_secs_f64() / par_erase.as_secs_f64().max(1e-12);

    println!(
        "batch speedup on 4x4x16 ({} cores): page-program {:.2}x ({:?} -> {:?}), \
         block-erase {:.2}x ({:?} -> {:?})",
        rayon::current_num_threads(),
        program_speedup,
        seq_program,
        par_program,
        erase_speedup,
        seq_erase,
        par_erase,
    );

    let json = format!(
        "{{\n  \"bench\": \"array_throughput\",\n  \"config\": \"4x4x16\",\n  \
         \"cores\": {},\n  \"sequential_program_ms\": {:.3},\n  \
         \"parallel_program_ms\": {:.3},\n  \"program_speedup\": {:.3},\n  \
         \"sequential_erase_ms\": {:.3},\n  \"parallel_erase_ms\": {:.3},\n  \
         \"erase_speedup\": {:.3}\n}}\n",
        rayon::current_num_threads(),
        seq_program.as_secs_f64() * 1e3,
        par_program.as_secs_f64() * 1e3,
        program_speedup,
        seq_erase.as_secs_f64() * 1e3,
        par_erase.as_secs_f64() * 1e3,
        erase_speedup,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_array_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_array(c: &mut Criterion) {
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 2,
        page_width: 16,
    };

    // Functional check: a page programs and reads back.
    let mut array = NandArray::new(config);
    let pattern: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    array.program_page(0, 0, &pattern).expect("program");
    assert_eq!(array.read_page(0, 0).expect("read"), pattern);

    measure_batch_speedup();

    let mut group = c.benchmark_group("array_throughput");
    group.sample_size(10);
    group.bench_function("program_16_cell_page", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array
        });
    });
    group.bench_function("program_16_cell_page_sequential", |b| {
        b.iter(|| {
            let mut array =
                NandArray::new(black_box(config)).with_batch(BatchSimulator::sequential());
            array.program_page(0, 0, &pattern).expect("program");
            array
        });
    });
    group.bench_function("erase_block", |b| {
        b.iter(|| {
            let mut array = NandArray::new(black_box(config));
            array.program_page(0, 0, &pattern).expect("program");
            array.erase_block(0).expect("erase");
            array
        });
    });
    group.bench_function("read_page", |b| {
        let mut array = NandArray::new(config);
        array.program_page(0, 0, &pattern).expect("program");
        b.iter(|| array.read_page(0, 0).expect("read"));
    });
    group.finish();
}

criterion_group!(benches, bench_array);
criterion_main!(benches);
