//! Benches the Figure 8 sweep: erase JFN vs negative VGS over four GCR
//! values.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::experiments::fig8;

fn bench_fig8(c: &mut Criterion) {
    let fig = fig8::generate().expect("fig8");
    fig8::check(&fig).expect("fig8 shape");

    c.bench_function("fig8_erase_gcr_sweep", |b| {
        b.iter(|| fig8::generate().expect("fig8"));
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
