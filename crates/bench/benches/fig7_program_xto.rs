//! Benches the Figure 7 sweep: program JFN vs VGS over five oxide
//! thicknesses.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::experiments::fig7;

fn bench_fig7(c: &mut Criterion) {
    let fig = fig7::generate().expect("fig7");
    fig7::check(&fig).expect("fig7 shape");

    c.bench_function("fig7_program_xto_sweep", |b| {
        b.iter(|| fig7::generate().expect("fig7"));
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
