//! Tunneling-model ablation: analytic FN (the paper's eq. 4) vs the
//! image-force-corrected FN vs numeric WKB transmission, over the Figure 6
//! field grid.
//!
//! Checks before timing: (1) the numeric WKB exponent matches the analytic
//! `−B/E` within 0.1 %; (2) the image-force correction only *increases*
//! the current; (3) the paper-form prefactor differs from Lenzlinger–Snow
//! by exactly `m₀/m_ox`.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::device::FloatingGateTransistor;
use gnr_tunneling::fn_model::FnCoefficients;
use gnr_tunneling::nordheim::ImageForceFnModel;
use gnr_tunneling::tsu_esaki::TsuEsakiModel;
use gnr_tunneling::wkb::BarrierProfile;
use gnr_tunneling::TunnelingModel;
use gnr_units::{ElectricField, Energy, Length, Mass};
use std::hint::black_box;

fn fields() -> Vec<ElectricField> {
    (0..46)
        .map(|i| ElectricField::from_volts_per_meter(9.6e8 + 2.5e7 * f64::from(i)))
        .collect()
}

fn bench_models(c: &mut Criterion) {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let fn_model = *device.channel_emission_model();
    let barrier = fn_model.barrier();
    let mass = fn_model.effective_mass();
    let image = ImageForceFnModel::new(fn_model, 3.9);
    let grid = fields();

    // Check 1: WKB exponent vs analytic B.
    let e_test = ElectricField::from_volts_per_meter(1.8e9);
    let profile = BarrierProfile::ideal(barrier, Length::from_nanometers(5.0), e_test);
    let wkb_exp = profile.fermi_level_exponent(mass);
    let analytic = -fn_model.coefficients().b / e_test.as_volts_per_meter();
    assert!(
        ((wkb_exp - analytic) / analytic).abs() < 1e-3,
        "wkb {wkb_exp} vs analytic {analytic}"
    );
    // Check 2: image force only increases the current.
    for &e in &grid {
        let j0 = fn_model.current_density(e).as_amps_per_square_meter();
        let j1 = TunnelingModel::current_density(&image, e).as_amps_per_square_meter();
        assert!(j1 >= j0);
    }
    // Check 3: the paper-form prefactor.
    let full = FnCoefficients::lenzlinger_snow(barrier, mass);
    let paper = FnCoefficients::paper_form(barrier, mass);
    let ratio = full.a / paper.a * mass.as_electron_masses();
    assert!((ratio - 1.0).abs() < 1e-9);
    // Check 4: the first-principles supply-function current lands within
    // an order of magnitude of the analytic law at the program point.
    let tsu = TsuEsakiModel::free_emitter(barrier, Length::from_nanometers(5.0), mass);
    let j_tsu = tsu.current_density(e_test).as_amps_per_square_meter();
    let j_fn = fn_model.current_density(e_test).as_amps_per_square_meter();
    let r = j_tsu / j_fn;
    assert!((0.05..20.0).contains(&r), "Tsu-Esaki/FN ratio {r}");

    let mut group = c.benchmark_group("ablation_models");
    group.bench_function("analytic_fn", |b| {
        b.iter(|| {
            grid.iter()
                .map(|&e| {
                    fn_model
                        .current_density(black_box(e))
                        .as_amps_per_square_meter()
                })
                .sum::<f64>()
        });
    });
    group.bench_function("image_force_fn", |b| {
        b.iter(|| {
            grid.iter()
                .map(|&e| {
                    TunnelingModel::current_density(&image, black_box(e)).as_amps_per_square_meter()
                })
                .sum::<f64>()
        });
    });
    group.bench_function("tsu_esaki_supply_integral", |b| {
        b.iter(|| {
            tsu.current_density(black_box(e_test))
                .as_amps_per_square_meter()
        });
    });
    group.bench_function("numeric_wkb_transmission", |b| {
        b.iter(|| {
            grid.iter()
                .map(|&e| {
                    BarrierProfile::ideal(barrier, Length::from_nanometers(5.0), black_box(e))
                        .transmission(Energy::from_ev(0.0), mass)
                })
                .sum::<f64>()
        });
    });
    group.finish();

    let _ = Mass::from_electron_masses(0.42);
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
