//! Solver ablation: adaptive Dormand–Prince 5(4) vs fixed-step RK4 vs
//! forward Euler on the Figure 5 programming transient.
//!
//! The transient spans ~10 decades of time; the ablation quantifies the
//! cost of fixed-step integration at matched accuracy over the early
//! window (fixed-step methods cannot reach saturation at all within any
//! reasonable step budget — reported here as the accuracy gap at equal
//! RHS-evaluation budgets).

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::device::FloatingGateTransistor;
use gnr_numerics::ode::{Dopri45, ExplicitEuler, OdeOptions, Rk4, Sdirk2};
use gnr_units::{Charge, Voltage};
use std::hint::black_box;

/// The charge-balance RHS over the early 10 µs window (state in volts).
fn make_rhs(device: &FloatingGateTransistor) -> impl Fn(f64, &[f64], &mut [f64]) + '_ {
    let ct = device.capacitances().total().as_farads();
    move |_t: f64, y: &[f64], dydt: &mut [f64]| {
        let q = Charge::from_coulombs(y[0] * ct);
        let state = device.tunneling_state(Voltage::from_volts(15.0), Voltage::ZERO, q);
        dydt[0] = state.charge_rate_amps / ct;
    }
}

const WINDOW_S: f64 = 1.0e-5;

fn bench_solvers(c: &mut Criterion) {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();

    // Accuracy cross-check before timing: all three agree at the end of
    // the early window when given enough budget.
    let reference = Dopri45::new(OdeOptions::with_tolerances(1e-12, 1e-14))
        .integrate(make_rhs(&device), 0.0, &[0.0], WINDOW_S)
        .expect("reference")
        .final_state()[0];
    let rk4 = Rk4::new(20_000)
        .integrate(make_rhs(&device), 0.0, &[0.0], WINDOW_S)
        .expect("rk4")
        .final_state()[0];
    let euler = ExplicitEuler::new(200_000)
        .integrate(make_rhs(&device), 0.0, &[0.0], WINDOW_S)
        .expect("euler")
        .final_state()[0];
    let sdirk = Sdirk2::new(2_000)
        .integrate(make_rhs(&device), 0.0, &[0.0], WINDOW_S)
        .expect("sdirk2")
        .final_state()[0];
    assert!(
        (rk4 - reference).abs() < 1e-6,
        "rk4 = {rk4}, ref = {reference}"
    );
    assert!(
        (euler - reference).abs() < 1e-3,
        "euler = {euler}, ref = {reference}"
    );
    assert!(
        (sdirk - reference).abs() < 1e-4,
        "sdirk = {sdirk}, ref = {reference}"
    );

    let mut group = c.benchmark_group("ablation_solvers");
    group.sample_size(10);
    group.bench_function("dopri45_adaptive", |b| {
        b.iter(|| {
            Dopri45::new(OdeOptions::with_tolerances(1e-8, 1e-10))
                .integrate(make_rhs(black_box(&device)), 0.0, &[0.0], WINDOW_S)
                .expect("dopri45")
        });
    });
    group.bench_function("rk4_fixed_20k", |b| {
        b.iter(|| {
            Rk4::new(20_000)
                .integrate(make_rhs(black_box(&device)), 0.0, &[0.0], WINDOW_S)
                .expect("rk4")
        });
    });
    group.bench_function("euler_fixed_200k", |b| {
        b.iter(|| {
            ExplicitEuler::new(200_000)
                .integrate(make_rhs(black_box(&device)), 0.0, &[0.0], WINDOW_S)
                .expect("euler")
        });
    });
    group.bench_function("sdirk2_implicit_2k", |b| {
        b.iter(|| {
            Sdirk2::new(2_000)
                .integrate(make_rhs(black_box(&device)), 0.0, &[0.0], WINDOW_S)
                .expect("sdirk2")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
