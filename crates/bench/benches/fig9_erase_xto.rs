//! Benches the Figure 9 sweep: erase JFN vs negative VGS over five oxide
//! thicknesses.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_flash::experiments::fig9;

fn bench_fig9(c: &mut Criterion) {
    let fig = fig9::generate().expect("fig9");
    fig9::check(&fig).expect("fig9 shape");

    c.bench_function("fig9_erase_xto_sweep", |b| {
        b.iter(|| fig9::generate().expect("fig9"));
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
