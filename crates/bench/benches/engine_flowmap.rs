//! Flow-map engine bench: the per-(variant, pulse) master-trajectory
//! cache vs per-group exact integration, on the workloads the committed
//! baselines pinned.
//!
//! Three records land in `BENCH_engine_flowmap.json`:
//!
//! * **GC-churn replay** — the `workload_replay` churn phase (the
//!   130.7 s / 5 040-write committed baseline) run twice on the same
//!   shape: once with `EngineMode::Exact` (the historical path) and
//!   once with `EngineMode::FlowMap` (the default). The speedup is the
//!   tentpole acceptance number (target ≥5×).
//! * **Scheduler ops/s** — the `pe_scheduler` write/rewrite/read trace
//!   through the multi-plane controller in both modes (committed
//!   baseline 6 503 ops/s; target ≥3×).
//! * **Parity** — a fixed grid of `(initial charge, pulse)` queries
//!   answered by both modes; the max relative final-charge error is
//!   **asserted** ≤1e-6 on every run (CI smoke included), and an FNV
//!   digest over the flow-map answers is recorded so drift in the
//!   interpolation shows up as a diff. The churn replay additionally
//!   asserts the sequential and parallel fast paths land on the same
//!   array-state digest (flow-map determinism end to end).
//!
//! A fourth record is the **thread matrix**: the flow-map churn re-run
//! under 1/2/4/8-worker pools (deliberately not clamped to the host —
//! OS threads oversubscribe, so the digest assert exercises real
//! multi-threaded interleaving even on a 1-core builder), each entry
//! asserting the same array-state digest — the contention-free cache
//! claim, measured rather than assumed.
//!
//! Environment: `GNR_BENCH_SHAPE=BxPxW` overrides the churn shape (in
//! smoke runs too); `GNR_BENCH_SMOKE=1` shrinks everything to CI size;
//! `GNR_BENCH_THREADS=N` sizes the global pool for the main records
//! (the matrix installs its own pools either way).

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_bench::{
    bench_config, bench_threads, cache_stats_snapshot_json, scheduler_trace, telemetry_phase,
    telemetry_snapshot_json, write_amplification, SCHEDULER_FULL_SHAPE, SCHEDULER_SMOKE_SHAPE,
};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::{BatchSimulator, ChargeBalanceEngine, EngineMode};
use gnr_flash::transient::ProgramPulseSpec;
use gnr_flash_array::controller::FlashController;
use gnr_flash_array::margins::state_digest;
use gnr_flash_array::nand::{NandArray, NandConfig};
use gnr_flash_array::workload::{replay, ReplayOptions, WorkloadTrace};
use gnr_units::{Charge, Time, Voltage};

/// The committed `BENCH_workload_replay.json` churn baseline this bench
/// is accepted against (64×64×256, 5 040 churn writes, exact engine).
const BASELINE_CHURN_SECONDS: f64 = 130.734;
/// The committed `BENCH_pe_scheduler.json` multi-plane baseline
/// (16×16×64, 600 ops, exact engine).
const BASELINE_SCHEDULER_OPS_PER_SECOND: f64 = 6503.0;

struct ChurnNumbers {
    writes: u64,
    gc_relocations: u64,
    seconds: f64,
    digest: u64,
}

/// Full-array cycle (setup) followed by the GC-churn burst, mirroring
/// the `workload_replay` bench exactly, on one engine mode.
fn run_churn(config: NandConfig, smoke: bool, batch: BatchSimulator) -> ChurnNumbers {
    let options = ReplayOptions {
        snapshot_interval: 0,
        margin_scan: false,
    };
    let mut controller = FlashController::over(NandArray::new(config).with_batch(batch));
    replay(
        &mut controller,
        &WorkloadTrace::full_array_cycle(config),
        &options,
    )
    .expect("full-array cycle replays");
    let capacity = controller.logical_capacity();
    let churn_ops = if smoke {
        8
    } else {
        (capacity / 4).clamp(8, 2048)
    };
    let churn = replay(
        &mut controller,
        &WorkloadTrace::gc_churn(churn_ops, capacity, 0xbead),
        &options,
    )
    .expect("gc churn replays");
    let wear = &churn.snapshots.last().expect("terminal snapshot").wear;
    ChurnNumbers {
        writes: churn.writes,
        gc_relocations: wear.gc_relocations,
        seconds: churn.wall_seconds,
        digest: state_digest(controller.array()),
    }
}

/// The `pe_scheduler` write/rewrite/read trace (shared via
/// [`gnr_bench::scheduler_trace`], so this bench can never drift from
/// the workload behind its committed baseline), replayed through the
/// multi-plane controller in one engine mode; returns ops/s.
fn run_scheduler(config: NandConfig, planes: usize, mode: EngineMode) -> f64 {
    let trace: WorkloadTrace = scheduler_trace(config.logical_pages());
    let options = ReplayOptions {
        snapshot_interval: 0,
        margin_scan: false,
    };
    let mut controller = FlashController::over(
        NandArray::new(config).with_batch(BatchSimulator::new().with_mode(mode)),
    )
    .with_planes(planes);
    let report = replay(&mut controller, &trace, &options).expect("scheduler trace replays");
    #[allow(clippy::cast_precision_loss)]
    let ops_per_second = trace.ops.len() as f64 / report.wall_seconds.max(1e-12);
    ops_per_second
}

struct ParityNumbers {
    queries: usize,
    max_rel_err: f64,
    digest: u64,
}

/// Fixed `(initial charge, pulse)` grid answered by the flow map and by
/// a *converged* exact integration (rtol 1e-12 — the engine's default
/// 1e-8 tolerance itself drifts ~2.5e-6 on shrinking charges, so the
/// parity bar must be measured against the true solution); asserts the
/// ≤1e-6 bar and digests the flow-map answers.
fn measure_parity() -> ParityNumbers {
    let device = FloatingGateTransistor::mlgnr_cnt_paper();
    let fast = ChargeBalanceEngine::new(&device);
    let exact = ChargeBalanceEngine::new(&device)
        .with_mode(EngineMode::Exact)
        .with_ode_options(gnr_numerics::ode::OdeOptions::with_tolerances(
            1.0e-12, 1.0e-14,
        ));
    let cfc = device.capacitances().cfc().as_farads();

    let mut digest: u64 = gnr_numerics::hash::FNV1A_OFFSET;
    let mut fold = |v: f64| {
        digest = gnr_numerics::hash::fnv1a_fold_f64(digest, v);
    };
    let mut queries = 0usize;
    let mut max_rel_err = 0.0f64;
    for vgs in [13.0, 14.5, 16.0, -15.0, 11.0] {
        let map =
            gnr_flash::engine::flowmap::cached(&fast, Voltage::from_volts(vgs), Voltage::ZERO);
        for vt0 in [-0.5, 0.0, 1.0, 2.5, 4.0] {
            for dt_us in [1.0, 10.0, 100.0] {
                let q0 = -vt0 * cfc;
                let dt = dt_us * 1.0e-6;
                // Only corners the map actually answers belong in the
                // interpolation-parity gate; a declined corner would be
                // answered by a default-tolerance fallback integration,
                // whose own ~2e-6 drift against the 1e-12 reference is
                // not flow-map error (the fallback's bit-equality with
                // exact mode is pinned by tests/engine_flowmap.rs).
                let Some(qf) = map.final_charge(q0, dt) else {
                    continue;
                };
                let spec = ProgramPulseSpec::program(Voltage::from_volts(vgs))
                    .with_initial_charge(Charge::from_coulombs(q0))
                    .with_duration(Time::from_seconds(dt));
                let qe = match (
                    fast.pulse_final_charge(&spec),
                    exact.pulse_final_charge(&spec),
                ) {
                    (Ok(f), Ok(e)) => {
                        assert_eq!(
                            f.as_coulombs(),
                            qf,
                            "engine hit path must return the map's answer verbatim"
                        );
                        e.as_coulombs()
                    }
                    // Both modes rejecting (the cell's own charging
                    // rate under the NoTunneling floor, even though the
                    // map's span tunnels) is consistent — skip.
                    (Err(_), Err(_)) => continue,
                    // One mode answering while the other rejects is a
                    // NoTunneling-contract divergence, exactly what
                    // this gate exists to catch.
                    (fast, exact) => panic!(
                        "modes disagree at vgs {vgs} V, vt0 {vt0} V, dt {dt_us} µs: \
                         flow map {fast:?} vs exact {exact:?}"
                    ),
                };
                let rel = ((qf - qe) / qe.abs().max(1e-30)).abs();
                assert!(
                    rel <= 1.0e-6,
                    "flow-map parity broken at vgs {vgs} V, vt0 {vt0} V, dt {dt_us} µs: \
                     rel err {rel:e}"
                );
                max_rel_err = max_rel_err.max(rel);
                fold(qf);
                queries += 1;
            }
        }
    }
    ParityNumbers {
        queries,
        max_rel_err,
        digest,
    }
}

#[allow(clippy::too_many_lines)]
fn measure_engine_flowmap() {
    let (config, smoke) = bench_config(
        NandConfig {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        },
        NandConfig {
            blocks: 64,
            pages_per_block: 64,
            page_width: 256,
        },
    );

    let parity = measure_parity();
    println!(
        "flow-map parity: {} queries, max rel err {:.3e} (bar 1e-6), digest {:#018x}",
        parity.queries, parity.max_rel_err, parity.digest
    );

    // Churn: the measured flow-map run goes FIRST — minutes of
    // exact-mode churn beforehand contaminate whatever follows (host
    // thermal state, allocator arenas) by several seconds, which a
    // fresh-process control run does not show. Then the fast path again
    // sequentially (digest determinism assert) and the exact baseline
    // last, where the same contamination is percent-level noise.
    //
    // The committed `engine_cache` record covers the measured flow-map
    // churn only — not the parity grid, the exact baseline, or the
    // later scheduler phase — so per-operation probe scale is readable
    // straight off the JSON.
    gnr_flash::engine::cache::reset();
    let flow = run_churn(config, smoke, BatchSimulator::new());
    let churn_cache_stats = gnr_flash::engine::cache::stats();
    let flow_sequential = run_churn(
        config,
        smoke,
        BatchSimulator::sequential().with_mode(EngineMode::FlowMap),
    );
    let exact = run_churn(
        config,
        smoke,
        BatchSimulator::new().with_mode(EngineMode::Exact),
    );
    assert_eq!(
        flow.digest, flow_sequential.digest,
        "parallel and sequential fast paths must land on the same array state"
    );
    let churn_speedup = exact.seconds / flow.seconds.max(1e-12);
    println!(
        "churn {}x{}x{}: {} writes, {} GC relocations — exact {:.2} s, flow map {:.2} s \
         ({:.1}x), fast-path digest {:#018x}",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        flow.writes,
        flow.gc_relocations,
        exact.seconds,
        flow.seconds,
        churn_speedup,
        flow.digest,
    );

    // Scheduler ops/s on the pe_scheduler shape (shared constants).
    let sched_config = if smoke {
        SCHEDULER_SMOKE_SHAPE
    } else {
        SCHEDULER_FULL_SHAPE
    };
    let planes = sched_config.blocks.min(4);
    let sched_exact = run_scheduler(sched_config, planes, EngineMode::Exact);
    let sched_flow = run_scheduler(sched_config, planes, EngineMode::FlowMap);
    let sched_speedup = sched_flow / sched_exact.max(1e-12);
    println!(
        "scheduler {}x{}x{} ({planes} planes): exact {sched_exact:.0} ops/s, \
         flow map {sched_flow:.0} ops/s ({sched_speedup:.1}x)",
        sched_config.blocks, sched_config.pages_per_block, sched_config.page_width,
    );

    // Thread matrix: the flow-map churn under explicit 1/2/4/8-worker
    // pools. Worker counts beyond the core count still run (OS threads
    // oversubscribe; the recorded `cores` field says how to read the
    // timings) because the digest-equality assert needs real
    // multi-threaded interleaving even on a 1-core host — worker count
    // may move wall clock, never state. That is the contention-free
    // cache claim, measured rather than assumed.
    let mut matrix = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("matrix pool builds");
        let run = pool.install(|| run_churn(config, smoke, BatchSimulator::new()));
        assert_eq!(
            run.digest, flow.digest,
            "churn digest must be invariant under a {workers}-worker pool"
        );
        println!(
            "churn thread matrix: {workers} worker(s) — {:.2} s, digest {:#018x}",
            run.seconds, run.digest
        );
        matrix.push((workers, run.seconds));
    }
    let matrix_json = matrix
        .iter()
        .map(|(workers, seconds)| format!("{{\"threads\": {workers}, \"seconds\": {seconds:.3}}}"))
        .collect::<Vec<_>>()
        .join(", ");

    // Telemetry pass: a short fully-instrumented churn *after* the
    // measured phases (which run at ambient — i.e. normally disabled —
    // telemetry, keeping the timings comparable to the committed
    // baselines). Always smoke-shaped: the snapshot documents coverage,
    // not scale.
    let (_, telemetry) = telemetry_phase(|| {
        run_churn(
            NandConfig {
                blocks: 4,
                pages_per_block: 4,
                page_width: 16,
            },
            true,
            BatchSimulator::new(),
        )
    });
    for zone in [
        "replay.segment",
        "ftl.write_batch",
        "scheduler.execute",
        "population.group",
        "engine.pulse_batch",
    ] {
        let z = telemetry
            .zone(zone)
            .unwrap_or_else(|| panic!("telemetry churn must profile zone `{zone}`"));
        assert!(z.calls > 0, "zone `{zone}` must record calls");
    }
    for z in &telemetry.zones {
        println!(
            "telemetry zone {}: {} calls, total {:.3} ms, self {:.3} ms",
            z.name,
            z.calls,
            z.total_ns as f64 / 1.0e6,
            z.self_ns as f64 / 1.0e6
        );
    }
    let telemetry_write_amp = write_amplification(&telemetry);
    println!(
        "telemetry churn: {} events journaled, write amplification {telemetry_write_amp:.3}",
        telemetry.journal.recorded
    );

    let json = format!(
        "{{\n  \"bench\": \"engine_flowmap\",\n  \"config\": \"{}x{}x{}\",\n  \
         \"smoke\": {},\n  \"backend\": \"gnr-floating-gate\",\n  \"cores\": {},\n  \"threads\": {},\n  \
         \"parity_queries\": {},\n  \"parity_max_rel_err\": {:.3e},\n  \
         \"parity_digest\": \"{:#018x}\",\n  \
         \"churn_writes\": {},\n  \"churn_gc_relocations\": {},\n  \
         \"churn_exact_seconds\": {:.3},\n  \"churn_flowmap_seconds\": {:.3},\n  \
         \"churn_speedup\": {:.2},\n  \
         \"committed_baseline_churn_seconds\": {BASELINE_CHURN_SECONDS},\n  \
         \"churn_state_digest\": \"{:#018x}\",\n  \
         \"churn_thread_matrix\": [{}],\n  \
         \"scheduler_config\": \"{}x{}x{}\",\n  \"scheduler_planes\": {},\n  \
         \"scheduler_exact_ops_per_second\": {:.1},\n  \
         \"scheduler_flowmap_ops_per_second\": {:.1},\n  \
         \"scheduler_speedup\": {:.2},\n  \
         \"committed_baseline_scheduler_ops_per_second\": \
         {BASELINE_SCHEDULER_OPS_PER_SECOND},\n  \
         \"engine_cache\": {},\n  \
         \"telemetry_write_amplification\": {telemetry_write_amp:.3},\n  \
         \"telemetry\": {}\n}}\n",
        config.blocks,
        config.pages_per_block,
        config.page_width,
        smoke,
        rayon::current_num_threads(),
        bench_threads(),
        parity.queries,
        parity.max_rel_err,
        parity.digest,
        flow.writes,
        flow.gc_relocations,
        exact.seconds,
        flow.seconds,
        churn_speedup,
        flow.digest,
        matrix_json,
        sched_config.blocks,
        sched_config.pages_per_block,
        sched_config.page_width,
        planes,
        sched_exact,
        sched_flow,
        sched_speedup,
        cache_stats_snapshot_json(&churn_cache_stats),
        telemetry_snapshot_json(&telemetry),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine_flowmap.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_engine_flowmap(c: &mut Criterion) {
    measure_engine_flowmap();

    // Criterion timing on a small fixed shape: one page program per
    // mode, so the per-op flow-map vs exact gap is tracked per run.
    let config = NandConfig {
        blocks: 2,
        pages_per_block: 2,
        page_width: 16,
    };
    let bits: Vec<bool> = (0..config.page_width).map(|i| i % 2 == 0).collect();
    let mut group = c.benchmark_group("engine_flowmap");
    group.sample_size(10);
    for (label, mode) in [
        ("program_page_flowmap", EngineMode::FlowMap),
        ("program_page_exact", EngineMode::Exact),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut array =
                    NandArray::new(config).with_batch(BatchSimulator::new().with_mode(mode));
                array.program_page(0, 0, &bits).expect("program");
                array
            });
        });
    }
    // Telemetry overhead guard: the same instrumented page program with
    // the registry/journal/zones off vs fully on, so the disabled-path
    // cost (one relaxed load + branch per site) is tracked per run —
    // the ≤2% churn budget is pinned against the committed baseline by
    // the full-run JSON above; this pair keeps the per-op gap visible.
    let ambient_enabled = gnr_flash::telemetry::enabled();
    let ambient_profiling = gnr_flash::telemetry::profiling_enabled();
    for (label, on) in [
        ("program_page_telemetry_off", false),
        ("program_page_telemetry_on", true),
    ] {
        group.bench_function(label, |b| {
            gnr_flash::telemetry::set_enabled(on);
            gnr_flash::telemetry::set_profiling(on);
            b.iter(|| {
                let mut array = NandArray::new(config)
                    .with_batch(BatchSimulator::new().with_mode(EngineMode::FlowMap));
                array.program_page(0, 0, &bits).expect("program");
                array
            });
        });
    }
    gnr_flash::telemetry::set_enabled(ambient_enabled);
    gnr_flash::telemetry::set_profiling(ambient_profiling);
    group.finish();
}

criterion_group!(benches, bench_engine_flowmap);
criterion_main!(benches);
