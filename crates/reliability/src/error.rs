//! Error type for the reliability layer.

use core::fmt;

/// Errors produced by the reliability pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReliabilityError {
    /// An array-layer operation failed underneath the pipeline.
    Array(gnr_flash_array::ArrayError),
    /// A codec was configured with unusable parameters.
    InvalidCode {
        /// What was wrong.
        reason: String,
    },
    /// A buffer did not match the codec's expected length.
    WrongLength {
        /// What the buffer was for.
        what: &'static str,
        /// Provided length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// The codec does not fit the array's page width.
    CodeTooWide {
        /// Codeword length.
        code_bits: usize,
        /// Page width.
        page_width: usize,
    },
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Array(e) => write!(f, "array error: {e}"),
            Self::InvalidCode { reason } => write!(f, "invalid code: {reason}"),
            Self::WrongLength {
                what,
                got,
                expected,
            } => write!(f, "{what} has {got} bits, codec expects {expected}"),
            Self::CodeTooWide {
                code_bits,
                page_width,
            } => write!(
                f,
                "codeword of {code_bits} bits does not fit a {page_width}-bit page"
            ),
        }
    }
}

impl std::error::Error for ReliabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gnr_flash_array::ArrayError> for ReliabilityError {
    fn from(e: gnr_flash_array::ArrayError) -> Self {
        Self::Array(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ReliabilityError::CodeTooWide {
            code_bits: 255,
            page_width: 128,
        };
        assert!(e.to_string().contains("255"));
        let e = ReliabilityError::WrongLength {
            what: "codeword",
            got: 3,
            expected: 15,
        };
        assert!(e.to_string().contains("codeword"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReliabilityError>();
    }
}
