//! GF(2^m) arithmetic via exp/log tables — the field under the BCH
//! codec.
//!
//! Elements are represented as `u16` bit-vectors over the polynomial
//! basis; multiplication goes through discrete-log tables built once per
//! field from a fixed primitive polynomial, so codec hot paths (syndrome
//! evaluation, Chien search) are two lookups and an add.

use crate::{ReliabilityError, Result};

/// Primitive polynomials over GF(2), one per supported `m` (3..=12),
/// written with the `x^m` term included (e.g. `m = 4` → `x⁴ + x + 1` =
/// `0b1_0011`). Standard choices from Lin & Costello's tables.
const PRIMITIVE_POLYS: [(u32, u32); 10] = [
    (3, 0b1011),
    (4, 0b1_0011),
    (5, 0b10_0101),
    (6, 0b100_0011),
    (7, 0b1000_1001),
    (8, 0b1_0001_1101),
    (9, 0b10_0001_0001),
    (10, 0b100_0000_1001),
    (11, 0b1000_0000_0101),
    (12, 0b1_0000_0101_0011),
];

/// A finite field GF(2^m) with precomputed exp/log tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2m {
    m: u32,
    /// Multiplicative-group order, `2^m − 1`.
    order: usize,
    /// `exp[i] = α^i`, doubled so products index without a mod.
    exp: Vec<u16>,
    /// `log[x] = i` with `α^i = x`; `log[0]` is unused.
    log: Vec<u16>,
}

impl Gf2m {
    /// Builds the field tables for `GF(2^m)`.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] for `m` outside 3..=12.
    pub fn new(m: u32) -> Result<Self> {
        let &(_, poly) = PRIMITIVE_POLYS
            .iter()
            .find(|&&(mm, _)| mm == m)
            .ok_or_else(|| ReliabilityError::InvalidCode {
                reason: format!("GF(2^{m}) unsupported: m must be in 3..=12"),
            })?;
        let order = (1usize << m) - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u16; order + 1];
        let mut x: u32 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(order) {
            *slot = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        debug_assert_eq!(x, 1, "primitive polynomial must generate the group");
        // Second copy so exp[a + b] works for a, b < order.
        let (lo, hi) = exp.split_at_mut(order);
        hi.copy_from_slice(lo);
        Ok(Self { m, order, exp, log })
    }

    /// The field degree `m`.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The multiplicative-group order `2^m − 1` (= BCH codeword length).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// `α^i` for any exponent (reduced mod the group order).
    #[must_use]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % self.order]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics on zero (zero has no logarithm).
    #[must_use]
    pub fn log(&self, x: u16) -> usize {
        assert!(x != 0, "log of zero");
        usize::from(self.log[usize::from(x)])
    }

    /// Field product.
    #[must_use]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log(a) + self.log(b)]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[must_use]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.order - self.log(a)]
    }

    /// `a^n` for a non-negative exponent (`0^0 = 1` by convention).
    #[must_use]
    pub fn pow(&self, a: u16, n: usize) -> u16 {
        if n == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        self.exp[(self.log(a) * n) % self.order]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_close_over_the_group() {
        for m in 3..=12 {
            let gf = Gf2m::new(m).unwrap();
            // α generates every non-zero element exactly once.
            let mut seen = vec![false; gf.order() + 1];
            for i in 0..gf.order() {
                let x = gf.alpha_pow(i);
                assert!(x != 0 && !seen[usize::from(x)], "m={m} i={i}");
                seen[usize::from(x)] = true;
            }
        }
    }

    #[test]
    fn multiplication_matches_schoolbook_in_gf16() {
        // GF(16) with x⁴ + x + 1: α⁴ = α + 1 → 2·8 = α·α³ = α⁴ = 3.
        let gf = Gf2m::new(4).unwrap();
        assert_eq!(gf.mul(0b0010, 0b1000), 0b0011);
        assert_eq!(gf.mul(0, 7), 0);
        assert_eq!(gf.mul(1, 7), 7);
    }

    #[test]
    fn inverses_and_powers_are_consistent() {
        let gf = Gf2m::new(8).unwrap();
        for x in 1..=255u16 {
            assert_eq!(gf.mul(x, gf.inv(x)), 1, "x={x}");
            assert_eq!(gf.pow(x, 255), 1, "Fermat: x^order = 1");
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    fn unsupported_degrees_are_rejected() {
        assert!(Gf2m::new(2).is_err());
        assert!(Gf2m::new(13).is_err());
    }
}
