//! Hamming SEC-DED: single-error correction, double-error detection.
//!
//! The classic extended Hamming construction: parity bits at
//! power-of-two positions cover the positions whose index has the
//! matching bit set, and one overall parity bit distinguishes single
//! (correctable) from double (detect-only) errors. Minimum distance 4 —
//! the lightest codec of the pipeline and the baseline the BCH codes are
//! judged against.

use crate::codec::{DecodeOutcome, PageCodec};
use crate::{ReliabilityError, Result};

/// A SEC-DED code for a fixed data length.
///
/// Codeword layout: bit 0 is the overall parity; bits `1..=data+r` are
/// the classic Hamming positions (parity at powers of two, data
/// elsewhere, both in ascending position order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HammingSecDed {
    data_bits: usize,
    /// Hamming parity bits (excluding the overall parity).
    parity_bits: usize,
}

impl HammingSecDed {
    /// Builds the SEC-DED code carrying `data_bits` of payload.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] for a zero data length.
    pub fn new(data_bits: usize) -> Result<Self> {
        if data_bits == 0 {
            return Err(ReliabilityError::InvalidCode {
                reason: "Hamming data length must be positive".into(),
            });
        }
        let mut parity_bits = 0usize;
        while (1usize << parity_bits) < data_bits + parity_bits + 1 {
            parity_bits += 1;
        }
        Ok(Self {
            data_bits,
            parity_bits,
        })
    }

    /// The largest SEC-DED code whose codeword fits `width` bits.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] when `width` is too small to
    /// carry any payload.
    pub fn for_width(width: usize) -> Result<Self> {
        let mut data = width.saturating_sub(2);
        loop {
            if data == 0 {
                return Err(ReliabilityError::InvalidCode {
                    reason: format!("no SEC-DED code fits a {width}-bit page"),
                });
            }
            let code = Self::new(data)?;
            if code.code_bits() <= width {
                return Ok(code);
            }
            data -= 1;
        }
    }

    /// XOR of the position indices of set bits in `1..` — zero for a
    /// valid classic Hamming word, the error position otherwise.
    fn syndrome(word: &[bool]) -> usize {
        word.iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &b)| b)
            .fold(0, |s, (i, _)| s ^ i)
    }
}

impl PageCodec for HammingSecDed {
    fn name(&self) -> String {
        format!("hamming-secded({},{})", self.code_bits(), self.data_bits)
    }

    fn code_bits(&self) -> usize {
        self.data_bits + self.parity_bits + 1
    }

    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn correctable(&self) -> usize {
        1
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>> {
        if data.len() != self.data_bits {
            return Err(ReliabilityError::WrongLength {
                what: "data",
                got: data.len(),
                expected: self.data_bits,
            });
        }
        let n = self.code_bits();
        let mut word = vec![false; n];
        let mut next = 0usize;
        for (i, slot) in word.iter_mut().enumerate().skip(1) {
            if !i.is_power_of_two() {
                *slot = data[next];
                next += 1;
            }
        }
        debug_assert_eq!(next, self.data_bits);
        let syndrome = Self::syndrome(&word);
        for j in 0..self.parity_bits {
            if syndrome & (1 << j) != 0 {
                word[1 << j] = true;
            }
        }
        // Overall parity makes the whole word even-weight.
        word[0] = word[1..].iter().filter(|&&b| b).count() % 2 == 1;
        Ok(word)
    }

    fn decode(&self, word: &mut [bool]) -> Result<DecodeOutcome> {
        if word.len() != self.code_bits() {
            return Err(ReliabilityError::WrongLength {
                what: "codeword",
                got: word.len(),
                expected: self.code_bits(),
            });
        }
        let syndrome = Self::syndrome(word);
        let parity_ok = word.iter().filter(|&&b| b).count() % 2 == 0;
        Ok(match (syndrome, parity_ok) {
            (0, true) => DecodeOutcome::Clean,
            (0, false) => {
                // The overall parity bit itself flipped.
                word[0] = !word[0];
                DecodeOutcome::Corrected(1)
            }
            (s, false) if s < word.len() => {
                word[s] = !word[s];
                DecodeOutcome::Corrected(1)
            }
            // Even weight with a non-zero syndrome (or a syndrome beyond
            // the word): two errors — detected, not corrected.
            _ => DecodeOutcome::Detected,
        })
    }

    fn extract(&self, word: &[bool]) -> Result<Vec<bool>> {
        if word.len() != self.code_bits() {
            return Err(ReliabilityError::WrongLength {
                what: "codeword",
                got: word.len(),
                expected: self.code_bits(),
            });
        }
        Ok(word
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(i, _)| !i.is_power_of_two())
            .map(|(_, &b)| b)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact() {
        let code = HammingSecDed::new(11).unwrap();
        assert_eq!(code.code_bits(), 16); // 11 + 4 + 1: the (16, 11) code
        let data: Vec<bool> = (0..11).map(|i| i % 3 == 0).collect();
        let word = code.encode(&data).unwrap();
        let mut received = word.clone();
        assert_eq!(code.decode(&mut received).unwrap(), DecodeOutcome::Clean);
        assert_eq!(code.extract(&received).unwrap(), data);
    }

    #[test]
    fn every_single_error_is_corrected() {
        let code = HammingSecDed::new(26).unwrap();
        let data: Vec<bool> = (0..26).map(|i| i % 5 == 1).collect();
        let word = code.encode(&data).unwrap();
        for flip in 0..word.len() {
            let mut received = word.clone();
            received[flip] = !received[flip];
            assert_eq!(
                code.decode(&mut received).unwrap(),
                DecodeOutcome::Corrected(1),
                "flip at {flip}"
            );
            assert_eq!(received, word, "flip at {flip}");
        }
    }

    #[test]
    fn double_errors_are_detected_not_miscorrected() {
        let code = HammingSecDed::new(11).unwrap();
        let data = vec![true; 11];
        let word = code.encode(&data).unwrap();
        for a in 0..word.len() {
            for b in (a + 1)..word.len() {
                let mut received = word.clone();
                received[a] = !received[a];
                received[b] = !received[b];
                assert_eq!(
                    code.decode(&mut received).unwrap(),
                    DecodeOutcome::Detected,
                    "flips at {a},{b}"
                );
            }
        }
    }

    #[test]
    fn width_fitting_uses_the_page() {
        let code = HammingSecDed::for_width(64).unwrap();
        assert!(code.code_bits() <= 64);
        assert_eq!(code.data_bits(), 57); // (64, 57) SEC-DED
        assert!(HammingSecDed::for_width(2).is_err());
        assert!(HammingSecDed::new(0).is_err());
    }
}
