//! Read-path management: reference re-centering and read-retry.
//!
//! Real flash read paths do two things this module reproduces:
//!
//! * **Re-centering** — the sense reference is not a constant: it is
//!   placed in the valley of the measured threshold histogram, so as
//!   retention decay and wear drag the populations toward each other the
//!   reference tracks the midpoint instead of clipping one tail.
//! * **Read-retry** — when a page fails ECC, the read is retried with a
//!   fresh noise sample at reference voltages stepped around the
//!   nominal one; a marginal page usually recovers within a few steps.

use gnr_flash::engine::BatchSimulator;
use gnr_flash_array::margins::decision_valley;
use gnr_flash_array::population::CellPopulation;
use gnr_numerics::stats::Histogram;

use crate::ber::{BerModel, ReadContext};
use crate::codec::{DecodeOutcome, PageCodec};
use crate::{ReliabilityError, Result};

/// The retry ladder: how far and how often to step the reference when a
/// page fails to decode.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReadRetryPolicy {
    /// Reference step per retry (V); retries alternate −step, +step,
    /// −2·step, +2·step, …
    pub step_volts: f64,
    /// Maximum retries after the initial read.
    pub max_retries: usize,
}

impl Default for ReadRetryPolicy {
    fn default() -> Self {
        Self {
            step_volts: 0.1,
            max_retries: 4,
        }
    }
}

impl ReadRetryPolicy {
    /// The reference offset of retry `k` (1-based): −s, +s, −2s, +2s, …
    #[must_use]
    pub fn offset(&self, k: usize) -> f64 {
        let magnitude = self.step_volts * k.div_ceil(2) as f64;
        if k % 2 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

/// Re-centers the read reference from an already-built [`ReadContext`]:
/// the deepest valley of the sensed-threshold (stored charge plus wear
/// offsets) histogram. Returns `None` when the histogram is unimodal (a
/// blank or fully-programmed array has no valley to sit in) or
/// degenerate.
#[must_use]
pub fn recenter_from(ctx: &ReadContext, bins: usize) -> Option<f64> {
    let vt = &ctx.effective_vt;
    let (lo, hi) = vt
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if !(hi > lo) {
        return None;
    }
    // Pad the range so the extreme cells land inside the histogram.
    let pad = 0.01 * (hi - lo);
    let h = Histogram::new(vt, lo - pad, hi + pad, bins).ok()?;
    decision_valley(&h)
}

/// [`recenter_from`] on a freshly-built context — for one-shot callers;
/// scans that also *sample* should build the context once and use
/// [`recenter_from`] so the column work is not done twice.
#[must_use]
pub fn recenter_reference(
    ber: &BerModel,
    pop: &CellPopulation,
    batch: &BatchSimulator,
    bins: usize,
) -> Option<f64> {
    recenter_from(&ber.context(pop, batch), bins)
}

/// One page read through the managed path.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRead {
    /// The page's bits after decoding (codec region corrected in place;
    /// any tail bits beyond the codeword pass through as sampled).
    pub bits: Vec<bool>,
    /// The final decode outcome.
    pub outcome: DecodeOutcome,
    /// Retries consumed after the initial read (0 = first read decoded).
    pub retries: usize,
    /// The reference voltage that produced the final outcome (V).
    pub reference: f64,
}

/// The managed read path: a nominal reference plus a retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPath {
    /// Nominal read reference (V).
    pub reference: f64,
    /// The retry ladder.
    pub retry: ReadRetryPolicy,
}

impl ReadPath {
    /// A read path at a fixed nominal reference with the default ladder.
    #[must_use]
    pub fn new(reference: f64) -> Self {
        Self {
            reference,
            retry: ReadRetryPolicy::default(),
        }
    }

    /// A read path re-centered on the population's margin histogram,
    /// falling back to the population's own decision level when the
    /// histogram has no valley.
    #[must_use]
    pub fn recentered(
        ber: &BerModel,
        pop: &CellPopulation,
        batch: &BatchSimulator,
        bins: usize,
    ) -> Self {
        let reference = recenter_reference(ber, pop, batch, bins)
            .unwrap_or_else(|| pop.decision_level().as_volts());
        Self::new(reference)
    }

    /// Reads and decodes the page whose cells occupy
    /// `start..start + width`, retrying with stepped references and
    /// fresh noise on ECC failure. `base_pass` seeds the first read;
    /// retry `k` samples pass `base_pass + k` — deterministic, but every
    /// retry sees new noise, as hardware re-reads do.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::CodeTooWide`] when the codec's codeword does
    /// not fit the page.
    pub fn read_page(
        &self,
        ctx: &ReadContext,
        codec: &dyn PageCodec,
        start: usize,
        width: usize,
        base_pass: u64,
    ) -> Result<PageRead> {
        let n = codec.code_bits();
        if n > width {
            return Err(ReliabilityError::CodeTooWide {
                code_bits: n,
                page_width: width,
            });
        }
        let mut last: Option<PageRead> = None;
        for k in 0..=self.retry.max_retries {
            let reference = self.reference + if k == 0 { 0.0 } else { self.retry.offset(k) };
            let mut bits = ctx.sample_window(reference, base_pass + k as u64, start, width);
            let outcome = codec.decode(&mut bits[..n])?;
            let read = PageRead {
                bits,
                outcome,
                retries: k,
                reference,
            };
            if !matches!(outcome, DecodeOutcome::Detected) {
                Self::record_retry_telemetry(k);
                return Ok(read);
            }
            last = Some(read);
        }
        Self::record_retry_telemetry(self.retry.max_retries);
        Ok(last.expect("at least the initial read ran"))
    }

    /// Telemetry of one completed read: the retry-depth histogram, the
    /// cumulative retry counter, and one journal event per read that had
    /// to step past the nominal reference.
    fn record_retry_telemetry(depth: usize) {
        gnr_telemetry::histogram_record!("reliability.retry_depth", depth as u64);
        gnr_telemetry::counter_add!("reliability.read_retries", depth as u64);
        if depth > 0 {
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::ReadRetryStep {
                depth: depth as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::EccConfig;
    use gnr_flash_array::ispp::IsppProgrammer;

    fn programmed_population() -> CellPopulation {
        let mut pop = CellPopulation::paper(64);
        let programmer = IsppProgrammer::nominal();
        let indices: Vec<usize> = (0..32).collect();
        let _ = pop.program_cells(&programmer, &indices, &BatchSimulator::sequential());
        pop
    }

    #[test]
    fn retry_ladder_alternates_and_widens() {
        let policy = ReadRetryPolicy {
            step_volts: 0.2,
            max_retries: 4,
        };
        let offsets: Vec<f64> = (1..=4).map(|k| policy.offset(k)).collect();
        assert_eq!(offsets, vec![-0.2, 0.2, -0.4, 0.4]);
    }

    #[test]
    fn recentering_lands_between_the_populations() {
        let pop = programmed_population();
        let ber = BerModel::default();
        let reference = recenter_reference(&ber, &pop, &BatchSimulator::new(), 64).unwrap();
        // Erased mode ~0 V, programmed mode ~2.3 V.
        assert!(reference > 0.2 && reference < 2.2, "reference {reference}");
    }

    #[test]
    fn blank_arrays_have_no_valley_and_fall_back() {
        let pop = CellPopulation::paper(32);
        let ber = BerModel::default();
        let batch = BatchSimulator::new();
        assert_eq!(recenter_reference(&ber, &pop, &batch, 32), None);
        let path = ReadPath::recentered(&ber, &pop, &batch, 32);
        assert_eq!(path.reference, pop.decision_level().as_volts());
    }

    #[test]
    fn clean_pages_decode_on_the_first_read() {
        // The first 32 cells are programmed: the decoded 31-bit window
        // is the all-zero word — a codeword of every linear code.
        let pop = programmed_population();
        let ber = BerModel {
            read_noise_sigma: 0.01,
            ..BerModel::default()
        };
        let batch = BatchSimulator::new();
        let ctx = ber.context(&pop, &batch);
        let codec = EccConfig::Bch { m: 5, t: 2 }.build().unwrap();
        let path = ReadPath::recentered(&ber, &pop, &batch, 64);
        let read = path.read_page(&ctx, codec.as_ref(), 0, 64, 0).unwrap();
        assert_eq!(read.retries, 0);
        assert!(!matches!(read.outcome, DecodeOutcome::Detected));
    }

    #[test]
    fn hopeless_pages_exhaust_the_ladder() {
        /// A codec that never succeeds — pins the ladder length exactly.
        struct AlwaysFail;
        impl PageCodec for AlwaysFail {
            fn name(&self) -> String {
                "always-fail".into()
            }
            fn code_bits(&self) -> usize {
                31
            }
            fn data_bits(&self) -> usize {
                1
            }
            fn correctable(&self) -> usize {
                0
            }
            fn encode(&self, _data: &[bool]) -> crate::Result<Vec<bool>> {
                Ok(vec![false; 31])
            }
            fn decode(&self, _word: &mut [bool]) -> crate::Result<DecodeOutcome> {
                Ok(DecodeOutcome::Detected)
            }
            fn extract(&self, _word: &[bool]) -> crate::Result<Vec<bool>> {
                Ok(vec![false])
            }
        }

        let pop = programmed_population();
        let ber = BerModel::default();
        let batch = BatchSimulator::new();
        let ctx = ber.context(&pop, &batch);
        let path = ReadPath::new(pop.decision_level().as_volts());
        let read = path.read_page(&ctx, &AlwaysFail, 0, 64, 0).unwrap();
        assert_eq!(read.retries, path.retry.max_retries);
        assert_eq!(read.outcome, DecodeOutcome::Detected);
        // The last attempt ran at the widest ladder offset.
        let expected = path.reference + path.retry.offset(path.retry.max_retries);
        assert!((read.reference - expected).abs() < 1e-12);
        // Oversized codewords are rejected.
        assert!(matches!(
            path.read_page(&ctx, &AlwaysFail, 0, 16, 0),
            Err(ReliabilityError::CodeTooWide { .. })
        ));
    }
}
