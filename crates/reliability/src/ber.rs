//! Threshold-noise → raw bit-error-rate model.
//!
//! A read senses a cell's threshold against a reference voltage. The
//! margin analysis says how far each population sits from that
//! reference; this module turns distance into *error probability* by
//! sampling a per-read threshold perturbation on every cell:
//!
//! * a baseline Gaussian read noise (comparator noise, short-term RTN,
//!   cell-to-cell sensing variation folded into one 1σ knob);
//! * a wear-coupled component: the endurance model's trapped charge both
//!   *shifts* the sensed threshold (erased cells drift up faster than
//!   programmed ones, exactly as in [`gnr_flash_array::endurance`]) and
//!   *broadens* the noise (trap-induced RTN grows with fluence).
//!
//! Sampling is deterministic and batch-layout independent: every cell's
//! draw comes from its own generator seeded by an avalanche mix of
//! `(model seed, cell index, read pass)`, so a parallel chunked scan is
//! bit-identical to a sequential one, a window read agrees with the
//! full-array read at the same pass, and re-running a pass reproduces
//! the same errors exactly (pinned by `tests/ecc_reliability.rs`).

use gnr_flash::engine::BatchSimulator;
use gnr_flash::variation::standard_normal;
use gnr_flash_array::endurance::EnduranceModel;
use gnr_flash_array::population::CellPopulation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The raw bit-error model over a population's analog state.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BerModel {
    /// 1σ of the baseline per-read threshold noise (V).
    pub read_noise_sigma: f64,
    /// Extra noise σ per volt of trap-induced threshold offset — the
    /// wear-coupled RTN broadening.
    pub trap_noise_fraction: f64,
    /// The oxide-wear model coupling the injected-charge column to
    /// threshold offsets at read time.
    pub endurance: EnduranceModel,
    /// RNG seed; together with the cell index and read pass it fully
    /// determines every draw.
    pub seed: u64,
}

impl Default for BerModel {
    fn default() -> Self {
        Self {
            // Wide enough that a ~1 V margin sits at a few σ — the
            // regime where raw BER is measurable on million-cell arrays
            // (a 3.5σ margin ≈ 2×10⁻⁴) and ECC visibly earns its keep.
            read_noise_sigma: 0.30,
            trap_noise_fraction: 0.5,
            endurance: EnduranceModel::default(),
            seed: 0xb17e_5eed,
        }
    }
}

/// The SplitMix64 finalizer: the one avalanche every seed/lane
/// derivation in this crate goes through, so the determinism contract
/// (the pinned digest in `tests/ecc_reliability.rs`) has a single
/// implementation to drift.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-cell generator seed: [`splitmix64`] over `(seed, cell, pass)` —
/// cells and passes decorrelate regardless of how the scan is chunked.
fn cell_seed(seed: u64, cell: u64, pass: u64) -> u64 {
    splitmix64(
        seed ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ pass.wrapping_mul(0xd134_2543_de82_ef95),
    )
}

/// Precomputed per-cell read state: the sensed threshold (stored charge
/// plus wear-coupled trap offset) and the per-cell noise σ. Built once
/// per array state, then sampled any number of times (passes, retries,
/// window reads) without touching the population again.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadContext {
    /// Sensed (noise-free) threshold per cell (V).
    pub effective_vt: Vec<f64>,
    /// Per-cell noise 1σ (V).
    pub sigma: Vec<f64>,
    seed: u64,
}

impl ReadContext {
    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.effective_vt.len()
    }

    /// `true` for an empty context.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.effective_vt.is_empty()
    }

    /// The sampled read decision of cell `i` at `reference` volts on
    /// read pass `pass`.
    #[must_use]
    pub fn sample_bit(&self, i: usize, reference: f64, pass: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(cell_seed(self.seed, i as u64, pass));
        self.effective_vt[i] + self.sigma[i] * standard_normal(&mut rng) <= reference
    }

    /// Samples a read of cells `start..start + len` (one page of a retry
    /// or scrub scan). Per-cell seeding keys on the absolute index, so a
    /// window read at pass `p` returns exactly the bits a full-array
    /// read at pass `p` would return for those cells.
    #[must_use]
    pub fn sample_window(&self, reference: f64, pass: u64, start: usize, len: usize) -> Vec<bool> {
        (start..start + len)
            .map(|i| self.sample_bit(i, reference, pass))
            .collect()
    }

    /// Samples one full read at `reference` volts, fanned out over
    /// `batch` in deterministic chunks.
    #[must_use]
    pub fn sample_all(&self, batch: &BatchSimulator, reference: f64, pass: u64) -> Vec<bool> {
        let mut bits = vec![false; self.len()];
        let chunk = 16 * 1024;
        batch.for_each_chunk_mut(&mut bits, chunk, |start, slice| {
            for (offset, bit) in slice.iter_mut().enumerate() {
                *bit = self.sample_bit(start + offset, reference, pass);
            }
        });
        bits
    }
}

impl BerModel {
    /// Builds the per-cell read state of a population: effective
    /// thresholds and noise widths, column-vectorised over `batch`.
    #[must_use]
    pub fn context(&self, pop: &CellPopulation, batch: &BatchSimulator) -> ReadContext {
        let mut vt = pop.vt_shift_column(batch);
        let cfc = pop.cfc_column(batch);
        let fluence = pop.injected_charge_column();
        let decision = pop.decision_level().as_volts();
        let fraction = self.endurance.programmed_state_fraction;
        let mut sigma = vec![0.0f64; pop.len()];
        let chunk = 16 * 1024;
        batch.for_each_chunk_mut(&mut sigma, chunk, |start, slice| {
            for (offset, s) in slice.iter_mut().enumerate() {
                let i = start + offset;
                let trap = -(self.endurance.trapped_charge(fluence[i]).as_coulombs() / cfc[i]);
                let wear = self.trap_noise_fraction * trap;
                *s = (self.read_noise_sigma * self.read_noise_sigma + wear * wear).sqrt();
            }
        });
        batch.for_each_chunk_mut(&mut vt, chunk, |start, slice| {
            for (offset, v) in slice.iter_mut().enumerate() {
                let i = start + offset;
                let trap = -(self.endurance.trapped_charge(fluence[i]).as_coulombs() / cfc[i]);
                // The erased population drifts up at full strength, the
                // programmed one at the endurance model's fraction — the
                // window-closing asymmetry.
                let weight = if *v > decision { fraction } else { 1.0 };
                *v += weight * trap;
            }
        });
        ReadContext {
            effective_vt: vt,
            sigma,
            seed: self.seed,
        }
    }

    /// The stored data as an ideal (noiseless) read at the population's
    /// own decision level would return it — the ground truth raw-BER
    /// comparisons run against. Bit `true` = erased = logic '1'.
    #[must_use]
    pub fn noiseless_bits(&self, pop: &CellPopulation, batch: &BatchSimulator) -> Vec<bool> {
        let decision = pop.decision_level().as_volts();
        pop.vt_shift_column(batch)
            .iter()
            .map(|&v| v <= decision)
            .collect()
    }

    /// One full sampled read of the population (convenience for
    /// [`BerModel::context`] + [`ReadContext::sample_all`]).
    #[must_use]
    pub fn sample_read_bits(
        &self,
        pop: &CellPopulation,
        batch: &BatchSimulator,
        reference: f64,
        pass: u64,
    ) -> Vec<bool> {
        self.context(pop, batch).sample_all(batch, reference, pass)
    }

    /// Counts mismatches between a truth column and a sampled read,
    /// reduced deterministically over batch chunks.
    ///
    /// # Panics
    ///
    /// Panics when the columns disagree in length.
    #[must_use]
    pub fn count_errors(truth: &[bool], read: &[bool], batch: &BatchSimulator) -> usize {
        assert_eq!(truth.len(), read.len(), "column lengths must match");
        batch
            .map_chunks(truth.len(), 64 * 1024, |start, len| {
                (start..start + len)
                    .filter(|&i| truth[i] != read[i])
                    .count()
            })
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_flash_array::ispp::IsppProgrammer;

    fn programmed_population() -> CellPopulation {
        let mut pop = CellPopulation::paper(64);
        let programmer = IsppProgrammer::nominal();
        let indices: Vec<usize> = (0..32).collect();
        let _ = pop.program_cells(&programmer, &indices, &BatchSimulator::sequential());
        pop
    }

    #[test]
    fn sampling_is_deterministic_and_layout_independent() {
        let pop = programmed_population();
        // σ large enough that passes visibly disagree on 64 cells.
        let model = BerModel {
            read_noise_sigma: 1.0,
            ..BerModel::default()
        };
        let reference = pop.decision_level().as_volts();
        let parallel = model.sample_read_bits(&pop, &BatchSimulator::new(), reference, 3);
        let sequential = model.sample_read_bits(&pop, &BatchSimulator::sequential(), reference, 3);
        assert_eq!(parallel, sequential);
        // A different pass draws different noise.
        let other = model.sample_read_bits(&pop, &BatchSimulator::new(), reference, 4);
        assert_ne!(parallel, other);
    }

    #[test]
    fn window_reads_agree_with_full_reads() {
        let pop = programmed_population();
        let model = BerModel::default();
        let batch = BatchSimulator::new();
        let ctx = model.context(&pop, &batch);
        let reference = pop.decision_level().as_volts();
        let full = ctx.sample_all(&batch, reference, 7);
        let window = ctx.sample_window(reference, 7, 16, 24);
        assert_eq!(window, &full[16..40]);
    }

    #[test]
    fn zero_noise_reads_are_exact() {
        let pop = programmed_population();
        let model = BerModel {
            read_noise_sigma: 0.0,
            trap_noise_fraction: 0.0,
            ..BerModel::default()
        };
        let batch = BatchSimulator::new();
        let truth = model.noiseless_bits(&pop, &batch);
        let read = model.sample_read_bits(&pop, &batch, pop.decision_level().as_volts(), 0);
        assert_eq!(BerModel::count_errors(&truth, &read, &batch), 0);
        // Programmed cells read '0', fresh cells '1'.
        assert!(!truth[0] && truth[40]);
    }

    #[test]
    fn noise_produces_errors_at_tight_margins() {
        let pop = programmed_population();
        let model = BerModel {
            read_noise_sigma: 1.5,
            ..BerModel::default()
        };
        let batch = BatchSimulator::new();
        let truth = model.noiseless_bits(&pop, &batch);
        let read = model.sample_read_bits(&pop, &batch, pop.decision_level().as_volts(), 0);
        assert!(BerModel::count_errors(&truth, &read, &batch) > 0);
    }

    #[test]
    fn wear_raises_the_erased_population_faster() {
        let mut pop = programmed_population();
        let model = BerModel::default();
        let batch = BatchSimulator::new();
        let fresh = model.context(&pop, &batch);
        // A heavy synthetic fluence on every cell: erased cells (full
        // offset) must rise ~2× faster than programmed ones (half), and
        // the per-cell noise must broaden.
        let all: Vec<usize> = (0..pop.len()).collect();
        pop.add_injected_charge(&all, 2.0e-14);
        let worn = model.context(&pop, &batch);
        let erased_rise = worn.effective_vt[40] - fresh.effective_vt[40];
        let programmed_rise = worn.effective_vt[0] - fresh.effective_vt[0];
        assert!(erased_rise > 0.0);
        assert!(programmed_rise > 0.0);
        assert!(erased_rise > 1.9 * programmed_rise);
        assert!(worn.sigma[40] > fresh.sigma[40]);
    }
}
