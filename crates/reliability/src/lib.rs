//! # gnr-reliability
//!
//! The digital reliability pipeline over the MLGNR-CNT flash array: the
//! layer that turns analog threshold margins into the numbers flash
//! products are actually judged by — raw bit-error rate (RBER), and the
//! uncorrectable bit-error rate (UBER) that survives error correction
//! and read management.
//!
//! The companion JETC analysis frames the GNR floating-gate cell as a
//! nonvolatile flash candidate; van-der-Waals flash work evaluates such
//! devices by retention-limited error behaviour. The array layer already
//! computes margins, retention decay, disturb and per-cell wear; this
//! crate closes the loop:
//!
//! ```text
//!  CellPopulation columns          this crate
//!  ─────────────────────   ────────────────────────────
//!  ΔVT column ┐
//!  wear column├─► [ber]  noisy read sampling ─► raw BER
//!  charge col ┘      │
//!                    ▼
//!             [codec]/[hamming]/[bch]  per-page decode ─► corrected /
//!                    │                                    uncorrectable
//!                    ▼
//!             [readpath]  reference re-centering + read-retry
//!                    │
//!                    ▼
//!             [scrub]  background refresh through the controller
//!                    │
//!                    ▼
//!             [uber]  RBER/UBER reporting + workload trajectories
//! ```
//!
//! * [`ber`] — threshold-noise → raw-BER model: deterministic, seeded,
//!   column-vectorised read sampling from population state.
//! * [`gf`] — GF(2^m) arithmetic tables for the BCH codec.
//! * [`hamming`] — Hamming SEC-DED on page-sized codewords.
//! * [`bch`] — configurable binary BCH(n, k, t) encode/decode.
//! * [`codec`] — the shared page-codec trait, codec selection and
//!   per-page syndrome statistics.
//! * [`readpath`] — reference-voltage re-centering from margin
//!   histograms and a read-retry ladder.
//! * [`scrub`] — background scrubbing through the flash controller.
//! * [`uber`] — the RBER/UBER reporter and the workload-replay observer.
//!
//! # Example
//!
//! ```
//! use gnr_flash_array::nand::{NandArray, NandConfig};
//! use gnr_reliability::ber::BerModel;
//! use gnr_reliability::codec::EccConfig;
//! use gnr_reliability::uber::scan_array;
//!
//! let mut array = NandArray::new(NandConfig {
//!     blocks: 2,
//!     pages_per_block: 2,
//!     page_width: 16,
//! });
//! array.program_page(0, 0, &[false; 16]).unwrap();
//!
//! let codec = EccConfig::Bch { m: 4, t: 2 }.build().unwrap();
//! let ber = BerModel::default();
//! let truth = ber.noiseless_bits(array.population(), array.batch());
//! let point = scan_array(&array, &truth, codec.as_ref(), &ber, None, 0).unwrap();
//! assert!(point.uber <= point.rber);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod ber;
pub mod codec;
pub mod gf;
pub mod hamming;
pub mod readpath;
pub mod scrub;
pub mod uber;

mod error;

pub use error::ReliabilityError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ReliabilityError>;
