//! Background scrubbing: patrol reads that refresh decaying pages.
//!
//! Retention decay and disturb are *cumulative* — left alone, a page's
//! margins erode until its error count outruns the codec. A scrubber
//! walks the live logical pages on idle time, reads each one through the
//! managed read path, and when correction was needed beyond a threshold
//! (or only a retry saved the page) rewrites the corrected data through
//! the controller. The rewrite allocates a fresh physical page at full
//! margins and marks the old copy stale — which is exactly the
//! controller's reclaim/GC machinery, so scrubbing pressure shows up as
//! reclaims and relocations in [`gnr_flash_array::controller::WearStats`].
//!
//! Scrubbing presumes pages hold codewords: [`write_encoded`] is the
//! ECC-aware ingest path (encode, pad with erased bits, write through
//! the controller).

use gnr_flash_array::controller::{FlashController, PageAddress};

use crate::ber::BerModel;
use crate::codec::{DecodeOutcome, DecodeStats, PageCodec};
use crate::readpath::{ReadPath, ReadRetryPolicy};
use crate::{ReliabilityError, Result};

/// When to refresh a page.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScrubPolicy {
    /// Refresh a page whose decode corrected at least this many bits
    /// (1 = refresh on any correction).
    pub corrected_bits_threshold: usize,
    /// The retry ladder for pages that fail the first decode.
    pub retry: ReadRetryPolicy,
    /// Bins for the re-centering histogram.
    pub histogram_bins: usize,
    /// Fixed read reference (V); `None` re-centers on the margin
    /// histogram each pass.
    pub reference: Option<f64>,
    /// Read-reclaim escalation: when at least this many pages of one
    /// physical block needed the retry ladder (or stayed uncorrectable)
    /// in a single pass, the block is decaying as a unit — *every* live
    /// page on it is relocated through the refresh seam instead of
    /// waiting for each to fail alone. `None` disables escalation.
    pub read_reclaim_threshold: Option<usize>,
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        Self {
            corrected_bits_threshold: 2,
            retry: ReadRetryPolicy::default(),
            histogram_bins: 64,
            reference: None,
            read_reclaim_threshold: None,
        }
    }
}

/// What one scrub pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScrubReport {
    /// Live pages scanned.
    pub pages_scanned: usize,
    /// Pages rewritten to fresh physical locations.
    pub pages_refreshed: usize,
    /// Pages that needed the retry ladder to decode at all.
    pub pages_recovered_by_retry: usize,
    /// Pages that stayed uncorrectable after every retry (left in
    /// place; the data is what it is).
    pub pages_uncorrectable: usize,
    /// The reference voltage the pass sensed at (V).
    pub reference: f64,
    /// Blocks whose live pages were wholesale-relocated by read-reclaim
    /// escalation ([`ScrubPolicy::read_reclaim_threshold`]).
    pub blocks_read_reclaimed: usize,
    /// Decode statistics over the scanned pages.
    pub decode: DecodeStats,
}

/// Encodes `data` (`codec.data_bits()` bits), pads the codeword to the
/// page width with erased bits and writes it to logical page `lpn` —
/// the ECC-aware ingest path scrubbing presumes.
///
/// # Errors
///
/// Codec length errors, [`ReliabilityError::CodeTooWide`], and
/// controller write failures.
pub fn write_encoded(
    controller: &mut FlashController,
    codec: &dyn PageCodec,
    lpn: usize,
    data: &[bool],
) -> Result<PageAddress> {
    let width = controller.array().config().page_width;
    let mut bits = codec.encode(data)?;
    if bits.len() > width {
        return Err(ReliabilityError::CodeTooWide {
            code_bits: bits.len(),
            page_width: width,
        });
    }
    bits.resize(width, true); // pad bits stay erased — they cost nothing
    controller
        .write_logical(lpn, &bits)
        .map_err(ReliabilityError::Array)
}

/// The noise lane of one page's reads within a scrub pass: the crate's
/// [`crate::ber::splitmix64`] avalanche over `(pass, lpn)`, so no
/// arithmetic combination of pass and page number can collide with a
/// neighbouring page's lane (retries only ever add `k ≤ max_retries`).
fn scrub_lane(pass: u64, lpn: usize) -> u64 {
    crate::ber::splitmix64(pass ^ (lpn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One background scrub pass over every live logical page.
///
/// Reads happen against the policy reference (re-centered on the margin
/// histogram by default). `pass` seeds the read noise; successive scrub
/// passes should use distinct values so each patrol sees fresh noise.
///
/// # Errors
///
/// [`ReliabilityError::CodeTooWide`] when the codec does not fit the
/// array's page width; rewrite failures propagate as array errors.
pub fn scrub(
    controller: &mut FlashController,
    codec: &dyn PageCodec,
    ber: &BerModel,
    policy: &ScrubPolicy,
    pass: u64,
) -> Result<ScrubReport> {
    let config = controller.array().config();
    let width = config.page_width;
    if codec.code_bits() > width {
        return Err(ReliabilityError::CodeTooWide {
            code_bits: codec.code_bits(),
            page_width: width,
        });
    }
    let batch = controller.array().batch().clone();
    let pop = controller.array().population();
    // One context build serves the re-centering histogram and every
    // page read of the pass.
    let ctx = ber.context(pop, &batch);
    let reference = policy.reference.unwrap_or_else(|| {
        crate::readpath::recenter_from(&ctx, policy.histogram_bins)
            .unwrap_or_else(|| pop.decision_level().as_volts())
    });
    let path = ReadPath {
        reference,
        retry: policy.retry,
    };

    let mut report = ScrubReport {
        reference,
        ..ScrubReport::default()
    };
    // Scan first (immutable), then rewrite (mutable): the refresh list
    // is decided against one consistent snapshot of the array.
    let mut refresh: Vec<(usize, Vec<bool>)> = Vec::new();
    // Per-block count of pages that needed the deep end of the read
    // path (retry-recovered or uncorrectable) — the read-reclaim
    // escalation signal.
    let mut deep_hits = vec![0usize; config.blocks];
    for lpn in controller.live_logical_pages() {
        let Some(addr) = controller.physical_of(lpn) else {
            continue;
        };
        let start = controller.array().cell_index(addr.block, addr.page, 0);
        let read = path.read_page(&ctx, codec, start, width, scrub_lane(pass, lpn))?;
        report.pages_scanned += 1;
        report.decode.record(read.outcome);
        if read.retries > 0 || matches!(read.outcome, DecodeOutcome::Detected) {
            deep_hits[addr.block] += 1;
        }
        if read.retries > 0 && !matches!(read.outcome, DecodeOutcome::Detected) {
            report.pages_recovered_by_retry += 1;
        }
        match read.outcome {
            DecodeOutcome::Detected => report.pages_uncorrectable += 1,
            DecodeOutcome::Clean | DecodeOutcome::Corrected(_) => {
                let corrected = match read.outcome {
                    DecodeOutcome::Corrected(bits) => bits,
                    _ => 0,
                };
                // Refresh on heavy correction — or whenever only the
                // retry ladder produced a decodable read (a
                // retry-recovered page that decodes *Clean* at a shifted
                // reference is still sitting on decayed cells).
                if corrected >= policy.corrected_bits_threshold || read.retries > 0 {
                    // Rewrite the corrected codeword; the uncoded tail
                    // is re-padded erased (the `write_encoded` layout)
                    // rather than persisting its *sampled* bits, which
                    // would slowly program noise into the pad region.
                    let mut bits = read.bits;
                    let n = codec.code_bits();
                    bits[n..].fill(true);
                    refresh.push((lpn, bits));
                }
            }
        }
    }
    // Read-reclaim escalation: the last rung of the read-retry → ECC →
    // reclaim ladder. A block where `read_reclaim_threshold` pages hit
    // the deep end of the read path this pass is decaying as a unit, so
    // every live page on it joins the refresh list — rewriting them all
    // marks the block stale and the ordinary reclaim/GC machinery
    // erases (or, under fault injection, retires) it.
    if let Some(threshold) = policy.read_reclaim_threshold {
        let threshold = threshold.max(1);
        let queued: std::collections::HashSet<usize> =
            refresh.iter().map(|(lpn, _)| *lpn).collect();
        for (block, hits) in deep_hits.iter().enumerate() {
            if *hits < threshold {
                continue;
            }
            let mut pages = 0u64;
            for lpn in controller.live_logical_pages() {
                let Some(addr) = controller.physical_of(lpn) else {
                    continue;
                };
                if addr.block != block {
                    continue;
                }
                pages += 1;
                if queued.contains(&lpn) {
                    continue;
                }
                // Re-reading with the same noise lane is deterministic,
                // so this sees exactly the scan's bits.
                let start = controller.array().cell_index(addr.block, addr.page, 0);
                let read = path.read_page(&ctx, codec, start, width, scrub_lane(pass, lpn))?;
                let mut bits = read.bits;
                let n = codec.code_bits();
                bits[n..].fill(true);
                refresh.push((lpn, bits));
            }
            report.blocks_read_reclaimed += 1;
            gnr_telemetry::counter_add!("ftl.read_reclaims", 1);
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::ReadReclaim {
                block: block as u64,
                pages,
            });
        }
    }
    // The refresh traffic flows through the controller's batched entry
    // point: rewrites of pages on distinct blocks execute as multi-plane
    // rounds (and the reclaim pressure they generate still lands on the
    // ordinary reclaim/GC machinery at the flush boundaries).
    if !refresh.is_empty() {
        let jobs: Vec<(Option<usize>, Vec<bool>)> = refresh
            .into_iter()
            .map(|(lpn, bits)| (Some(lpn), bits))
            .collect();
        report.pages_refreshed = jobs.len();
        for result in controller.write_batch(jobs) {
            result.map_err(ReliabilityError::Array)?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::EccConfig;
    use gnr_flash::threshold::LogicState;
    use gnr_flash_array::nand::NandConfig;
    use gnr_flash_array::workload::PagePattern;
    use gnr_units::Charge;

    /// BCH(15, 7, t=2) on 32-bit pages.
    fn codec() -> Box<dyn PageCodec> {
        EccConfig::Bch { m: 4, t: 2 }.build().unwrap()
    }

    /// A 3×2×32 controller with every logical page holding an encoded
    /// seeded payload; returns the payloads for integrity checks.
    fn loaded_controller(codec: &dyn PageCodec) -> (FlashController, Vec<Vec<bool>>) {
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 32,
        });
        let mut payloads = Vec::new();
        for lpn in 0..c.logical_capacity() {
            let data = PagePattern::Seeded { seed: lpn as u64 }.expand(codec.data_bits());
            write_encoded(&mut c, codec, lpn, &data).unwrap();
            payloads.push(data);
        }
        (c, payloads)
    }

    fn quiet_ber() -> BerModel {
        BerModel {
            read_noise_sigma: 0.02,
            ..BerModel::default()
        }
    }

    #[test]
    fn healthy_arrays_scrub_clean() {
        let codec = codec();
        let (mut c, _) = loaded_controller(codec.as_ref());
        let erases_before = c.wear_stats().unwrap().total_erases;
        let report = scrub(
            &mut c,
            codec.as_ref(),
            &quiet_ber(),
            &ScrubPolicy::default(),
            1,
        )
        .unwrap();
        assert_eq!(report.pages_scanned, 4);
        assert_eq!(report.pages_refreshed, 0);
        assert_eq!(report.pages_uncorrectable, 0);
        assert_eq!(report.decode.clean_pages, 4);
        // The reference re-centered into the window, not at a tail.
        assert!(report.reference > 0.3 && report.reference < 2.2);
        // No refresh traffic → no reclaim pressure.
        assert_eq!(c.wear_stats().unwrap().total_erases, erases_before);
    }

    #[test]
    fn degraded_pages_are_refreshed_through_the_controller() {
        let codec = codec();
        let (mut c, payloads) = loaded_controller(codec.as_ref());
        // Retention-style degradation: one stored-charge bit per page
        // decays toward the reference until its read flips.
        for lpn in 0..c.logical_capacity() {
            let addr = c.physical_of(lpn).unwrap();
            let start = c.array().cell_index(addr.block, addr.page, 0);
            let pop = c.array().population();
            let victim = (start..start + 32)
                .find(|&i| pop.read(i).unwrap() == LogicState::Programmed0)
                .expect("every codeword programs some cell");
            let q = pop.charge(victim).unwrap().as_coulombs();
            c.population_mut()
                .set_charge(victim, Charge::from_coulombs(0.28 * q))
                .unwrap();
        }
        let policy = ScrubPolicy {
            corrected_bits_threshold: 1,
            reference: Some(1.0),
            ..ScrubPolicy::default()
        };
        let report = scrub(&mut c, codec.as_ref(), &quiet_ber(), &policy, 7).unwrap();
        assert_eq!(report.pages_scanned, 4);
        assert_eq!(report.pages_refreshed, 4, "{report:?}");
        assert!(report.decode.corrected_bits >= 4);
        assert_eq!(report.pages_uncorrectable, 0);
        // Refreshing 4 pages on a 6-page array forces reclaim — the
        // scrubber leans on the controller's reclaim machinery.
        let wear = c.wear_stats().unwrap();
        assert!(wear.total_erases > 0, "{wear:?}");
        // A second patrol sees fully-restored pages and the payloads
        // survived end to end.
        let second = scrub(&mut c, codec.as_ref(), &quiet_ber(), &policy, 8).unwrap();
        assert_eq!(second.decode.clean_pages, 4, "{second:?}");
        for (lpn, data) in payloads.iter().enumerate() {
            let bits = c.read_logical(lpn).unwrap();
            assert_eq!(
                &codec.extract(&bits[..codec.code_bits()]).unwrap(),
                data,
                "payload {lpn}"
            );
        }
    }

    #[test]
    fn retry_recovered_clean_pages_are_still_refreshed() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Fails the first decode it sees, then reports Clean: the first
        /// page scanned is "recovered by retry" without any correction.
        struct FlakyFirstRead(AtomicUsize);
        impl PageCodec for FlakyFirstRead {
            fn name(&self) -> String {
                "flaky-first-read".into()
            }
            fn code_bits(&self) -> usize {
                15
            }
            fn data_bits(&self) -> usize {
                7
            }
            fn correctable(&self) -> usize {
                2
            }
            fn encode(&self, data: &[bool]) -> crate::Result<Vec<bool>> {
                let mut word = data.to_vec();
                word.resize(15, false);
                Ok(word)
            }
            fn decode(&self, _word: &mut [bool]) -> crate::Result<DecodeOutcome> {
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    Ok(DecodeOutcome::Detected)
                } else {
                    Ok(DecodeOutcome::Clean)
                }
            }
            fn extract(&self, word: &[bool]) -> crate::Result<Vec<bool>> {
                Ok(word[..7].to_vec())
            }
        }

        let (mut c, _) = loaded_controller(codec().as_ref());
        let flaky = FlakyFirstRead(AtomicUsize::new(0));
        let report = scrub(&mut c, &flaky, &quiet_ber(), &ScrubPolicy::default(), 3).unwrap();
        // Page one took a retry and decoded Clean — decayed cells read
        // marginally, so it must be rewritten even with nothing to
        // correct; the other pages decoded clean first try and stay put.
        assert_eq!(report.pages_recovered_by_retry, 1, "{report:?}");
        assert_eq!(report.pages_refreshed, 1, "{report:?}");
        assert_eq!(report.pages_uncorrectable, 0);
    }

    #[test]
    fn read_reclaim_escalation_relocates_the_whole_block() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Fails the first decode it sees, then reports Clean — the
        /// first page scanned (lpn 0, on block 0) needs the retry
        /// ladder while every other page decodes clean first try.
        struct FlakyFirstRead(AtomicUsize);
        impl PageCodec for FlakyFirstRead {
            fn name(&self) -> String {
                "flaky-first-read".into()
            }
            fn code_bits(&self) -> usize {
                15
            }
            fn data_bits(&self) -> usize {
                7
            }
            fn correctable(&self) -> usize {
                2
            }
            fn encode(&self, data: &[bool]) -> crate::Result<Vec<bool>> {
                let mut word = data.to_vec();
                word.resize(15, false);
                Ok(word)
            }
            fn decode(&self, _word: &mut [bool]) -> crate::Result<DecodeOutcome> {
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    Ok(DecodeOutcome::Detected)
                } else {
                    Ok(DecodeOutcome::Clean)
                }
            }
            fn extract(&self, word: &[bool]) -> crate::Result<Vec<bool>> {
                Ok(word[..7].to_vec())
            }
        }

        let (mut c, payloads) = loaded_controller(codec().as_ref());
        let block0 = c.physical_of(0).unwrap().block;
        let flaky = FlakyFirstRead(AtomicUsize::new(0));
        let policy = ScrubPolicy {
            read_reclaim_threshold: Some(1),
            ..ScrubPolicy::default()
        };
        let report = scrub(&mut c, &flaky, &quiet_ber(), &policy, 3).unwrap();
        // Only lpn 0 needed the ladder, but escalation drags its whole
        // block along: the healthy neighbour (lpn 1) relocates too.
        assert_eq!(report.pages_recovered_by_retry, 1, "{report:?}");
        assert_eq!(report.blocks_read_reclaimed, 1, "{report:?}");
        assert_eq!(report.pages_refreshed, 2, "{report:?}");
        assert_ne!(c.physical_of(0).unwrap().block, block0);
        assert_ne!(c.physical_of(1).unwrap().block, block0);
        // The relocated payloads survive bit-exact (BCH pages still
        // decode to the original data through the real codec).
        let real = codec();
        for (lpn, data) in payloads.iter().enumerate() {
            let bits = c.read_logical(lpn).unwrap();
            assert_eq!(
                &real.extract(&bits[..real.code_bits()]).unwrap(),
                data,
                "payload {lpn}"
            );
        }
    }

    #[test]
    fn oversized_codecs_are_rejected() {
        let small = codec();
        let (mut c, _) = loaded_controller(small.as_ref());
        let wide = EccConfig::Bch { m: 8, t: 2 }.build().unwrap();
        let ber = BerModel::default();
        assert!(matches!(
            scrub(&mut c, wide.as_ref(), &ber, &ScrubPolicy::default(), 0),
            Err(ReliabilityError::CodeTooWide { .. })
        ));
        let data = vec![true; wide.data_bits()];
        assert!(matches!(
            write_encoded(&mut c, wide.as_ref(), 0, &data),
            Err(ReliabilityError::CodeTooWide { .. })
        ));
    }
}
