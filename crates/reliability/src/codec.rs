//! The shared page-codec interface, codec selection and per-page
//! syndrome statistics.
//!
//! Every codec of the pipeline — [`crate::hamming::HammingSecDed`], the
//! configurable [`crate::bch::BchCode`] and the pass-through [`NoEcc`]
//! baseline — presents the same [`PageCodec`] surface: encode `k` data
//! bits into an `n`-bit codeword that is stored as one page (plus
//! padding), and decode a received word in place, reporting what the
//! syndromes said. [`DecodeStats`] aggregates those outcomes per page so
//! reports can separate clean, corrected and uncorrectable traffic.

use crate::{ReliabilityError, Result};

/// What one page decode concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// All syndromes zero — the word is a codeword.
    Clean,
    /// Errors found and corrected in place (the count).
    Corrected(usize),
    /// Errors found but beyond the codec's strength; the word is left
    /// as received.
    Detected,
}

/// A block code operating on page-sized codewords.
pub trait PageCodec: Send + Sync {
    /// Human-readable codec name, e.g. `bch(255,223,t=4)`.
    fn name(&self) -> String;

    /// Codeword length `n` in bits.
    fn code_bits(&self) -> usize;

    /// Payload length `k` in bits.
    fn data_bits(&self) -> usize;

    /// Guaranteed correctable errors per codeword (`t`).
    fn correctable(&self) -> usize;

    /// Encodes `k` data bits into an `n`-bit codeword.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::WrongLength`] for a bad buffer.
    fn encode(&self, data: &[bool]) -> Result<Vec<bool>>;

    /// Decodes an `n`-bit received word in place.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::WrongLength`] for a bad buffer.
    fn decode(&self, word: &mut [bool]) -> Result<DecodeOutcome>;

    /// Extracts the `k` data bits from a (decoded) codeword.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::WrongLength`] for a bad buffer.
    fn extract(&self, word: &[bool]) -> Result<Vec<bool>>;

    /// Code rate `k / n`.
    #[allow(clippy::cast_precision_loss)]
    fn rate(&self) -> f64 {
        self.data_bits() as f64 / self.code_bits() as f64
    }
}

/// The pass-through baseline: every bit is payload, nothing is
/// corrected — raw BER *is* the output error rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoEcc {
    bits: usize,
}

impl NoEcc {
    /// A pass-through "codec" of `bits` bits.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        Self { bits }
    }
}

impl PageCodec for NoEcc {
    fn name(&self) -> String {
        "raw".into()
    }
    fn code_bits(&self) -> usize {
        self.bits
    }
    fn data_bits(&self) -> usize {
        self.bits
    }
    fn correctable(&self) -> usize {
        0
    }
    fn encode(&self, data: &[bool]) -> Result<Vec<bool>> {
        if data.len() != self.bits {
            return Err(ReliabilityError::WrongLength {
                what: "data",
                got: data.len(),
                expected: self.bits,
            });
        }
        Ok(data.to_vec())
    }
    fn decode(&self, word: &mut [bool]) -> Result<DecodeOutcome> {
        if word.len() != self.bits {
            return Err(ReliabilityError::WrongLength {
                what: "codeword",
                got: word.len(),
                expected: self.bits,
            });
        }
        Ok(DecodeOutcome::Clean)
    }
    fn extract(&self, word: &[bool]) -> Result<Vec<bool>> {
        Ok(word.to_vec())
    }
}

/// Serializable codec selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccConfig {
    /// No correction: the raw baseline over `bits` bits.
    None {
        /// Bits per page treated as payload.
        bits: usize,
    },
    /// Hamming SEC-DED carrying `data_bits` of payload.
    HammingSecDed {
        /// Payload bits per codeword.
        data_bits: usize,
    },
    /// Binary BCH over GF(2^m) correcting `t` errors per codeword.
    Bch {
        /// Field degree: codeword length is `2^m − 1`.
        m: u32,
        /// Correction strength.
        t: usize,
    },
}

impl EccConfig {
    /// Builds the configured codec.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] for unusable parameters.
    pub fn build(&self) -> Result<Box<dyn PageCodec>> {
        Ok(match *self {
            Self::None { bits } => Box::new(NoEcc::new(bits)),
            Self::HammingSecDed { data_bits } => {
                Box::new(crate::hamming::HammingSecDed::new(data_bits)?)
            }
            Self::Bch { m, t } => Box::new(crate::bch::BchCode::new(m, t)?),
        })
    }

    /// The widest BCH codeword fitting `width` bits (`n = 2^m − 1 ≤
    /// width`), at strength `t`.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] when no supported field fits or
    /// `t` eats the whole payload.
    pub fn bch_for_width(width: usize, t: usize) -> Result<Self> {
        let m = (3..=12u32)
            .rev()
            .find(|&m| (1usize << m) - 1 <= width)
            .ok_or_else(|| ReliabilityError::InvalidCode {
                reason: format!("no BCH codeword fits a {width}-bit page"),
            })?;
        // Validate the strength up front so the config is usable as-is.
        crate::bch::BchCode::new(m, t)?;
        Ok(Self::Bch { m, t })
    }
}

// The vendored serde shim derives only unit-variant enums; the
// data-carrying enums serialize by hand, like the workload layer's ops.
impl serde::Serialize for DecodeOutcome {
    fn to_value(&self) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        #[allow(clippy::cast_precision_loss)]
        serde::Value::Object(match *self {
            Self::Clean => vec![field("outcome", serde::Value::String("clean".into()))],
            Self::Corrected(bits) => vec![
                field("outcome", serde::Value::String("corrected".into())),
                field("bits", serde::Value::Number(bits as f64)),
            ],
            Self::Detected => vec![field("outcome", serde::Value::String("detected".into()))],
        })
    }
}
impl serde::Deserialize for DecodeOutcome {}

impl serde::Serialize for EccConfig {
    fn to_value(&self) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        #[allow(clippy::cast_precision_loss)]
        serde::Value::Object(match *self {
            Self::None { bits } => vec![
                field("kind", serde::Value::String("none".into())),
                field("bits", serde::Value::Number(bits as f64)),
            ],
            Self::HammingSecDed { data_bits } => vec![
                field("kind", serde::Value::String("hamming_secded".into())),
                field("data_bits", serde::Value::Number(data_bits as f64)),
            ],
            Self::Bch { m, t } => vec![
                field("kind", serde::Value::String("bch".into())),
                field("m", serde::Value::Number(f64::from(m))),
                field("t", serde::Value::Number(t as f64)),
            ],
        })
    }
}
impl serde::Deserialize for EccConfig {}

/// Aggregated per-page decode statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DecodeStats {
    /// Pages decoded.
    pub pages: usize,
    /// Pages with all-zero syndromes.
    pub clean_pages: usize,
    /// Pages corrected in place.
    pub corrected_pages: usize,
    /// Total bits corrected across all pages.
    pub corrected_bits: usize,
    /// Pages whose errors exceeded the codec strength.
    pub uncorrectable_pages: usize,
}

impl DecodeStats {
    /// Folds one page outcome into the statistics.
    pub fn record(&mut self, outcome: DecodeOutcome) {
        self.pages += 1;
        match outcome {
            DecodeOutcome::Clean => self.clean_pages += 1,
            DecodeOutcome::Corrected(bits) => {
                self.corrected_pages += 1;
                self.corrected_bits += bits;
            }
            DecodeOutcome::Detected => self.uncorrectable_pages += 1,
        }
    }

    /// Fraction of pages that could not be corrected.
    #[allow(clippy::cast_precision_loss)]
    #[must_use]
    pub fn page_failure_rate(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.uncorrectable_pages as f64 / self.pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ecc_is_transparent() {
        let codec = NoEcc::new(8);
        let data = vec![true, false, true, false, true, true, false, false];
        let word = codec.encode(&data).unwrap();
        assert_eq!(word, data);
        let mut received = word;
        assert_eq!(codec.decode(&mut received).unwrap(), DecodeOutcome::Clean);
        assert_eq!(codec.extract(&received).unwrap(), data);
        assert_eq!(codec.rate(), 1.0);
        assert!(codec.encode(&[true]).is_err());
    }

    #[test]
    fn configs_build_their_codecs() {
        assert_eq!(EccConfig::None { bits: 4 }.build().unwrap().name(), "raw");
        let h = EccConfig::HammingSecDed { data_bits: 11 }.build().unwrap();
        assert_eq!(h.code_bits(), 16);
        let b = EccConfig::Bch { m: 4, t: 2 }.build().unwrap();
        assert_eq!(b.code_bits(), 15);
        assert!(EccConfig::Bch { m: 99, t: 1 }.build().is_err());
    }

    #[test]
    fn bch_width_fitting_picks_the_largest_field() {
        assert_eq!(
            EccConfig::bch_for_width(256, 4).unwrap(),
            EccConfig::Bch { m: 8, t: 4 }
        );
        assert_eq!(
            EccConfig::bch_for_width(16, 2).unwrap(),
            EccConfig::Bch { m: 4, t: 2 }
        );
        assert!(EccConfig::bch_for_width(4, 1).is_err());
    }

    #[test]
    fn stats_aggregate_outcomes() {
        let mut stats = DecodeStats::default();
        stats.record(DecodeOutcome::Clean);
        stats.record(DecodeOutcome::Corrected(3));
        stats.record(DecodeOutcome::Detected);
        stats.record(DecodeOutcome::Detected);
        assert_eq!(stats.pages, 4);
        assert_eq!(stats.corrected_bits, 3);
        assert_eq!(stats.page_failure_rate(), 0.5);
        assert_eq!(DecodeStats::default().page_failure_rate(), 0.0);
    }
}
