//! RBER/UBER reporting: the pipeline's output numbers.
//!
//! * **RBER** — raw bit-error rate: mismatches between a sampled read
//!   and the stored data, before any correction.
//! * **UBER** — uncorrectable bit-error rate: the errors still present
//!   after per-page ECC decode (decoder failures leave their page's
//!   errors in place; miscorrections add the decoder's own flips).
//!
//! Both are measured over the *coded* region of every page so the two
//! rates divide meaningfully.
//!
//! The scan exploits linearity: for a linear code, decoding a received
//! word `r = c + e` is exactly decoding the error pattern `e` against
//! the zero codeword (syndromes of `r` and `e` are equal — pinned in
//! `bch::tests`). So the scan decodes per-page *error patterns* directly
//! and never needs the stored data to be literal codewords — any
//! workload's pages can be scored as if ECC-managed, which is what lets
//! [`ReliabilityObserver`] ride along arbitrary trace replays.

use gnr_flash_array::controller::FlashController;
use gnr_flash_array::nand::NandArray;
use gnr_flash_array::workload::ReplayObserver;
use gnr_flash_array::ArrayError;

use crate::ber::BerModel;
use crate::codec::{DecodeStats, EccConfig, PageCodec};
use crate::readpath::recenter_from;
use crate::{ReliabilityError, Result};

/// One reliability measurement of an array state.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReliabilityPoint {
    /// Ops completed when the point was taken (0 for standalone scans).
    pub op_index: usize,
    /// Coded bits scanned (pages × codeword length).
    pub coded_bits: usize,
    /// Raw bit errors in the coded region.
    pub raw_errors: usize,
    /// `raw_errors / coded_bits`.
    pub rber: f64,
    /// Bit errors remaining after per-page decode.
    pub residual_errors: usize,
    /// `residual_errors / coded_bits`.
    pub uber: f64,
    /// Per-page decode statistics.
    pub decode: DecodeStats,
    /// The reference voltage the scan sensed at (V).
    pub reference: f64,
    /// Mean injected-charge wear per cell (C) — the wear axis of
    /// error-trajectory plots.
    pub mean_injected_charge: f64,
}

/// Scans every page of an array: sample a read at `pass`, diff against
/// `truth` (the data as written — capture it with
/// [`BerModel::noiseless_bits`] *before* ageing the array), decode each
/// page's error pattern, and report raw vs post-ECC error rates.
///
/// `reference` fixes the sense voltage; `None` re-centers on the margin
/// histogram (falling back to the population's decision level).
///
/// # Errors
///
/// [`ReliabilityError::CodeTooWide`] when the codec does not fit the
/// page width; statistics errors propagate as array errors.
pub fn scan_array(
    array: &NandArray,
    truth: &[bool],
    codec: &dyn PageCodec,
    ber: &BerModel,
    reference: Option<f64>,
    pass: u64,
) -> Result<ReliabilityPoint> {
    let _zone = gnr_telemetry::zone!("reliability.scan");
    let config = array.config();
    let width = config.page_width;
    let n = codec.code_bits();
    if n > width {
        return Err(ReliabilityError::CodeTooWide {
            code_bits: n,
            page_width: width,
        });
    }
    let pop = array.population();
    if truth.len() != pop.len() {
        return Err(ReliabilityError::WrongLength {
            what: "truth column",
            got: truth.len(),
            expected: pop.len(),
        });
    }
    let batch = array.batch();
    // One context build serves both the re-centering histogram and the
    // sampled read — the columnar work is the scan's dominant cost.
    let ctx = ber.context(pop, batch);
    let reference = reference.unwrap_or_else(|| {
        recenter_from(&ctx, 64).unwrap_or_else(|| pop.decision_level().as_volts())
    });
    let read = ctx.sample_all(batch, reference, pass);

    // Per-page error patterns, decoded in parallel page chunks but
    // reduced in page order — deterministic regardless of scheduling.
    let pages = config.pages();
    let page_results: Vec<Result<(usize, usize, crate::codec::DecodeOutcome)>> =
        batch.map_chunks(pages, 1, |page, _| {
            let start = page * width;
            let mut pattern: Vec<bool> = (start..start + n).map(|i| truth[i] != read[i]).collect();
            let raw = pattern.iter().filter(|&&b| b).count();
            let outcome = codec.decode(&mut pattern)?;
            let residual = pattern.iter().filter(|&&b| b).count();
            Ok((raw, residual, outcome))
        });

    let mut decode = DecodeStats::default();
    let mut raw_errors = 0usize;
    let mut residual_errors = 0usize;
    for result in page_results {
        let (raw, residual, outcome) = result?;
        raw_errors += raw;
        residual_errors += residual;
        decode.record(outcome);
    }
    // Telemetry lands after the page-ordered reduction, on the caller
    // thread, so the journal stays deterministic under rayon.
    gnr_telemetry::counter_add!("reliability.scans", 1);
    gnr_telemetry::counter_add!("reliability.decode.pages", decode.pages as u64);
    gnr_telemetry::counter_add!(
        "reliability.decode.uncorrectable",
        decode.uncorrectable_pages as u64
    );
    if decode.uncorrectable_pages > 0 {
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::DecodeFailure {
            pages: decode.uncorrectable_pages as u64,
        });
    }
    let coded_bits = pages * n;
    #[allow(clippy::cast_precision_loss)]
    Ok(ReliabilityPoint {
        op_index: 0,
        coded_bits,
        raw_errors,
        rber: raw_errors as f64 / coded_bits as f64,
        residual_errors,
        uber: residual_errors as f64 / coded_bits as f64,
        decode,
        reference,
        mean_injected_charge: pop.wear_summary().map_err(ReliabilityError::Array)?.mean,
    })
}

/// A [`ReplayObserver`] recording raw vs post-ECC error trajectories on
/// the replayer's snapshot cadence: every observation scans the whole
/// array against its *current* stored data, so the trajectory tracks how
/// wear and disturb accumulated by the trace move both error rates.
pub struct ReliabilityObserver {
    codec: Box<dyn PageCodec>,
    ber: BerModel,
    reference: Option<f64>,
    next_pass: u64,
    /// The recorded trajectory, one point per observation.
    pub trajectory: Vec<ReliabilityPoint>,
}

impl ReliabilityObserver {
    /// Builds an observer sampling with `ber` and decoding with the
    /// configured codec. `reference = None` re-centers at every
    /// observation.
    ///
    /// # Errors
    ///
    /// Codec construction errors.
    pub fn new(ecc: &EccConfig, ber: BerModel, reference: Option<f64>) -> Result<Self> {
        Ok(Self {
            codec: ecc.build()?,
            ber,
            reference,
            next_pass: 0,
            trajectory: Vec::new(),
        })
    }

    /// The codec in use.
    #[must_use]
    pub fn codec(&self) -> &dyn PageCodec {
        self.codec.as_ref()
    }

    /// The pass counter the next observation will sample with — the
    /// piece of observer state a campaign checkpoint must carry: the
    /// read-noise stream is seeded per pass, so a resumed observer
    /// continues the *same* noise sequence only if its counter is
    /// restored (the trajectory itself may restart empty; trajectories
    /// concatenate across a resume, noise streams must not).
    #[must_use]
    pub fn next_pass(&self) -> u64 {
        self.next_pass
    }

    /// Restores the pass counter after a checkpoint resume (see
    /// [`Self::next_pass`]).
    pub fn set_next_pass(&mut self, pass: u64) {
        self.next_pass = pass;
    }
}

impl core::fmt::Debug for ReliabilityObserver {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReliabilityObserver")
            .field("codec", &self.codec.name())
            .field("ber", &self.ber)
            .field("reference", &self.reference)
            .field("points", &self.trajectory.len())
            .finish()
    }
}

impl ReplayObserver for ReliabilityObserver {
    fn observe(
        &mut self,
        controller: &FlashController,
        op_index: usize,
    ) -> gnr_flash_array::Result<()> {
        let array = controller.array();
        let truth = self.ber.noiseless_bits(array.population(), array.batch());
        let pass = self.next_pass;
        self.next_pass += 1;
        let mut point = scan_array(
            array,
            &truth,
            self.codec.as_ref(),
            &self.ber,
            self.reference,
            pass,
        )
        // The observer seam speaks the array layer's error type.
        .map_err(|e| ArrayError::Snapshot(format!("reliability scan: {e}")))?;
        point.op_index = op_index;
        self.trajectory.push(point);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_flash::engine::BatchSimulator;
    use gnr_flash_array::nand::NandConfig;
    use gnr_flash_array::workload::{replay_observed, PagePattern, ReplayOptions, WorkloadTrace};

    fn programmed_array() -> NandArray {
        let mut array = NandArray::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 32,
        });
        for block in 0..2 {
            for page in 0..2 {
                let bits = PagePattern::Seeded {
                    seed: (block * 2 + page) as u64,
                }
                .expand(32);
                array.program_page(block, page, &bits).unwrap();
            }
        }
        array
    }

    #[test]
    fn quiet_arrays_have_zero_error_rates() {
        let array = programmed_array();
        let ber = BerModel {
            read_noise_sigma: 0.02,
            ..BerModel::default()
        };
        let codec = EccConfig::Bch { m: 4, t: 2 }.build().unwrap();
        let truth = ber.noiseless_bits(array.population(), array.batch());
        let point = scan_array(&array, &truth, codec.as_ref(), &ber, None, 0).unwrap();
        assert_eq!(point.raw_errors, 0);
        assert_eq!(point.residual_errors, 0);
        assert_eq!(point.decode.clean_pages, 4);
        assert_eq!(point.coded_bits, 4 * 15);
    }

    #[test]
    fn ecc_pushes_uber_below_rber() {
        let array = programmed_array();
        // Noisy enough for raw errors, quiet enough that t=2 over 15
        // bits corrects nearly every page.
        let ber = BerModel {
            read_noise_sigma: 0.45,
            ..BerModel::default()
        };
        let codec = EccConfig::Bch { m: 4, t: 2 }.build().unwrap();
        let truth = ber.noiseless_bits(array.population(), array.batch());
        // Accumulate over passes for statistics.
        let mut raw = 0usize;
        let mut residual = 0usize;
        for pass in 0..200 {
            let point = scan_array(&array, &truth, codec.as_ref(), &ber, None, pass).unwrap();
            raw += point.raw_errors;
            residual += point.residual_errors;
        }
        assert!(raw > 0, "noise must produce raw errors");
        assert!(
            residual * 4 < raw,
            "ECC must remove most errors: raw {raw}, residual {residual}"
        );
    }

    #[test]
    fn scans_are_bit_identical_across_runs_and_layouts() {
        let array = programmed_array();
        let ber = BerModel::default();
        let codec = EccConfig::Bch { m: 4, t: 2 }.build().unwrap();
        let truth = ber.noiseless_bits(array.population(), array.batch());
        let a = scan_array(&array, &truth, codec.as_ref(), &ber, None, 5).unwrap();
        let b = scan_array(&array, &truth, codec.as_ref(), &ber, None, 5).unwrap();
        assert_eq!(a, b);
        let sequential = array.clone().with_batch(BatchSimulator::sequential());
        let c = scan_array(&sequential, &truth, codec.as_ref(), &ber, None, 5).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn observer_records_trajectories_during_replay() {
        let config = NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 16,
        };
        let mut controller = FlashController::new(config);
        let capacity = controller.logical_capacity();
        let trace = WorkloadTrace::gc_churn(2 * capacity, capacity, 9);
        let mut observer =
            ReliabilityObserver::new(&EccConfig::Bch { m: 4, t: 2 }, BerModel::default(), None)
                .unwrap();
        let options = ReplayOptions {
            snapshot_interval: 4,
            margin_scan: false,
        };
        let report = replay_observed(&mut controller, &trace, &options, &mut observer).unwrap();
        assert_eq!(observer.trajectory.len(), report.snapshots.len());
        // Wear accumulates monotonically along the trajectory.
        for pair in observer.trajectory.windows(2) {
            assert!(pair[1].mean_injected_charge >= pair[0].mean_injected_charge - 1e-30);
            assert!(pair[1].op_index >= pair[0].op_index);
        }
        assert!(observer.trajectory.iter().all(|p| p.uber <= p.rber));
    }
}
