//! Binary BCH(n, k, t) codes over GF(2^m): the workhorse flash ECC.
//!
//! Codeword length `n = 2^m − 1`; the generator polynomial is the LCM of
//! the minimal polynomials of `α, α³, …, α^{2t−1}`, giving designed
//! distance `2t + 1` — any `t` bit errors per codeword are corrected.
//! Encoding is systematic (data occupies the high-degree positions, so
//! payload bits are recoverable without decoding). Decoding is the
//! standard chain: syndromes → Berlekamp–Massey error locator → Chien
//! search → bit flips, with every consistency check failing closed to
//! [`DecodeOutcome::Detected`].
//!
//! Because the code is linear and the decoder syndrome-driven, decoding
//! a received word `r = c + e` depends only on the error pattern `e` —
//! the property the array-scan path exploits to measure post-ECC error
//! rates directly from error patterns without materialising codewords.

use crate::codec::{DecodeOutcome, PageCodec};
use crate::gf::Gf2m;
use crate::{ReliabilityError, Result};

/// A binary BCH code with precomputed field tables and generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchCode {
    gf: Gf2m,
    t: usize,
    /// Generator polynomial over GF(2), ascending degree; `g[deg] = true`.
    generator: Vec<bool>,
    k: usize,
}

impl BchCode {
    /// Builds BCH(2^m − 1, k, t); `k` falls out of the generator degree.
    ///
    /// # Errors
    ///
    /// [`ReliabilityError::InvalidCode`] for unsupported `m`, `t = 0`,
    /// or a strength so high the code has no payload left.
    pub fn new(m: u32, t: usize) -> Result<Self> {
        let gf = Gf2m::new(m)?;
        let n = gf.order();
        if t == 0 {
            return Err(ReliabilityError::InvalidCode {
                reason: "BCH strength t must be positive (use NoEcc for t = 0)".into(),
            });
        }
        if 2 * t + 1 > n {
            return Err(ReliabilityError::InvalidCode {
                reason: format!("designed distance {} exceeds n = {n}", 2 * t + 1),
            });
        }
        let generator = generator_poly(&gf, t);
        let k = n + 1 - generator.len();
        if k == 0 {
            return Err(ReliabilityError::InvalidCode {
                reason: format!("BCH(m={m}, t={t}) leaves no payload bits"),
            });
        }
        Ok(Self {
            gf,
            t,
            generator,
            k,
        })
    }

    /// Syndromes `S_1..S_2t` of a word, evaluated over its set bits only
    /// (sparse words — error patterns — cost almost nothing).
    fn syndromes(&self, word: &[bool]) -> Vec<u16> {
        let mut s = vec![0u16; 2 * self.t];
        for (i, _) in word.iter().enumerate().filter(|&(_, &b)| b) {
            for (j, slot) in s.iter_mut().enumerate() {
                *slot ^= self.gf.alpha_pow(i * (j + 1));
            }
        }
        s
    }

    /// Berlekamp–Massey over GF(2^m): the minimal LFSR (error locator
    /// polynomial, ascending degree) generating the syndrome sequence.
    fn error_locator(&self, s: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let mut c: Vec<u16> = vec![1];
        let mut b: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b_disc = 1u16;
        for n_i in 0..s.len() {
            let mut d = s[n_i];
            for i in 1..c.len().min(l + 1) {
                d ^= gf.mul(c[i], s[n_i - i]);
            }
            if d == 0 {
                shift += 1;
                continue;
            }
            let coef = gf.mul(d, gf.inv(b_disc));
            let c_prev = c.clone();
            if c.len() < b.len() + shift {
                c.resize(b.len() + shift, 0);
            }
            for (i, &bv) in b.iter().enumerate() {
                c[i + shift] ^= gf.mul(coef, bv);
            }
            if 2 * l <= n_i {
                l = n_i + 1 - l;
                b = c_prev;
                b_disc = d;
                shift = 1;
            } else {
                shift += 1;
            }
        }
        c.truncate(l + 1);
        c
    }

    /// Chien search: error positions `p` with `σ(α^{−p}) = 0`.
    fn error_positions(&self, locator: &[u16]) -> Vec<usize> {
        let gf = &self.gf;
        let n = gf.order();
        let mut positions = Vec::new();
        for j in 0..n {
            let mut acc = 0u16;
            for (deg, &coef) in locator.iter().enumerate() {
                if coef != 0 {
                    acc ^= gf.mul(coef, gf.alpha_pow(deg * j));
                }
            }
            if acc == 0 {
                positions.push((n - j) % n);
            }
        }
        positions
    }
}

/// The generator polynomial: product of the distinct minimal polynomials
/// of `α^1, α^3, …, α^{2t−1}` (even powers share cosets with odd ones).
fn generator_poly(gf: &Gf2m, t: usize) -> Vec<bool> {
    let n = gf.order();
    let mut covered = vec![false; n];
    // Product accumulates over GF(2^m) but lands in GF(2).
    let mut g: Vec<u16> = vec![1];
    for i in (1..=2 * t - 1).step_by(2) {
        if covered[i] {
            continue;
        }
        // Cyclotomic coset of i: {i, 2i, 4i, …} mod n.
        let mut coset = Vec::new();
        let mut j = i;
        loop {
            coset.push(j);
            covered[j] = true;
            j = (2 * j) % n;
            if j == i {
                break;
            }
        }
        // Minimal polynomial: Π (x + α^j) over the coset.
        for &j in &coset {
            let root = gf.alpha_pow(j);
            let mut next = vec![0u16; g.len() + 1];
            for (deg, &coef) in g.iter().enumerate() {
                next[deg + 1] ^= coef; // x · g
                next[deg] ^= gf.mul(root, coef); // α^j · g
            }
            g = next;
        }
    }
    g.iter()
        .map(|&c| {
            debug_assert!(c <= 1, "generator coefficients must lie in GF(2)");
            c == 1
        })
        .collect()
}

impl PageCodec for BchCode {
    fn name(&self) -> String {
        format!("bch({},{},t={})", self.code_bits(), self.k, self.t)
    }

    fn code_bits(&self) -> usize {
        self.gf.order()
    }

    fn data_bits(&self) -> usize {
        self.k
    }

    fn correctable(&self) -> usize {
        self.t
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>> {
        if data.len() != self.k {
            return Err(ReliabilityError::WrongLength {
                what: "data",
                got: data.len(),
                expected: self.k,
            });
        }
        let n = self.code_bits();
        let parity = n - self.k;
        // Systematic LFSR division: remainder of data(x)·x^{n−k} mod g.
        let mut reg = vec![false; parity];
        for &bit in data.iter().rev() {
            let feedback = bit ^ reg[parity - 1];
            for i in (1..parity).rev() {
                reg[i] = reg[i - 1] ^ (feedback & self.generator[i]);
            }
            reg[0] = feedback & self.generator[0];
        }
        let mut word = vec![false; n];
        word[..parity].copy_from_slice(&reg);
        word[parity..].copy_from_slice(data);
        Ok(word)
    }

    fn decode(&self, word: &mut [bool]) -> Result<DecodeOutcome> {
        if word.len() != self.code_bits() {
            return Err(ReliabilityError::WrongLength {
                what: "codeword",
                got: word.len(),
                expected: self.code_bits(),
            });
        }
        let s = self.syndromes(word);
        if s.iter().all(|&x| x == 0) {
            return Ok(DecodeOutcome::Clean);
        }
        let locator = self.error_locator(&s);
        let degree = locator.len() - 1;
        if degree > self.t {
            return Ok(DecodeOutcome::Detected);
        }
        let positions = self.error_positions(&locator);
        if positions.len() != degree {
            // The locator does not factor into distinct roots: more than
            // t errors — fail closed.
            return Ok(DecodeOutcome::Detected);
        }
        for &p in &positions {
            word[p] = !word[p];
        }
        // Consistency: the corrected word must be a codeword; un-flip
        // and report detection otherwise (defence in depth — Chien root
        // counting already catches the standard failure modes).
        if self.syndromes(word).iter().any(|&x| x != 0) {
            for &p in &positions {
                word[p] = !word[p];
            }
            return Ok(DecodeOutcome::Detected);
        }
        Ok(DecodeOutcome::Corrected(positions.len()))
    }

    fn extract(&self, word: &[bool]) -> Result<Vec<bool>> {
        if word.len() != self.code_bits() {
            return Err(ReliabilityError::WrongLength {
                what: "codeword",
                got: word.len(),
                expected: self.code_bits(),
            });
        }
        Ok(word[self.code_bits() - self.k..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn classic_code_dimensions_come_out_right() {
        // The textbook table: (15, 11, 1), (15, 7, 2), (15, 5, 3),
        // (255, 239, 2), (255, 223, 4).
        for (m, t, k) in [(4, 1, 11), (4, 2, 7), (4, 3, 5), (8, 2, 239), (8, 4, 223)] {
            let code = BchCode::new(m, t).unwrap();
            assert_eq!(code.data_bits(), k, "BCH(2^{m}-1, t={t})");
        }
    }

    #[test]
    fn round_trip_without_errors_is_clean() {
        let code = BchCode::new(5, 3).unwrap(); // (31, 16, 3)
        let data: Vec<bool> = (0..16).map(|i| i % 3 != 1).collect();
        let word = code.encode(&data).unwrap();
        let mut received = word.clone();
        assert_eq!(code.decode(&mut received).unwrap(), DecodeOutcome::Clean);
        assert_eq!(code.extract(&received).unwrap(), data);
    }

    #[test]
    fn corrects_up_to_t_errors_anywhere() {
        let code = BchCode::new(6, 3).unwrap(); // (63, 45, 3)
        let mut rng = StdRng::seed_from_u64(0xbc4);
        for trial in 0..50 {
            let data: Vec<bool> = (0..45).map(|_| rng.gen_range(0u8..2) == 1).collect();
            let word = code.encode(&data).unwrap();
            let e = rng.gen_range(1usize..4);
            let mut received = word.clone();
            let mut flipped = Vec::new();
            while flipped.len() < e {
                let p = rng.gen_range(0usize..63);
                if !flipped.contains(&p) {
                    flipped.push(p);
                    received[p] = !received[p];
                }
            }
            assert_eq!(
                code.decode(&mut received).unwrap(),
                DecodeOutcome::Corrected(e),
                "trial {trial}: {e} errors at {flipped:?}"
            );
            assert_eq!(received, word, "trial {trial}");
        }
    }

    #[test]
    fn beyond_t_fails_closed_or_lands_on_a_codeword() {
        let code = BchCode::new(4, 2).unwrap(); // (15, 7, 2)
        let data = vec![true, false, true, true, false, false, true];
        let word = code.encode(&data).unwrap();
        let mut rng = StdRng::seed_from_u64(0xbc5);
        for _ in 0..200 {
            let mut received = word.clone();
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < 3 {
                flipped.insert(rng.gen_range(0usize..15));
            }
            for &p in &flipped {
                received[p] = !received[p];
            }
            let before = received.clone();
            match code.decode(&mut received).unwrap() {
                DecodeOutcome::Detected => assert_eq!(received, before, "left as received"),
                DecodeOutcome::Corrected(c) => {
                    // Miscorrection is possible past t, but the output
                    // must be a valid codeword within t of the input.
                    assert!(c <= 2);
                    let dist = received.iter().zip(&before).filter(|(a, b)| a != b).count();
                    assert!(dist <= 2);
                    assert_ne!(received, word, "3 errors cannot decode to the original");
                }
                DecodeOutcome::Clean => panic!("3 flips cannot leave syndromes clean"),
            }
        }
    }

    #[test]
    fn error_pattern_decoding_equals_codeword_decoding() {
        // Linearity: decoding r = c + e is the same as decoding e
        // against the zero codeword — the array-scan shortcut.
        let code = BchCode::new(4, 2).unwrap();
        let data = vec![false, true, true, false, true, false, false];
        let word = code.encode(&data).unwrap();
        let mut received = word.clone();
        received[3] = !received[3];
        received[11] = !received[11];
        let mut pattern = vec![false; 15];
        pattern[3] = true;
        pattern[11] = true;
        assert_eq!(
            code.decode(&mut received).unwrap(),
            code.decode(&mut pattern).unwrap()
        );
        assert_eq!(received, word);
        assert!(pattern.iter().all(|&b| !b), "pattern decodes to zero");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(BchCode::new(4, 0).is_err());
        assert!(BchCode::new(4, 8).is_err()); // 2t+1 > 15
        assert!(BchCode::new(2, 1).is_err());
        // The degenerate-but-valid corner: BCH(7, 1, 3) is the length-7
        // repetition code.
        let repetition = BchCode::new(3, 3).unwrap();
        assert_eq!(repetition.data_bits(), 1);
        let word = repetition.encode(&[true]).unwrap();
        assert_eq!(word, vec![true; 7]);
    }
}
