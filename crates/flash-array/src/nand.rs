//! NAND organisation: strings of cells grouped into pages and blocks.
//!
//! FN programming is what makes NAND dense and parallel (§II of the
//! paper: "it requires very small programming current (< 1nA) per cell
//! thus allowing many cells to be programmed at a time"). This module
//! implements page-granularity programming with ISPP, block-granularity
//! erase, program-inhibit bias on unselected pages and the associated
//! disturb accounting.
//!
//! Bit convention: `true` = erased = logic '1'; `false` = programmed =
//! logic '0' (matching the paper's state naming).

use gnr_flash::engine::BatchSimulator;
use gnr_flash::threshold::LogicState;
use gnr_units::Voltage;

use crate::cell::FlashCell;
use crate::disturb::{apply_disturb, DisturbBias};
use crate::ispp::{IsppEraser, IsppProgrammer};
use crate::{ArrayError, Result};

/// Shape of a NAND array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NandConfig {
    /// Number of erase blocks.
    pub blocks: usize,
    /// Pages per block (wordlines).
    pub pages_per_block: usize,
    /// Cells per page (bitlines).
    pub page_width: usize,
}

impl Default for NandConfig {
    fn default() -> Self {
        Self {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        }
    }
}

/// One erase block.
#[derive(Debug, Clone)]
struct Block {
    pages: Vec<Vec<FlashCell>>,
    page_erased: Vec<bool>,
    erase_count: u64,
}

/// A NAND array of MLGNR-CNT cells.
#[derive(Debug, Clone)]
pub struct NandArray {
    config: NandConfig,
    blocks: Vec<Block>,
    bias: DisturbBias,
    programmer: IsppProgrammer,
    eraser: IsppEraser,
    batch: BatchSimulator,
}

impl NandArray {
    /// Builds an array of fresh paper cells.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn new(config: NandConfig) -> Self {
        assert!(
            config.blocks > 0 && config.pages_per_block > 0 && config.page_width > 0,
            "array dimensions must be positive"
        );
        let make_block = || Block {
            pages: (0..config.pages_per_block)
                .map(|_| {
                    (0..config.page_width)
                        .map(|_| FlashCell::paper_cell())
                        .collect()
                })
                .collect(),
            page_erased: vec![true; config.pages_per_block],
            erase_count: 0,
        };
        Self {
            config,
            blocks: (0..config.blocks).map(|_| make_block()).collect(),
            bias: DisturbBias::default(),
            programmer: IsppProgrammer::nominal(),
            eraser: IsppEraser::nominal(),
            batch: BatchSimulator::new(),
        }
    }

    /// The array shape.
    #[must_use]
    pub fn config(&self) -> NandConfig {
        self.config
    }

    /// Replaces the batch executor (e.g. [`BatchSimulator::sequential`]
    /// for parity testing or single-core profiling baselines).
    #[must_use]
    pub fn with_batch(mut self, batch: BatchSimulator) -> Self {
        self.batch = batch;
        self
    }

    /// The batch executor driving page programs and block erases.
    #[must_use]
    pub fn batch(&self) -> &BatchSimulator {
        &self.batch
    }

    /// Erase count of a block (wear metric).
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad block index.
    pub fn erase_count(&self, block: usize) -> Result<u64> {
        Ok(self.block(block)?.erase_count)
    }

    /// `true` when the page has not been written since its last erase.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for bad indices.
    pub fn is_page_erased(&self, block: usize, page: usize) -> Result<bool> {
        let b = self.block(block)?;
        b.page_erased
            .get(page)
            .copied()
            .ok_or(ArrayError::AddressOutOfRange {
                kind: "page",
                index: page,
                len: self.config.pages_per_block,
            })
    }

    /// Programs a page: cells with `false` bits are ISPP-programmed,
    /// `true` bits are left erased (program-inhibited). Every cell of the
    /// *other* pages in the block receives one pass-voltage disturb
    /// exposure.
    ///
    /// # Errors
    ///
    /// [`ArrayError::WrongPageWidth`], [`ArrayError::PageNotErased`],
    /// address errors, and ISPP verify failures.
    pub fn program_page(&mut self, block: usize, page: usize, bits: &[bool]) -> Result<()> {
        if bits.len() != self.config.page_width {
            return Err(ArrayError::WrongPageWidth {
                got: bits.len(),
                expected: self.config.page_width,
            });
        }
        if !self.is_page_erased(block, page)? {
            return Err(ArrayError::PageNotErased { block, page });
        }
        let programmer = self.programmer;
        let bias = self.bias;
        let pages_per_block = self.config.pages_per_block;
        let batch = self.batch.clone();
        let b = self.block_mut(block)?;
        // FN programming "allows many cells to be programmed at a time"
        // (§II): fan the selected cells of the page out through the batch
        // engine. Cells run their full ISPP ladders independently; the
        // first failure (if any) is reported after the whole page ran.
        let selected: Vec<&mut FlashCell> = b.pages[page]
            .iter_mut()
            .zip(bits)
            .filter_map(|(cell, &bit)| (!bit).then_some(cell))
            .collect();
        let reports = programmer.program_batch(selected, &batch);
        // Pulses were applied whether or not every verify passed: the
        // page is no longer erased, and the unselected pages of the
        // block saw their pass-voltage exposure. Record both before
        // propagating the first error.
        b.page_erased[page] = false;
        for p in 0..pages_per_block {
            if p == page {
                continue;
            }
            for cell in &mut b.pages[p] {
                apply_disturb(cell, bias.v_pass_program, bias.program_exposure, 1);
            }
        }
        for report in reports {
            report?;
        }
        Ok(())
    }

    /// Reads a page; unselected pages of the block receive one
    /// read-disturb exposure each.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn read_page(&mut self, block: usize, page: usize) -> Result<Vec<bool>> {
        let bias = self.bias;
        let pages_per_block = self.config.pages_per_block;
        let b = self.block_mut(block)?;
        if page >= pages_per_block {
            return Err(ArrayError::AddressOutOfRange {
                kind: "page",
                index: page,
                len: pages_per_block,
            });
        }
        let bits = b.pages[page]
            .iter()
            .map(|c| c.read() == LogicState::Erased1)
            .collect();
        for p in 0..pages_per_block {
            if p == page {
                continue;
            }
            for cell in &mut b.pages[p] {
                apply_disturb(cell, bias.v_pass_read, bias.read_exposure, 1);
            }
        }
        Ok(bits)
    }

    /// Erases a whole block (the only erase granularity NAND offers).
    ///
    /// # Errors
    ///
    /// Address errors and ISPP verify failures.
    pub fn erase_block(&mut self, block: usize) -> Result<()> {
        let eraser = self.eraser;
        let batch = self.batch.clone();
        let b = self.block_mut(block)?;
        // Block erase hits every cell of the block at once — the batch
        // engine runs one erase transient (or ISPP ladder) per cell in
        // parallel.
        let cells: Vec<&mut FlashCell> = b.pages.iter_mut().flatten().collect();
        let results = batch.scatter(cells, |cell| {
            let engine = batch.engine_for(cell.device());
            // Already-erased cells pass verify on the first rung.
            if !cell.verify_erase(Voltage::from_volts(0.3)) {
                eraser.erase_with(cell, &engine).map(|_| ())
            } else {
                // Erase pulses hit every cell of the block regardless.
                cell.erase_default_with(&engine)
            }
        });
        // The erase stress hit every cell of the block whether or not
        // every ladder verified, so the wear counter advances before any
        // error propagates; `page_erased` stays false on failure, which
        // forces a retry before the pages can be programmed again.
        b.erase_count += 1;
        for result in results {
            result?;
        }
        b.page_erased.fill(true);
        Ok(())
    }

    /// Direct cell access for analyses (threshold maps, disturb margins).
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn cell(&self, block: usize, page: usize, column: usize) -> Result<&FlashCell> {
        let b = self.block(block)?;
        let p = b.pages.get(page).ok_or(ArrayError::AddressOutOfRange {
            kind: "page",
            index: page,
            len: self.config.pages_per_block,
        })?;
        p.get(column).ok_or(ArrayError::AddressOutOfRange {
            kind: "column",
            index: column,
            len: self.config.page_width,
        })
    }

    fn block(&self, idx: usize) -> Result<&Block> {
        self.blocks.get(idx).ok_or(ArrayError::AddressOutOfRange {
            kind: "block",
            index: idx,
            len: self.config.blocks,
        })
    }

    fn block_mut(&mut self, idx: usize) -> Result<&mut Block> {
        let len = self.config.blocks;
        self.blocks
            .get_mut(idx)
            .ok_or(ArrayError::AddressOutOfRange {
                kind: "block",
                index: idx,
                len,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NandArray {
        NandArray::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    #[test]
    fn fresh_array_reads_all_ones() {
        let mut a = tiny();
        assert_eq!(a.read_page(0, 0).unwrap(), vec![true; 4]);
    }

    #[test]
    fn program_and_read_back_pattern() {
        let mut a = tiny();
        let pattern = vec![true, false, false, true];
        a.program_page(0, 0, &pattern).unwrap();
        assert_eq!(a.read_page(0, 0).unwrap(), pattern);
        // The other page of the block is untouched.
        assert_eq!(a.read_page(0, 1).unwrap(), vec![true; 4]);
    }

    #[test]
    fn erase_before_write_enforced() {
        let mut a = tiny();
        a.program_page(0, 0, &[false, false, false, false]).unwrap();
        let err = a.program_page(0, 0, &[true, true, true, true]).unwrap_err();
        assert!(matches!(err, ArrayError::PageNotErased { .. }));
        a.erase_block(0).unwrap();
        assert_eq!(a.read_page(0, 0).unwrap(), vec![true; 4]);
        a.program_page(0, 0, &[true, true, false, true]).unwrap();
    }

    #[test]
    fn erase_counts_track_wear() {
        let mut a = tiny();
        assert_eq!(a.erase_count(0).unwrap(), 0);
        a.erase_block(0).unwrap();
        a.erase_block(0).unwrap();
        assert_eq!(a.erase_count(0).unwrap(), 2);
        assert_eq!(a.erase_count(1).unwrap(), 0);
    }

    #[test]
    fn wrong_page_width_rejected() {
        let mut a = tiny();
        let err = a.program_page(0, 0, &[true]).unwrap_err();
        assert!(matches!(err, ArrayError::WrongPageWidth { .. }));
    }

    #[test]
    fn bad_addresses_rejected() {
        let mut a = tiny();
        assert!(a.read_page(5, 0).is_err());
        assert!(a.read_page(0, 9).is_err());
        assert!(a.cell(0, 0, 99).is_err());
        assert!(a.erase_block(7).is_err());
    }

    #[test]
    fn disturb_does_not_flip_neighbours() {
        let mut a = tiny();
        a.program_page(0, 0, &[false; 4]).unwrap();
        // Hammer page 0 with reads; page 1 cells accumulate read disturb
        // but must still read erased.
        for _ in 0..200 {
            let _ = a.read_page(0, 0).unwrap();
        }
        assert_eq!(a.read_page(0, 1).unwrap(), vec![true; 4]);
    }
}
