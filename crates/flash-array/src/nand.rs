//! NAND organisation: strings of cells grouped into pages and blocks.
//!
//! FN programming is what makes NAND dense and parallel (§II of the
//! paper: "it requires very small programming current (< 1nA) per cell
//! thus allowing many cells to be programmed at a time"). This module
//! implements page-granularity programming with ISPP, block-granularity
//! erase, program-inhibit bias on unselected pages and the associated
//! disturb accounting.
//!
//! The cell state lives in a struct-of-arrays [`CellPopulation`]: flat
//! per-cell columns sharing one device blueprint, so the array scales to
//! millions of cells (64×64×256 and beyond) in memory proportional to
//! per-cell *state*. [`NandArray::cell`] materialises an owning
//! [`FlashCell`] view of one cell for analyses.
//!
//! Bit convention: `true` = erased = logic '1'; `false` = programmed =
//! logic '0' (matching the paper's state naming).

use gnr_flash::backend::CellBackend;
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::BatchSimulator;
use gnr_flash::threshold::LogicState;
use gnr_units::Voltage;

use crate::cell::FlashCell;
use crate::disturb::DisturbBias;
use crate::fault::FaultPlan;
use crate::ispp::{IsppEraser, IsppProgrammer};
use crate::pe::operation::{erase_verify_cells, BlockEraseReport, EraseVerify, SoftProgram};
use crate::population::{CellPopulation, PopulationSnapshot};
use crate::{ArrayError, Result};

/// Shape of a NAND array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NandConfig {
    /// Number of erase blocks.
    pub blocks: usize,
    /// Pages per block (wordlines).
    pub pages_per_block: usize,
    /// Cells per page (bitlines).
    pub page_width: usize,
}

impl NandConfig {
    /// Total cells in the array.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.blocks * self.pages_per_block * self.page_width
    }

    /// Total pages in the array.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.blocks * self.pages_per_block
    }

    /// Logical pages a controller exposes over this shape: the physical
    /// page count less one block of over-provisioning (GC headroom) —
    /// the single home of that policy. A single-block shape has no
    /// over-provisioning to give and reports zero (the controller
    /// rejects such shapes up front rather than deadlocking later).
    #[must_use]
    pub fn logical_pages(&self) -> usize {
        self.blocks.saturating_sub(1) * self.pages_per_block
    }
}

impl Default for NandConfig {
    fn default() -> Self {
        Self {
            blocks: 4,
            pages_per_block: 4,
            page_width: 16,
        }
    }
}

/// Serializable full state of a [`NandArray`]: the shape, the per-cell
/// state columns, and the page/block bookkeeping. The disturb bias,
/// ISPP programmer/eraser and batch executor are non-configurable
/// nominals — [`NandArray::restore_state`] re-creates them exactly as
/// [`NandArray::with_population`] would, so a restored array behaves
/// bit-identically to the one that was snapshotted.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArraySnapshot {
    /// The array shape.
    pub config: NandConfig,
    /// The per-cell state columns.
    pub population: PopulationSnapshot,
    /// Per-page erased flags, indexed `block * pages_per_block + page`.
    pub page_erased: Vec<bool>,
    /// Per-block erase counters.
    pub erase_count: Vec<u64>,
}

impl ArraySnapshot {
    /// Decodes a snapshot from an already-parsed [`serde::Value`] tree
    /// (what this shim's serializer writes).
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing field `{name}`")))
        };
        let dim = |name: &str| -> Result<usize> {
            field("config")?
                .get(name)
                .and_then(serde::Value::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| ArrayError::Snapshot(format!("bad config field `{name}`")))
        };
        let config = NandConfig {
            blocks: dim("blocks")?,
            pages_per_block: dim("pages_per_block")?,
            page_width: dim("page_width")?,
        };
        let page_erased = field("page_erased")?
            .as_array()
            .ok_or_else(|| ArrayError::Snapshot("`page_erased` must be an array".into()))?
            .iter()
            .map(|v| match v {
                serde::Value::Bool(b) => Ok(*b),
                _ => Err(ArrayError::Snapshot("non-bool in `page_erased`".into())),
            })
            .collect::<Result<Vec<bool>>>()?;
        let erase_count = field("erase_count")?
            .as_array()
            .ok_or_else(|| ArrayError::Snapshot("`erase_count` must be an array".into()))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| ArrayError::Snapshot("non-integer in `erase_count`".into()))
            })
            .collect::<Result<Vec<u64>>>()?;
        Ok(Self {
            config,
            population: PopulationSnapshot::from_value(field("population")?)?,
            page_erased,
            erase_count,
        })
    }
}

/// A NAND array of MLGNR-CNT cells over struct-of-arrays state.
#[derive(Debug, Clone)]
pub struct NandArray {
    config: NandConfig,
    pop: CellPopulation,
    /// Per-page erased flags, indexed `block * pages_per_block + page`.
    page_erased: Vec<bool>,
    /// Per-block erase counters (wear metric).
    erase_count: Vec<u64>,
    bias: DisturbBias,
    programmer: IsppProgrammer,
    eraser: IsppEraser,
    batch: BatchSimulator,
    /// Injected fault schedule (None = fault-free). Not part of array
    /// snapshots: the plan is configuration, like the device backend,
    /// and is re-armed by whoever rebuilds the array.
    faults: Option<FaultPlan>,
}

impl NandArray {
    /// Builds an array of fresh paper cells.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn new(config: NandConfig) -> Self {
        Self::with_population(config, CellPopulation::paper(checked_cells(config)))
    }

    /// Builds an array of fresh cells of an arbitrary device backend
    /// (GNR-FG, CNT-FG, PCM) — the whole page/block machinery above is
    /// backend-agnostic, so ISPP programming, block erase, disturb and
    /// epoch jumps all work unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn with_backend(config: NandConfig, backend: &CellBackend) -> Self {
        Self::with_population(
            config,
            CellPopulation::uniform_backend(backend, checked_cells(config)),
        )
    }

    /// Builds an array over an explicit population (e.g. one carrying
    /// per-cell process-variation deltas).
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero or the population
    /// size does not match the array shape.
    #[must_use]
    pub fn with_population(config: NandConfig, pop: CellPopulation) -> Self {
        let cells = checked_cells(config);
        assert_eq!(
            pop.len(),
            cells,
            "population size must match the array shape"
        );
        Self {
            config,
            pop,
            page_erased: vec![true; config.pages()],
            erase_count: vec![0; config.blocks],
            bias: DisturbBias::default(),
            programmer: IsppProgrammer::nominal(),
            eraser: IsppEraser::nominal(),
            batch: BatchSimulator::new(),
            faults: None,
        }
    }

    /// Installs (or clears) an injected fault schedule. Fault decisions
    /// are pure functions of the plan and local persistent state, so
    /// arming the same plan on a rebuilt array resumes the same fault
    /// behaviour.
    #[must_use]
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Replaces the injected fault schedule in place.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// The armed fault schedule, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The array shape.
    #[must_use]
    pub fn config(&self) -> NandConfig {
        self.config
    }

    /// Replaces the batch executor (e.g. [`BatchSimulator::sequential`]
    /// for parity testing or single-core profiling baselines).
    #[must_use]
    pub fn with_batch(mut self, batch: BatchSimulator) -> Self {
        self.batch = batch;
        self
    }

    /// The batch executor driving page programs and block erases.
    #[must_use]
    pub fn batch(&self) -> &BatchSimulator {
        &self.batch
    }

    /// The struct-of-arrays cell state (margin scans, wear analyses).
    #[must_use]
    pub fn population(&self) -> &CellPopulation {
        &self.pop
    }

    /// Mutable cell-state access — the seam reliability models use to
    /// evolve the *analog* state between operations (retention bake,
    /// synthetic wear fluence). Page bookkeeping (erased flags, wear
    /// counters) is untouched: callers model charge motion, not page
    /// lifecycle.
    pub fn population_mut(&mut self) -> &mut CellPopulation {
        &mut self.pop
    }

    /// Captures the array's full serializable state (see
    /// [`ArraySnapshot`]).
    #[must_use]
    pub fn snapshot_state(&self) -> ArraySnapshot {
        ArraySnapshot {
            config: self.config,
            population: self.pop.snapshot(),
            page_erased: self.page_erased.clone(),
            erase_count: self.erase_count.clone(),
        }
    }

    /// Rebuilds an array from a device blueprint and a snapshot — the
    /// inverse of [`Self::snapshot_state`]. The population's variant
    /// table is re-derived from the delta columns; bias, programmer,
    /// eraser and batch executor come back as the nominals
    /// [`Self::with_population`] installs.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] when the bookkeeping columns disagree
    /// with the shape; population restore errors propagate.
    pub fn restore_state(
        blueprint: FloatingGateTransistor,
        snapshot: ArraySnapshot,
    ) -> Result<Self> {
        let pop = CellPopulation::restore(blueprint, snapshot.population)?;
        Self::finish_restore(
            snapshot.config,
            pop,
            snapshot.page_erased,
            snapshot.erase_count,
        )
    }

    /// Rebuilds an array from a device backend and a snapshot — the
    /// backend-polymorphic sibling of [`Self::restore_state`]. GNR
    /// restores through this path are bit-identical to
    /// [`Self::restore_state`] over the same blueprint.
    ///
    /// # Errors
    ///
    /// As [`Self::restore_state`]; additionally
    /// [`ArrayError::UnsupportedBackend`] when a PCM backend is given a
    /// snapshot carrying floating-gate variation deltas.
    pub fn restore_state_backend(backend: &CellBackend, snapshot: ArraySnapshot) -> Result<Self> {
        let pop = CellPopulation::restore_backend(backend, snapshot.population)?;
        Self::finish_restore(
            snapshot.config,
            pop,
            snapshot.page_erased,
            snapshot.erase_count,
        )
    }

    fn finish_restore(
        config: NandConfig,
        pop: CellPopulation,
        page_erased: Vec<bool>,
        erase_count: Vec<u64>,
    ) -> Result<Self> {
        if pop.len() != config.cells() {
            return Err(ArrayError::Snapshot(format!(
                "population has {} cells, shape wants {}",
                pop.len(),
                config.cells()
            )));
        }
        if page_erased.len() != config.pages() {
            return Err(ArrayError::Snapshot(format!(
                "page_erased has {} entries, shape wants {}",
                page_erased.len(),
                config.pages()
            )));
        }
        if erase_count.len() != config.blocks {
            return Err(ArrayError::Snapshot(format!(
                "erase_count has {} entries, shape wants {}",
                erase_count.len(),
                config.blocks
            )));
        }
        let mut array = Self::with_population(config, pop);
        array.page_erased = page_erased;
        array.erase_count = erase_count;
        Ok(array)
    }

    /// Jumps every cell of the array through `cycles` composed P/E
    /// cycles of `recipe` (see
    /// [`CellPopulation::run_epoch`](crate::population::CellPopulation::run_epoch))
    /// and applies the closed-form page bookkeeping: the recipe ends
    /// with its erase rungs, so after the jump every page is erased and
    /// every block's erase counter has advanced by `cycles`. Any data
    /// the array held is gone — epoch jumps model cycling burn-in
    /// between workload windows, not in-place ageing of live data.
    ///
    /// # Errors
    ///
    /// Device errors from the composed cycles propagate.
    pub fn run_epoch(
        &mut self,
        recipe: &gnr_flash::engine::CycleRecipe,
        cycles: u64,
    ) -> Result<crate::population::EpochReport> {
        let indices: Vec<usize> = (0..self.pop.len()).collect();
        let report = self.pop.run_epoch(&indices, &self.batch, recipe, cycles)?;
        self.page_erased.fill(true);
        for count in &mut self.erase_count {
            *count += cycles;
        }
        Ok(report)
    }

    /// Erase count of a block (wear metric).
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad block index.
    pub fn erase_count(&self, block: usize) -> Result<u64> {
        self.erase_count
            .get(block)
            .copied()
            .ok_or(ArrayError::AddressOutOfRange {
                kind: "block",
                index: block,
                len: self.config.blocks,
            })
    }

    /// `true` when the page has not been written since its last erase.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for bad indices.
    pub fn is_page_erased(&self, block: usize, page: usize) -> Result<bool> {
        Ok(self.page_erased[self.page_slot(block, page)?])
    }

    /// Programs a page: cells with `false` bits are ISPP-programmed,
    /// `true` bits are left erased (program-inhibited). Every cell of the
    /// *other* pages in the block receives one pass-voltage disturb
    /// exposure.
    ///
    /// # Errors
    ///
    /// [`ArrayError::WrongPageWidth`], [`ArrayError::PageNotErased`],
    /// address errors, and ISPP verify failures.
    pub fn program_page(&mut self, block: usize, page: usize, bits: &[bool]) -> Result<()> {
        if bits.len() != self.config.page_width {
            return Err(ArrayError::WrongPageWidth {
                got: bits.len(),
                expected: self.config.page_width,
            });
        }
        let slot = self.page_slot(block, page)?;
        if !self.page_erased[slot] {
            return Err(ArrayError::PageNotErased { block, page });
        }
        // FN programming "allows many cells to be programmed at a time"
        // (§II): the selected cells of the page fan out through the batch
        // engine, one full ISPP ladder per distinct cell state. The first
        // failure (if any) is reported after the whole page ran.
        let base = self.cell_index(block, page, 0);
        let selected: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(c, &bit)| (!bit).then_some(base + c))
            .collect();
        let programmer = self.programmer;
        let batch = self.batch.clone();
        let reports = self.pop.program_cells(&programmer, &selected, &batch);
        // Pulses were applied whether or not every verify passed: the
        // page is no longer erased, and the unselected pages of the
        // block saw their pass-voltage exposure. Record both before
        // propagating the first error.
        self.page_erased[slot] = false;
        self.disturb_block_except(block, page, self.bias.v_pass_program, true);
        for report in reports {
            report?;
        }
        // Injected program-status failure: the pulses landed (the page
        // is consumed, disturb happened) but the device reports fail —
        // keyed on the block's erase generation so the decision is
        // replay-order-independent.
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.program_fails(block, page, self.erase_count[block]))
        {
            return Err(ArrayError::ProgramFailed { block, page });
        }
        Ok(())
    }

    /// Reads a page; unselected pages of the block receive one
    /// read-disturb exposure each.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn read_page(&mut self, block: usize, page: usize) -> Result<Vec<bool>> {
        self.page_slot(block, page)?;
        let base = self.cell_index(block, page, 0);
        let mut bits = (base..base + self.config.page_width)
            .map(|i| Ok(self.pop.read(i)? == LogicState::Erased1))
            .collect::<Result<Vec<bool>>>()?;
        self.corrupt_read(block, base, &mut bits);
        self.disturb_block_except(block, page, self.bias.v_pass_read, false);
        Ok(bits)
    }

    /// Applies injected stuck-at and soft-flip faults to one page's
    /// sensed bits (no-op without an armed plan).
    fn corrupt_read(&self, block: usize, base: usize, bits: &mut [bool]) {
        if let Some(plan) = &self.faults {
            let generation = self.erase_count[block];
            for (k, bit) in bits.iter_mut().enumerate() {
                *bit = plan.corrupt_read_bit(base + k, generation, *bit);
            }
        }
    }

    /// Erases a whole block (the only erase granularity NAND offers).
    ///
    /// # Errors
    ///
    /// Address errors and ISPP verify failures.
    pub fn erase_block(&mut self, block: usize) -> Result<()> {
        if block >= self.config.blocks {
            return Err(ArrayError::AddressOutOfRange {
                kind: "block",
                index: block,
                len: self.config.blocks,
            });
        }
        // Injected grown-bad block: the erase is attempted (the wear
        // counter advances) but the device reports a failed status and
        // the cells keep their state — the data stays readable so the
        // FTL can relocate it out of the dying block.
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.block_goes_bad(block, self.erase_count[block] + 1))
        {
            self.erase_count[block] += 1;
            return Err(ArrayError::BlockRetired { block });
        }
        // Block erase hits every cell of the block at once — one erase
        // transient (or ISPP ladder) per distinct cell state, fanned out
        // in parallel.
        let base = self.cell_index(block, 0, 0);
        let indices: Vec<usize> =
            (base..base + self.config.pages_per_block * self.config.page_width).collect();
        let eraser = self.eraser;
        let batch = self.batch.clone();
        let results =
            self.pop
                .erase_block_cells(&eraser, Voltage::from_volts(0.3), &indices, &batch);
        // The erase stress hit every cell of the block whether or not
        // every ladder verified, so the wear counter advances before any
        // error propagates; `page_erased` stays false on failure, which
        // forces a retry before the pages can be programmed again.
        self.erase_count[block] += 1;
        for result in results {
            result?;
        }
        let first = block * self.config.pages_per_block;
        self.page_erased[first..first + self.config.pages_per_block].fill(true);
        Ok(())
    }

    /// Programs several pages **on distinct blocks** as one merged
    /// submission: the selected cells of every page fan out through the
    /// batch engine together (one grouped run per distinct cell state
    /// across the whole round), then each block takes its pass-voltage
    /// disturb exposure. Per-job results are index-aligned with `jobs`.
    ///
    /// Because the pages sit on distinct blocks they touch disjoint
    /// cells, so the merged execution is bit-identical to calling
    /// [`Self::program_page`] per job in any order — the multi-plane
    /// scheduler's round primitive.
    ///
    /// # Panics
    ///
    /// Panics when two jobs target the same block (same-block ordering
    /// is the scheduler's responsibility; merging same-block work would
    /// silently reorder disturb).
    pub fn program_pages_multi(&mut self, jobs: &[(usize, usize, &[bool])]) -> Vec<Result<()>> {
        assert_distinct_blocks(jobs.iter().map(|&(b, ..)| b));
        let width = self.config.page_width;
        let mut results: Vec<Option<Result<()>>> = Vec::with_capacity(jobs.len());
        // Validate first; only valid jobs join the merged submission.
        let mut selected: Vec<usize> = Vec::new();
        let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(jobs.len());
        for &(block, page, bits) in jobs {
            if bits.len() != width {
                results.push(Some(Err(ArrayError::WrongPageWidth {
                    got: bits.len(),
                    expected: width,
                })));
                spans.push(None);
                continue;
            }
            match self.page_slot(block, page) {
                Err(e) => {
                    results.push(Some(Err(e)));
                    spans.push(None);
                    continue;
                }
                Ok(slot) if !self.page_erased[slot] => {
                    results.push(Some(Err(ArrayError::PageNotErased { block, page })));
                    spans.push(None);
                    continue;
                }
                Ok(_) => {}
            }
            let base = self.cell_index(block, page, 0);
            let start = selected.len();
            selected.extend(
                bits.iter()
                    .enumerate()
                    .filter_map(|(c, &bit)| (!bit).then_some(base + c)),
            );
            spans.push(Some((start, selected.len())));
            results.push(None);
        }
        let programmer = self.programmer;
        let batch = self.batch.clone();
        let reports = self.pop.program_cells(&programmer, &selected, &batch);
        for (j, &(block, page, _)) in jobs.iter().enumerate() {
            let Some((start, end)) = spans[j] else {
                continue;
            };
            let slot = self.page_slot(block, page).expect("validated above");
            self.page_erased[slot] = false;
            self.disturb_block_except(block, page, self.bias.v_pass_program, true);
            let mut outcome = Ok(());
            for report in &reports[start..end] {
                if let Err(e) = report {
                    outcome = Err(e.clone());
                    break;
                }
            }
            // Same injected program-status check as the per-op path —
            // merged rounds must stay bit-identical to sequential calls.
            if outcome.is_ok()
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|p| p.program_fails(block, page, self.erase_count[block]))
            {
                outcome = Err(ArrayError::ProgramFailed { block, page });
            }
            results[j] = Some(outcome);
        }
        results
            .into_iter()
            .map(|r| r.expect("every job was validated or executed"))
            .collect()
    }

    /// Reads several pages **on distinct blocks**: the bit computation
    /// fans out per plane queue (one queue per page) through
    /// [`BatchSimulator::scatter_queues`], then each block takes its
    /// read-disturb exposure. Results are index-aligned with `pages`.
    ///
    /// # Panics
    ///
    /// Panics when two pages share a block (see
    /// [`Self::program_pages_multi`]).
    pub fn read_pages_multi(&mut self, pages: &[(usize, usize)]) -> Vec<Result<Vec<bool>>> {
        assert_distinct_blocks(pages.iter().map(|&(b, _)| b));
        let width = self.config.page_width;
        let mut results: Vec<Option<Result<Vec<bool>>>> = Vec::with_capacity(pages.len());
        let mut queues: Vec<Vec<usize>> = Vec::new();
        let mut valid: Vec<usize> = Vec::new();
        for (j, &(block, page)) in pages.iter().enumerate() {
            match self.page_slot(block, page) {
                Err(e) => results.push(Some(Err(e))),
                Ok(_) => {
                    let base = self.cell_index(block, page, 0);
                    queues.push((base..base + width).collect());
                    valid.push(j);
                    results.push(None);
                }
            }
        }
        let pop = &self.pop;
        let bits: Vec<Vec<Result<bool>>> = self
            .batch
            .scatter_queues(queues, |_, i| Ok(pop.read(i)? == LogicState::Erased1));
        for (page_bits, &j) in bits.into_iter().zip(&valid) {
            let (block, page) = pages[j];
            self.disturb_block_except(block, page, self.bias.v_pass_read, false);
            let mut sensed = page_bits.into_iter().collect::<Result<Vec<bool>>>();
            if let Ok(bits) = &mut sensed {
                self.corrupt_read(block, self.cell_index(block, page, 0), bits);
            }
            results[j] = Some(sensed);
        }
        results
            .into_iter()
            .map(|r| r.expect("every page was validated or read"))
            .collect()
    }

    /// Erases several **distinct** blocks as one merged submission (one
    /// grouped erase run per distinct cell state across all of them).
    /// Per-block results are index-aligned with `blocks`; wear counters
    /// advance and page flags reset exactly as per-block
    /// [`Self::erase_block`] calls would.
    ///
    /// # Panics
    ///
    /// Panics on duplicate block indices.
    pub fn erase_blocks_multi(&mut self, blocks: &[usize]) -> Vec<Result<()>> {
        assert_distinct_blocks(blocks.iter().copied());
        let block_cells = self.config.pages_per_block * self.config.page_width;
        let mut results: Vec<Option<Result<()>>> = Vec::with_capacity(blocks.len());
        let mut indices: Vec<usize> = Vec::new();
        let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(blocks.len());
        for &block in blocks {
            if block >= self.config.blocks {
                results.push(Some(Err(ArrayError::AddressOutOfRange {
                    kind: "block",
                    index: block,
                    len: self.config.blocks,
                })));
                spans.push(None);
                continue;
            }
            // Injected grown-bad block: attempted (wear advances) but
            // skipped from the merged submission — the per-op ordering
            // of `erase_block` exactly.
            if self
                .faults
                .as_ref()
                .is_some_and(|p| p.block_goes_bad(block, self.erase_count[block] + 1))
            {
                self.erase_count[block] += 1;
                results.push(Some(Err(ArrayError::BlockRetired { block })));
                spans.push(None);
                continue;
            }
            let base = self.cell_index(block, 0, 0);
            let start = indices.len();
            indices.extend(base..base + block_cells);
            spans.push(Some((start, indices.len())));
            results.push(None);
        }
        let eraser = self.eraser;
        let batch = self.batch.clone();
        let cell_results =
            self.pop
                .erase_block_cells(&eraser, Voltage::from_volts(0.3), &indices, &batch);
        for (j, &block) in blocks.iter().enumerate() {
            let Some((start, end)) = spans[j] else {
                continue;
            };
            self.erase_count[block] += 1;
            let mut outcome = Ok(());
            for r in &cell_results[start..end] {
                if let Err(e) = r {
                    outcome = Err(e.clone());
                    break;
                }
            }
            if outcome.is_ok() {
                let first = block * self.config.pages_per_block;
                self.page_erased[first..first + self.config.pages_per_block].fill(true);
            }
            results[j] = Some(outcome);
        }
        results
            .into_iter()
            .map(|r| r.expect("every block was validated or erased"))
            .collect()
    }

    /// Erases a block through the closed-loop erase-verify operation
    /// (collective pulses until every cell verifies erased) followed by
    /// optional soft-program compaction of the over-erased tail — the
    /// paper's erase analysis made operational. Wear accounting matches
    /// [`Self::erase_block`]: the counter advances whether or not the
    /// loop converged; page flags reset only on success.
    ///
    /// # Errors
    ///
    /// Address errors, [`ArrayError::VerifyFailed`] on a non-converging
    /// loop, and device errors.
    pub fn erase_block_verified(
        &mut self,
        block: usize,
        spec: &EraseVerify,
        soft: Option<&SoftProgram>,
    ) -> Result<BlockEraseReport> {
        if block >= self.config.blocks {
            return Err(ArrayError::AddressOutOfRange {
                kind: "block",
                index: block,
                len: self.config.blocks,
            });
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.block_goes_bad(block, self.erase_count[block] + 1))
        {
            self.erase_count[block] += 1;
            return Err(ArrayError::BlockRetired { block });
        }
        let base = self.cell_index(block, 0, 0);
        let indices: Vec<usize> =
            (base..base + self.config.pages_per_block * self.config.page_width).collect();
        let batch = self.batch.clone();
        self.erase_count[block] += 1;
        let report = erase_verify_cells(&mut self.pop, &indices, &batch, spec, soft)?;
        let first = block * self.config.pages_per_block;
        self.page_erased[first..first + self.config.pages_per_block].fill(true);
        Ok(report)
    }

    /// Materialises one cell as an owning [`FlashCell`] for analyses
    /// (threshold maps, disturb margins). Clones the shared device —
    /// bulk scans should use [`Self::population`] instead.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn cell(&self, block: usize, page: usize, column: usize) -> Result<FlashCell> {
        self.page_slot(block, page)?;
        if column >= self.config.page_width {
            return Err(ArrayError::AddressOutOfRange {
                kind: "column",
                index: column,
                len: self.config.page_width,
            });
        }
        self.pop.cell(self.cell_index(block, page, column))
    }

    /// Flat population index of a cell address.
    #[must_use]
    pub fn cell_index(&self, block: usize, page: usize, column: usize) -> usize {
        (block * self.config.pages_per_block + page) * self.config.page_width + column
    }

    /// One disturb exposure at `vgs` on every page of `block` except
    /// `page` (grouped per distinct cell state).
    fn disturb_block_except(&mut self, block: usize, page: usize, vgs: Voltage, program: bool) {
        let width = self.config.page_width;
        let mut indices = Vec::with_capacity((self.config.pages_per_block - 1) * width);
        for p in 0..self.config.pages_per_block {
            if p == page {
                continue;
            }
            let base = self.cell_index(block, p, 0);
            indices.extend(base..base + width);
        }
        let duration = if program {
            self.bias.program_exposure
        } else {
            self.bias.read_exposure
        };
        self.pop.apply_disturb_cells(&indices, vgs, duration, 1);
    }

    fn page_slot(&self, block: usize, page: usize) -> Result<usize> {
        if block >= self.config.blocks {
            return Err(ArrayError::AddressOutOfRange {
                kind: "block",
                index: block,
                len: self.config.blocks,
            });
        }
        if page >= self.config.pages_per_block {
            return Err(ArrayError::AddressOutOfRange {
                kind: "page",
                index: page,
                len: self.config.pages_per_block,
            });
        }
        Ok(block * self.config.pages_per_block + page)
    }
}

/// Multi-op contract check: merged rounds commute only across blocks.
fn assert_distinct_blocks(blocks: impl Iterator<Item = usize>) {
    let mut seen = std::collections::HashSet::new();
    for b in blocks {
        assert!(
            seen.insert(b),
            "multi-plane round targets block {b} twice: same-block commands must stay sequential"
        );
    }
}

fn checked_cells(config: NandConfig) -> usize {
    assert!(
        config.blocks > 0 && config.pages_per_block > 0 && config.page_width > 0,
        "array dimensions must be positive"
    );
    config.cells()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NandArray {
        NandArray::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    #[test]
    fn fresh_array_reads_all_ones() {
        let mut a = tiny();
        assert_eq!(a.read_page(0, 0).unwrap(), vec![true; 4]);
    }

    #[test]
    fn program_and_read_back_pattern() {
        let mut a = tiny();
        let pattern = vec![true, false, false, true];
        a.program_page(0, 0, &pattern).unwrap();
        assert_eq!(a.read_page(0, 0).unwrap(), pattern);
        // The other page of the block is untouched.
        assert_eq!(a.read_page(0, 1).unwrap(), vec![true; 4]);
    }

    #[test]
    fn erase_before_write_enforced() {
        let mut a = tiny();
        a.program_page(0, 0, &[false, false, false, false]).unwrap();
        let err = a.program_page(0, 0, &[true, true, true, true]).unwrap_err();
        assert!(matches!(err, ArrayError::PageNotErased { .. }));
        a.erase_block(0).unwrap();
        assert_eq!(a.read_page(0, 0).unwrap(), vec![true; 4]);
        a.program_page(0, 0, &[true, true, false, true]).unwrap();
    }

    #[test]
    fn erase_counts_track_wear() {
        let mut a = tiny();
        assert_eq!(a.erase_count(0).unwrap(), 0);
        a.erase_block(0).unwrap();
        a.erase_block(0).unwrap();
        assert_eq!(a.erase_count(0).unwrap(), 2);
        assert_eq!(a.erase_count(1).unwrap(), 0);
    }

    #[test]
    fn wrong_page_width_rejected() {
        let mut a = tiny();
        let err = a.program_page(0, 0, &[true]).unwrap_err();
        assert!(matches!(err, ArrayError::WrongPageWidth { .. }));
    }

    #[test]
    fn bad_addresses_rejected() {
        let mut a = tiny();
        assert!(a.read_page(5, 0).is_err());
        assert!(a.read_page(0, 9).is_err());
        assert!(a.cell(0, 0, 99).is_err());
        assert!(a.erase_block(7).is_err());
    }

    #[test]
    fn disturb_does_not_flip_neighbours() {
        let mut a = tiny();
        a.program_page(0, 0, &[false; 4]).unwrap();
        // Hammer page 0 with reads; page 1 cells accumulate read disturb
        // but must still read erased.
        for _ in 0..200 {
            let _ = a.read_page(0, 0).unwrap();
        }
        assert_eq!(a.read_page(0, 1).unwrap(), vec![true; 4]);
    }

    #[test]
    fn population_state_is_shared_not_cloned() {
        let a = NandArray::new(NandConfig {
            blocks: 4,
            pages_per_block: 8,
            page_width: 32,
        });
        assert_eq!(a.population().len(), 4 * 8 * 32);
        assert_eq!(a.population().variant_count(), 1);
    }

    #[test]
    fn cell_view_matches_population_row() {
        let mut a = tiny();
        a.program_page(0, 0, &[false; 4]).unwrap();
        let view = a.cell(0, 0, 2).unwrap();
        let i = a.cell_index(0, 0, 2);
        assert_eq!(
            view.charge().as_coulombs(),
            a.population().charge(i).unwrap().as_coulombs()
        );
        assert_eq!(view.stats(), a.population().stats(i).unwrap());
    }
}
