//! Struct-of-arrays cell state: the scalable backbone of the array layer.
//!
//! The paper's §II argument — FN programming draws "< 1 nA per cell,
//! thus allowing many cells to be programmed at a time" — is an
//! *array-level* claim, and simulating arrays of realistic size (millions
//! of cells) is impossible when every cell owns a cloned
//! `FloatingGateTransistor`, read model and engine handle. A
//! [`CellPopulation`] stores per-cell **state** as flat columns
//! (`Vec<f64>`/`Vec<u64>`): stored charge, wear counters and per-cell
//! process-variation deltas. Everything *derivable* — the device model,
//! the `J(E)` tables, the charge-balance engine — is shared: one
//! [`FloatingGateTransistor`] blueprint, and one device per **distinct**
//! variation delta pair (deduplicated), with engines built on demand
//! through the process-wide table cache.
//!
//! # Memory model
//!
//! Per cell the population holds exactly the state columns: charge,
//! injected-charge wear, two op counters, two variation deltas and a
//! 4-byte variant index — [`CellPopulation::bytes_per_cell`] reports the
//! figure (52 B). A million-cell NAND array is ~50 MB of state instead
//! of gigabytes of cloned device structs.
//!
//! # Determinism and parity
//!
//! Simulation ops (`program_cells`, `erase_block_cells`, pulse and
//! disturb application) group cells by their full state — variant,
//! charge bits *and* wear counters — and run **one** representative
//! simulation per group, then write the absolute outcome back to every
//! member. Because the engine is deterministic, two cells with
//! bit-identical state get bit-identical results whether simulated
//! separately or shared — which is what makes the grouped path *exactly*
//! equal to the historical cell-by-cell loop
//! (`tests/population_parity.rs` pins this end to end, wear accumulation
//! included: the representative carries the members' own stats, so every
//! floating-point addition happens in per-cell order).
//!
//! # When the column path engages
//!
//! Every *fixed-width-pulse* operation — one gate pulse
//! ([`CellPopulation::apply_pulse_cells`]), page program and block erase
//! (both ISPP ladders), the default erase, erase-verify and soft-program
//! (via [`crate::pe`]) — runs **columnar**: the groups become
//! [`crate::column::GroupState`] rows, and every rung's pulses are
//! bucketed by `(variant, pulse bias)` and dispatched as one sorted
//! column through [`ChargeBalanceEngine::pulse_final_charges`]. That
//! turns per-group scalar flow-map queries (each a cache probe, a
//! binary search and a Hermite sample) into one cache probe and one
//! amortised monotone segment walk per column. Disturb accumulation is already a
//! closed-form per-`(variant, charge)` memo and needs no engine at all.
//! Arbitrary *closures* (the generic `run_grouped` path) keep the scalar
//! per-group [`FlashCell`] loop — an opaque `Fn(&mut FlashCell, ...)`
//! cannot be batched — but reuse one scratch cell + engine per variant
//! per chunk instead of rebuilding them per group.

use std::collections::HashMap;
use std::sync::Arc;

use gnr_flash::backend::{BackendKind, CellBackend, PcmDevice};
use gnr_flash::device::{FgtBuilder, FloatingGateTransistor};
use gnr_flash::engine::cyclemap;
use gnr_flash::engine::{BatchSimulator, ChargeBalanceEngine, CycleMap, CycleOutcome, CycleRecipe};
use gnr_flash::pulse::SquarePulse;
use gnr_flash::threshold::{classify, LogicState, ReadModel};
use gnr_flash::variation::standard_normal;
use gnr_numerics::hash::FnvHashMap;
use gnr_numerics::stats::Summary;
use gnr_units::{Charge, Energy, Length, Voltage};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::{CellStats, FlashCell};
use crate::column::{GroupState, PulseColumns};
use crate::disturb::disturb_charge;
use crate::ispp::{IsppEraser, IsppProgrammer, IsppReport};
use crate::{ArrayError, Result};

/// One distinct device build shared by every cell with the same
/// variation deltas. The engine is *not* stored: ops build it on demand
/// via [`BatchSimulator::engine_for`], which hits the process-wide
/// `J(E)` table cache — and, in the default flow-map mode, answers each
/// group's fixed-width pulses from the per-`(variant, pulse)` master
/// trajectory cache — so the marginal cost is one device clone per
/// group per operation (and ~one integration per *pulse bias*, not per
/// group) — never per cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub(crate) struct DeviceVariant {
    /// Fractional tunnel-oxide thickness delta this variant was built at.
    xto_delta: f64,
    /// Channel-barrier delta (eV) this variant was built at.
    barrier_delta_ev: f64,
    /// The built device.
    pub(crate) device: FloatingGateTransistor,
    /// Cached `CFC` in farads for the `ΔVT = −Q/CFC` hot path.
    pub(crate) cfc_farads: f64,
}

/// Telemetry of one [`CellPopulation::run_epoch`] jump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EpochReport {
    /// Cells the epoch covered.
    pub cells: usize,
    /// Distinct full-state groups among them.
    pub groups: usize,
    /// Unique `(variant, charge)` cycle-map probes after deduplication
    /// (the jump outcome depends only on those).
    pub map_probes: usize,
    /// Probes that could not answer from a cycle-map table (no map for
    /// the engine, or the start charge outside the tabulated span) and
    /// therefore iterated their cycles explicitly.
    pub fallback_probes: usize,
}

/// Gaussian per-cell process variation for a population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationVariation {
    /// Relative 1σ of the tunnel-oxide thickness (e.g. 0.04 = 4 %).
    pub xto_sigma_fraction: f64,
    /// Absolute 1σ of the channel barrier (work-function spread), eV.
    pub barrier_sigma_ev: f64,
    /// RNG seed — populations are reproducible.
    pub seed: u64,
}

impl Default for PopulationVariation {
    fn default() -> Self {
        // Matches the 1σ values of `gnr_flash::variation::VariationSpec`.
        Self {
            xto_sigma_fraction: 0.04,
            barrier_sigma_ev: 0.05,
            seed: 0x5eed_f1a5,
        }
    }
}

/// Serializable per-cell state of a population: the six state columns.
///
/// The variant table and devices are *not* serialized — they are
/// derivable from the blueprint plus the delta columns, which is exactly
/// what [`CellPopulation::restore`] rebuilds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationSnapshot {
    /// Stored charge per cell (C).
    pub charge: Vec<f64>,
    /// Cumulative injected-charge wear per cell (C).
    pub injected_charge: Vec<f64>,
    /// Completed program operations per cell.
    pub program_ops: Vec<u64>,
    /// Completed erase operations per cell.
    pub erase_ops: Vec<u64>,
    /// Fractional tunnel-oxide thickness delta per cell.
    pub xto_delta: Vec<f64>,
    /// Channel-barrier delta per cell (eV).
    pub barrier_delta_ev: Vec<f64>,
}

impl PopulationSnapshot {
    /// Decodes a snapshot from the JSON this shim's serializer writes.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on syntax errors or missing/ill-typed
    /// columns.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = serde_json::from_str(text).map_err(|e| ArrayError::Snapshot(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Decodes a snapshot from an already-parsed [`serde::Value`] tree
    /// (the nested-checkpoint path: array and campaign snapshots embed
    /// population snapshots as sub-objects).
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed columns.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let f64_column = |name: &str| -> Result<Vec<f64>> {
            value
                .get(name)
                .and_then(serde::Value::as_array)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing column `{name}`")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| ArrayError::Snapshot(format!("non-number in `{name}`")))
                })
                .collect()
        };
        let u64_column = |name: &str| -> Result<Vec<u64>> {
            value
                .get(name)
                .and_then(serde::Value::as_array)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing column `{name}`")))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| ArrayError::Snapshot(format!("non-integer in `{name}`")))
                })
                .collect()
        };
        Ok(Self {
            charge: f64_column("charge")?,
            injected_charge: f64_column("injected_charge")?,
            program_ops: u64_column("program_ops")?,
            erase_ops: u64_column("erase_ops")?,
            xto_delta: f64_column("xto_delta")?,
            barrier_delta_ev: f64_column("barrier_delta_ev")?,
        })
    }
}

/// A struct-of-arrays population of flash cells sharing one device
/// blueprint. See the module docs for the memory and determinism model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellPopulation {
    blueprint: FloatingGateTransistor,
    read_model: ReadModel,
    read_voltage: Voltage,
    decision_level: Voltage,
    // --- per-cell state columns (the only O(n) storage) ---
    charge: Vec<f64>,
    injected_charge: Vec<f64>,
    program_ops: Vec<u64>,
    erase_ops: Vec<u64>,
    xto_delta: Vec<f64>,
    barrier_delta_ev: Vec<f64>,
    variant_of: Vec<u32>,
    // --- shared, deduplicated device builds ---
    variants: Vec<DeviceVariant>,
    // --- device backend (shared by every cell) ---
    backend_kind: BackendKind,
    pcm: Option<PcmDevice>,
}

/// Bit-exact identity of a variation delta pair — variant equality and
/// hashing both key on this.
fn variant_key(xto: f64, barrier_ev: f64) -> (u64, u64) {
    (xto.to_bits(), barrier_ev.to_bits())
}

/// Outcome of one representative simulation shared by a state group:
/// the *absolute* post-op cell state. Absolute (not delta) write-back is
/// what keeps the grouped path bit-identical to a dedicated per-cell
/// loop — a delta would re-associate the wear accumulation
/// (`w + (d₁ + d₂)` instead of `(w + d₁) + d₂`) and drift in the last
/// ulp over multi-pulse operations.
struct GroupOutcome<R> {
    charge: f64,
    stats: CellStats,
    result: Result<R>,
}

/// Full-state grouping key of [`CellPopulation::group_states`]:
/// `(variant, charge bits, injected-charge bits, program ops, erase ops)`.
type GroupKey = (u32, u64, u64, u64, u64);

impl CellPopulation {
    /// A population of `n` identical cells of the blueprint device —
    /// one variant, one shared device build.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn uniform(blueprint: FloatingGateTransistor, n: usize) -> Self {
        assert!(n > 0, "population must have at least one cell");
        let nominal = DeviceVariant {
            xto_delta: 0.0,
            barrier_delta_ev: 0.0,
            cfc_farads: blueprint.capacitances().cfc().as_farads(),
            device: blueprint.clone(),
        };
        Self {
            blueprint,
            read_model: ReadModel::paper_nominal(),
            read_voltage: Voltage::from_volts(2.0),
            decision_level: Voltage::from_volts(1.0),
            charge: vec![0.0; n],
            injected_charge: vec![0.0; n],
            program_ops: vec![0; n],
            erase_ops: vec![0; n],
            xto_delta: vec![0.0; n],
            barrier_delta_ev: vec![0.0; n],
            variant_of: vec![0; n],
            variants: vec![nominal],
            backend_kind: BackendKind::GnrFloatingGate,
            pcm: None,
        }
    }

    /// `n` fresh paper cells.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn paper(n: usize) -> Self {
        Self::uniform(FloatingGateTransistor::mlgnr_cnt_paper(), n)
    }

    /// A population of `n` identical cells of an arbitrary device
    /// backend. For floating gates this is [`Self::uniform`] over the
    /// backend's device plus the material tag; for PCM the blueprint
    /// slot holds the paper's FG device purely as a placeholder and the
    /// cached per-variant `CFC` is the PCM element's *effective*
    /// capacitance, so the reliability models' charge→threshold
    /// conversions keep working column-wise.
    ///
    /// Also stamps the backend's stable name into the process-wide
    /// telemetry tag ([`gnr_telemetry::set_active_backend`]) so journal
    /// events and snapshots attribute to the right technology.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn uniform_backend(backend: &CellBackend, n: usize) -> Self {
        let mut pop = match backend.floating_gate_device() {
            Some(device) => Self::uniform(device.clone(), n),
            None => Self::uniform(FloatingGateTransistor::mlgnr_cnt_paper(), n),
        };
        pop.adopt_backend(backend);
        pop
    }

    /// Tags a freshly-built (single-variant) population with a backend.
    fn adopt_backend(&mut self, backend: &CellBackend) {
        self.backend_kind = backend.kind();
        self.pcm = backend.pcm_device().copied();
        if let Some(pcm) = &self.pcm {
            self.variants[0].cfc_farads = pcm.effective_cfc_farads();
        }
        gnr_telemetry::set_active_backend(self.backend_kind.name());
    }

    /// A population with Gaussian per-cell variation of the tunnel-oxide
    /// thickness and channel barrier, sampled reproducibly from
    /// `variation.seed`. Unphysical draws (oxide below 0.5 nm, barrier
    /// below 0.5 eV, failed device build) are resampled.
    ///
    /// # Errors
    ///
    /// Propagates device-build failures that persist after resampling.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn with_variation(
        blueprint: FloatingGateTransistor,
        n: usize,
        variation: &PopulationVariation,
    ) -> Result<Self> {
        let mut pop = Self::uniform(blueprint, n);
        let mut index = pop.variant_index();
        let mut rng = StdRng::seed_from_u64(variation.seed);
        for i in 0..n {
            // Resample until the perturbed device is physical; bound the
            // retries so a pathological spec fails instead of spinning.
            let mut last_err = None;
            let mut placed = false;
            for _ in 0..64 {
                let xto = variation.xto_sigma_fraction * standard_normal(&mut rng);
                let barrier = variation.barrier_sigma_ev * standard_normal(&mut rng);
                match pop.set_cell_variation_indexed(&mut index, i, xto, barrier) {
                    Ok(()) => {
                        placed = true;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if !placed {
                return Err(last_err.expect("resample loop records its failure"));
            }
        }
        Ok(pop)
    }

    /// Rebuilds a population from a blueprint and a serialized state
    /// snapshot (the inverse of [`Self::snapshot`]): the variant table is
    /// re-derived from the delta columns.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on ragged columns; device-build failures
    /// propagate.
    pub fn restore(
        blueprint: FloatingGateTransistor,
        snapshot: PopulationSnapshot,
    ) -> Result<Self> {
        let n = snapshot.charge.len();
        if n == 0 {
            return Err(ArrayError::Snapshot("empty snapshot".into()));
        }
        for (name, len) in [
            ("injected_charge", snapshot.injected_charge.len()),
            ("program_ops", snapshot.program_ops.len()),
            ("erase_ops", snapshot.erase_ops.len()),
            ("xto_delta", snapshot.xto_delta.len()),
            ("barrier_delta_ev", snapshot.barrier_delta_ev.len()),
        ] {
            if len != n {
                return Err(ArrayError::Snapshot(format!(
                    "column `{name}` has {len} rows, expected {n}"
                )));
            }
        }
        let mut pop = Self::uniform(blueprint, n);
        let mut index = pop.variant_index();
        for i in 0..n {
            pop.set_cell_variation_indexed(
                &mut index,
                i,
                snapshot.xto_delta[i],
                snapshot.barrier_delta_ev[i],
            )?;
        }
        pop.charge = snapshot.charge;
        pop.injected_charge = snapshot.injected_charge;
        pop.program_ops = snapshot.program_ops;
        pop.erase_ops = snapshot.erase_ops;
        Ok(pop)
    }

    /// [`Self::restore`] under an explicit device backend (the
    /// checkpoint-resume path of non-GNR campaigns). Floating-gate
    /// backends restore around the backend's own device; PCM snapshots
    /// must carry all-zero variation deltas — process variation is a
    /// floating-gate concept here.
    ///
    /// # Errors
    ///
    /// [`ArrayError::UnsupportedBackend`] for a PCM snapshot with
    /// nonzero variation deltas; otherwise as [`Self::restore`].
    pub fn restore_backend(backend: &CellBackend, snapshot: PopulationSnapshot) -> Result<Self> {
        if backend.pcm_device().is_some() {
            let varied = snapshot
                .xto_delta
                .iter()
                .chain(snapshot.barrier_delta_ev.iter())
                .any(|&d| d != 0.0);
            if varied {
                return Err(ArrayError::UnsupportedBackend {
                    backend: backend.kind().name(),
                    operation: "restore with floating-gate variation deltas",
                });
            }
        }
        let blueprint = backend
            .floating_gate_device()
            .cloned()
            .unwrap_or_else(FloatingGateTransistor::mlgnr_cnt_paper);
        let mut pop = Self::restore(blueprint, snapshot)?;
        pop.adopt_backend(backend);
        Ok(pop)
    }

    /// Captures the per-cell state columns for serialization.
    #[must_use]
    pub fn snapshot(&self) -> PopulationSnapshot {
        PopulationSnapshot {
            charge: self.charge.clone(),
            injected_charge: self.injected_charge.clone(),
            program_ops: self.program_ops.clone(),
            erase_ops: self.erase_ops.clone(),
            xto_delta: self.xto_delta.clone(),
            barrier_delta_ev: self.barrier_delta_ev.clone(),
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.charge.len()
    }

    /// `true` when the population has no cells (never, post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.charge.is_empty()
    }

    /// Bytes of per-cell *state* this population stores — the
    /// peak-RSS-proxy of the SoA refactor (device builds are shared and
    /// amortise to zero per cell).
    #[must_use]
    pub fn bytes_per_cell(&self) -> usize {
        // charge, injected_charge, xto_delta, barrier_delta_ev (f64);
        // program_ops, erase_ops (u64); variant_of (u32).
        4 * core::mem::size_of::<f64>()
            + 2 * core::mem::size_of::<u64>()
            + core::mem::size_of::<u32>()
    }

    /// Number of distinct device builds shared across the population.
    #[must_use]
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// The shared blueprint device.
    #[must_use]
    pub fn blueprint(&self) -> &FloatingGateTransistor {
        &self.blueprint
    }

    /// Which device backend every cell of this population evolves under.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// The PCM element, when this is a PCM-backed population.
    #[must_use]
    pub fn pcm_device(&self) -> Option<&PcmDevice> {
        self.pcm.as_ref()
    }

    /// The (shared) device of cell `i`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index;
    /// [`ArrayError::UnsupportedBackend`] on a PCM population, whose
    /// placeholder FG device must never leak into physics.
    pub fn device(&self, i: usize) -> Result<&FloatingGateTransistor> {
        if self.pcm.is_some() {
            return Err(ArrayError::UnsupportedBackend {
                backend: self.backend_kind.name(),
                operation: "floating-gate device access",
            });
        }
        Ok(&self.variants[self.variant(i)?].device)
    }

    /// Stored charge of cell `i`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn charge(&self, i: usize) -> Result<Charge> {
        self.check(i)?;
        Ok(Charge::from_coulombs(self.charge[i]))
    }

    /// Directly sets the stored charge of cell `i` (trap-injection
    /// models and tests — the column mirror of [`FlashCell::set_charge`]).
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn set_charge(&mut self, i: usize, charge: Charge) -> Result<()> {
        self.check(i)?;
        self.charge[i] = charge.as_coulombs();
        Ok(())
    }

    /// Lifetime counters of cell `i`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn stats(&self, i: usize) -> Result<CellStats> {
        self.check(i)?;
        Ok(CellStats {
            program_ops: self.program_ops[i],
            erase_ops: self.erase_ops[i],
            injected_charge: self.injected_charge[i],
        })
    }

    /// Variation deltas `(xto_fraction, barrier_ev)` of cell `i`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn variation_deltas(&self, i: usize) -> Result<(f64, f64)> {
        self.check(i)?;
        Ok((self.xto_delta[i], self.barrier_delta_ev[i]))
    }

    /// Threshold shift of cell `i` — identical arithmetic to
    /// [`gnr_flash::threshold::vt_shift`] on the cell's shared device.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn vt_shift(&self, i: usize) -> Result<Voltage> {
        let v = self.variant(i)?;
        Ok(Voltage::from_volts(match &self.pcm {
            Some(pcm) => pcm.vt_shift_volts(self.charge[i]),
            None => -(self.charge[i] / self.variants[v].cfc_farads),
        }))
    }

    /// The whole ΔVT column, fanned out over `batch` in contiguous
    /// chunks — the margin/histogram scan path, with no per-cell device
    /// access at all.
    #[must_use]
    pub fn vt_shift_column(&self, batch: &BatchSimulator) -> Vec<f64> {
        let mut out = vec![0.0f64; self.len()];
        let chunk = 16 * 1024;
        if let Some(pcm) = &self.pcm {
            batch.for_each_chunk_mut(&mut out, chunk, |start, slice| {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = pcm.vt_shift_volts(self.charge[start + offset]);
                }
            });
            return out;
        }
        batch.for_each_chunk_mut(&mut out, chunk, |start, slice| {
            for (offset, slot) in slice.iter_mut().enumerate() {
                let i = start + offset;
                let inv = self.variants[self.variant_of[i] as usize].cfc_farads;
                *slot = -(self.charge[i] / inv);
            }
        });
        out
    }

    /// The stored-charge column (C per cell) — read-only bulk access for
    /// reliability models that post-process the analog state.
    #[must_use]
    pub fn charge_column(&self) -> &[f64] {
        &self.charge
    }

    /// The injected-charge wear column (C per cell) — the oxide-fluence
    /// input of trap-noise and endurance models.
    #[must_use]
    pub fn injected_charge_column(&self) -> &[f64] {
        &self.injected_charge
    }

    /// The per-cell completed-program-operation counters.
    #[must_use]
    pub fn program_ops_column(&self) -> &[u64] {
        &self.program_ops
    }

    /// The per-cell completed-erase-operation counters.
    #[must_use]
    pub fn erase_ops_column(&self) -> &[u64] {
        &self.erase_ops
    }

    /// Per-cell `CFC` (F), fanned out over `batch` — the denominators of
    /// `ΔVT = −Q/CFC`, needed by models that convert trapped charge into
    /// threshold offsets column-wise.
    #[must_use]
    pub fn cfc_column(&self, batch: &BatchSimulator) -> Vec<f64> {
        let mut out = vec![0.0f64; self.len()];
        let chunk = 16 * 1024;
        batch.for_each_chunk_mut(&mut out, chunk, |start, slice| {
            for (offset, slot) in slice.iter_mut().enumerate() {
                *slot = self.variants[self.variant_of[start + offset] as usize].cfc_farads;
            }
        });
        out
    }

    /// The population's read decision level (V) — the reference the
    /// noiseless [`Self::read`] classification uses.
    #[must_use]
    pub fn decision_level(&self) -> Voltage {
        self.decision_level
    }

    /// Adds externally-modelled injected-charge fluence (C) to every
    /// listed cell without moving stored charge — the synthetic-wear
    /// path of reliability sweeps (like [`Self::set_charge`], the caller
    /// owns the physics: here, `fluence = charge_per_cycle × cycles` from
    /// the endurance model's analytic wear evolution).
    pub fn add_injected_charge(&mut self, indices: &[usize], coulombs: f64) {
        for &i in indices {
            debug_assert!(i < self.len(), "add_injected_charge index {i} out of range");
            self.injected_charge[i] += coulombs;
        }
    }

    /// Logic state of cell `i` through the population's decision level.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn read(&self, i: usize) -> Result<LogicState> {
        Ok(classify(self.vt_shift(i)?, self.decision_level))
    }

    /// Drain current of cell `i` at the read point.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn read_current(&self, i: usize) -> Result<gnr_units::Current> {
        Ok(self
            .read_model
            .drain_current(self.read_voltage, self.vt_shift(i)?))
    }

    /// Materialises cell `i` as an owning [`FlashCell`] (clones the
    /// shared device — a per-call convenience for analyses and demos,
    /// not a bulk path).
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] for a bad index.
    pub fn cell(&self, i: usize) -> Result<FlashCell> {
        let v = self.variant(i)?;
        Ok(FlashCell::restore_backend(
            self.backend_kind,
            self.pcm,
            self.variants[v].device.clone(),
            Charge::from_coulombs(self.charge[i]),
            self.stats(i)?,
        ))
    }

    /// Sets the variation deltas of cell `i`, building (or sharing) the
    /// matching device variant.
    ///
    /// One-off API: looks the variant up with a table scan. Bulk
    /// construction ([`Self::with_variation`], [`Self::restore`]) keeps
    /// a hash index instead, so varied million-cell populations intern
    /// in O(n).
    ///
    /// # Errors
    ///
    /// Rejects unphysical deltas and propagates device-build failures;
    /// [`ArrayError::UnsupportedBackend`] on a PCM population.
    pub fn set_cell_variation(&mut self, i: usize, xto: f64, barrier_ev: f64) -> Result<()> {
        if self.pcm.is_some() {
            return Err(ArrayError::UnsupportedBackend {
                backend: self.backend_kind.name(),
                operation: "floating-gate process variation",
            });
        }
        self.check(i)?;
        let key = variant_key(xto, barrier_ev);
        let variant = match self
            .variants
            .iter()
            .position(|v| variant_key(v.xto_delta, v.barrier_delta_ev) == key)
        {
            Some(idx) => u32::try_from(idx).expect("variant table fits u32"),
            None => self.push_variant(xto, barrier_ev)?,
        };
        self.assign_variation(i, xto, barrier_ev, variant);
        Ok(())
    }

    /// [`Self::set_cell_variation`] against a caller-maintained hash
    /// index of the variant table — the O(1)-interning bulk path.
    fn set_cell_variation_indexed(
        &mut self,
        index: &mut HashMap<(u64, u64), u32>,
        i: usize,
        xto: f64,
        barrier_ev: f64,
    ) -> Result<()> {
        self.check(i)?;
        let key = variant_key(xto, barrier_ev);
        let variant = match index.get(&key) {
            Some(&v) => v,
            None => {
                let v = self.push_variant(xto, barrier_ev)?;
                index.insert(key, v);
                v
            }
        };
        self.assign_variation(i, xto, barrier_ev, variant);
        Ok(())
    }

    fn assign_variation(&mut self, i: usize, xto: f64, barrier_ev: f64, variant: u32) {
        self.xto_delta[i] = xto;
        self.barrier_delta_ev[i] = barrier_ev;
        self.variant_of[i] = variant;
    }

    /// Hash index over the current variant table, keyed on delta bits.
    fn variant_index(&self) -> HashMap<(u64, u64), u32> {
        self.variants
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    variant_key(v.xto_delta, v.barrier_delta_ev),
                    u32::try_from(i).expect("variant table fits u32"),
                )
            })
            .collect()
    }

    /// Applies one gate pulse to every listed cell (grouped, columnar;
    /// same per-cell semantics as [`FlashCell::apply_pulse_with`]:
    /// sub-threshold bias is a no-op, not an error). All groups share
    /// one pulse bias, so the whole call is a single sorted flow-map
    /// column per variant.
    ///
    /// # Errors
    ///
    /// Per-cell results, index-aligned with `indices`.
    pub fn apply_pulse_cells(
        &mut self,
        indices: &[usize],
        pulse: SquarePulse,
        batch: &BatchSimulator,
    ) -> Vec<Result<()>> {
        self.run_columnar(indices, batch, |cols, states| {
            let jobs: Vec<(usize, SquarePulse)> = (0..states.len()).map(|g| (g, pulse)).collect();
            cols.apply(states, &jobs)
        })
    }

    /// Runs one full ISPP verify ladder per listed cell (grouped,
    /// columnar: every rung is one sorted flow-map column over the
    /// still-active groups). Index-aligned per-cell reports.
    pub fn program_cells(
        &mut self,
        programmer: &IsppProgrammer,
        indices: &[usize],
        batch: &BatchSimulator,
    ) -> Vec<Result<IsppReport>> {
        self.run_columnar(indices, batch, |cols, states| {
            let members: Vec<usize> = (0..states.len()).collect();
            programmer.program_column(cols, states, &members)
        })
    }

    /// The block-erase unit of work per listed cell: cells still above
    /// `already_erased_target` run the full erase ladder; already-erased
    /// cells take the single default erase pulse (erase stress hits every
    /// cell of a block regardless). Mirrors the historical
    /// `NandArray::erase_block` per-cell closure exactly.
    pub fn erase_block_cells(
        &mut self,
        eraser: &IsppEraser,
        already_erased_target: Voltage,
        indices: &[usize],
        batch: &BatchSimulator,
    ) -> Vec<Result<()>> {
        let target = already_erased_target.as_volts();
        self.run_columnar(indices, batch, |cols, states| {
            let (mut erased, mut laddered) = (Vec::new(), Vec::new());
            for (g, state) in states.iter().enumerate() {
                if cols.vt_shift(state) <= target {
                    erased.push(g);
                } else {
                    laddered.push(g);
                }
            }
            let mut out: Vec<Result<()>> = (0..states.len()).map(|_| Ok(())).collect();
            for (&g, r) in erased.iter().zip(cols.erase_default(states, &erased)) {
                out[g] = r;
            }
            for (&g, r) in laddered
                .iter()
                .zip(eraser.erase_column(cols, states, &laddered))
            {
                out[g] = r.map(|_| ());
            }
            out
        })
    }

    /// Applies the default erase pulse to every listed cell (the MLC
    /// pre-erase path; per-cell semantics of [`FlashCell::erase_default`]).
    pub fn erase_cells_default(
        &mut self,
        indices: &[usize],
        batch: &BatchSimulator,
    ) -> Vec<Result<()>> {
        self.run_columnar(indices, batch, |cols, states| {
            let members: Vec<usize> = (0..states.len()).collect();
            cols.erase_default(states, &members)
        })
    }

    /// Accumulates `events` disturb exposures at `vgs` on every listed
    /// cell — the linearised model of [`crate::disturb`], evaluated once
    /// per distinct `(variant, charge)` state instead of once per cell.
    pub fn apply_disturb_cells(
        &mut self,
        indices: &[usize],
        vgs: Voltage,
        duration: gnr_units::Time,
        events: u64,
    ) {
        if let Some(pcm) = self.pcm {
            // PCM: `events` identical exposures compose in closed form —
            // the exponential relaxation at a fixed bias over n pulses is
            // one pulse of n-fold width — so the whole accumulation is a
            // single kinetics evaluation per cell. Sub-threshold biases
            // (every stock pass/read level) return `None`: PCM cells do
            // not disturb below the switching threshold. Like the FG
            // path, disturb moves state without charging the wear column.
            let volts = vgs.as_volts();
            let width = duration.as_seconds() * events as f64;
            for &i in indices {
                debug_assert!(i < self.len(), "disturb index {i} out of range");
                if let Some(a1) = pcm.pulse_final_fraction(volts, width, self.charge[i]) {
                    self.charge[i] = a1;
                }
            }
            return;
        }
        // A program or read disturbs every sibling page of its block, so
        // this loop runs ~10⁴ cells per array operation and dominates
        // workload-replay wall time. Two layers keep the per-cell cost at
        // a few nanoseconds: a last-key register for the long runs of
        // identical (variant, charge) state that page-granular operations
        // leave behind, and a word-folding FNV map (not SipHash) for the
        // handful of distinct states that remain.
        let mut memo: FnvHashMap<(u32, u64), f64> = FnvHashMap::default();
        let mut last: Option<((u32, u64), f64)> = None;
        let scale = events as f64;
        for &i in indices {
            debug_assert!(i < self.len(), "disturb index {i} out of range");
            let key = (self.variant_of[i], self.charge[i].to_bits());
            let dq = match last {
                Some((k, dq)) if k == key => dq,
                _ => {
                    let dq = *memo.entry(key).or_insert_with(|| {
                        disturb_charge(
                            &self.variants[key.0 as usize].device,
                            Charge::from_coulombs(self.charge[i]),
                            vgs,
                            duration,
                        )
                        .as_coulombs()
                    });
                    last = Some((key, dq));
                    dq
                }
            };
            // Bit-identical to `disturb::apply_disturb` on a FlashCell.
            self.charge[i] += dq * scale;
        }
    }

    /// Marks one completed erase *operation* on every listed cell — the
    /// bookkeeping mirror of [`FlashCell::erase_default`]'s counter bump
    /// for block-level verified erases, where the pulse train is applied
    /// collectively ([`Self::apply_pulse_cells`] tracks only injected
    /// charge) and the operation completes for the block as a whole.
    pub fn note_erase_ops(&mut self, indices: &[usize]) {
        for &i in indices {
            debug_assert!(i < self.len(), "note_erase_ops index {i} out of range");
            self.erase_ops[i] += 1;
        }
    }

    /// Rewrites the charge of every listed cell through a closed-form
    /// per-cell update `f(device, charge) -> charge` (the CHE injection
    /// path and custom trap models). Does not touch the wear counters —
    /// like [`FlashCell::set_charge`], the caller models the physics.
    pub fn map_charge(
        &mut self,
        indices: &[usize],
        f: impl Fn(&FloatingGateTransistor, Charge) -> Charge,
    ) {
        for &i in indices {
            debug_assert!(i < self.len(), "map_charge index {i} out of range");
            let device = &self.variants[self.variant_of[i] as usize].device;
            self.charge[i] = f(device, Charge::from_coulombs(self.charge[i])).as_coulombs();
        }
    }

    /// Per-variant statistics of the programming-current spread — the
    /// population-column equivalent of `gnr_flash::variation`'s
    /// Monte-Carlo report: `log₁₀ J_in` and `VFG` at bias `vgs`, one
    /// exact-device evaluation per distinct variant, weighted per cell.
    ///
    /// # Errors
    ///
    /// Statistics errors for degenerate populations (e.g. every variant
    /// below the tunneling floor);
    /// [`ArrayError::UnsupportedBackend`] on a PCM population.
    pub fn variation_stats(&self, vgs: Voltage) -> Result<(Summary, Summary)> {
        if self.pcm.is_some() {
            return Err(ArrayError::UnsupportedBackend {
                backend: self.backend_kind.name(),
                operation: "FN programming-current statistics",
            });
        }
        // One evaluation per variant...
        let per_variant: Vec<Option<(f64, f64)>> = self
            .variants
            .iter()
            .map(|v| {
                let state = v.device.tunneling_state(vgs, Voltage::ZERO, Charge::ZERO);
                let j = state.tunnel_flow.abs().as_amps_per_square_meter();
                (j > 0.0).then(|| (j.log10(), state.vfg.as_volts()))
            })
            .collect();
        // ...expanded per cell so the statistics weight each draw.
        let mut log_j = Vec::with_capacity(self.len());
        let mut vfg = Vec::with_capacity(self.len());
        for &v in &self.variant_of {
            if let Some((j, f)) = per_variant[v as usize] {
                log_j.push(j);
                vfg.push(f);
            }
        }
        let to_err = |e: gnr_numerics::NumericsError| ArrayError::Device(e.into());
        Ok((
            Summary::from_samples(&log_j).map_err(to_err)?,
            Summary::from_samples(&vfg).map_err(to_err)?,
        ))
    }

    /// Summary of the injected-charge wear column (C per cell).
    ///
    /// # Errors
    ///
    /// Statistics errors (empty populations cannot be constructed).
    pub fn wear_summary(&self) -> Result<Summary> {
        Summary::from_samples(&self.injected_charge).map_err(|e| ArrayError::Device(e.into()))
    }

    /// Groups `indices` by full cell state (variant, charge bits, wear
    /// counters) — the shared front half of [`Self::run_grouped`] and
    /// [`Self::run_columnar`]. Returns each index's group plus one
    /// [`GroupState`] representative per group. The key is
    /// [`GroupKey`]: `(variant, charge, injected charge, program ops,
    /// erase ops)` with the floats as exact bit patterns.
    ///
    /// Groups key on the *entire* cell state — variant, charge AND
    /// wear counters — and the representative carries the members'
    /// actual stats, so the write-back can be absolute. Cells with
    /// equal charge but different wear histories simply land in
    /// different groups (rare outside aged mixed workloads).
    fn group_states(&self, indices: &[usize]) -> (Vec<usize>, Vec<GroupState>) {
        let _zone = gnr_telemetry::zone!("population.group");
        let mut group_of: Vec<usize> = Vec::with_capacity(indices.len());
        let mut states: Vec<GroupState> = Vec::new();
        // Same two-layer lookup as `apply_disturb_cells`: block-granular
        // ops (erase, soft-program) group tens of thousands of cells whose
        // states arrive in long identical runs.
        let mut seen: FnvHashMap<GroupKey, usize> = FnvHashMap::default();
        let mut last: Option<(GroupKey, usize)> = None;
        for &i in indices {
            debug_assert!(i < self.len(), "op index {i} out of range");
            let key = (
                self.variant_of[i],
                self.charge[i].to_bits(),
                self.injected_charge[i].to_bits(),
                self.program_ops[i],
                self.erase_ops[i],
            );
            let g = match last {
                Some((k, g)) if k == key => g,
                _ => {
                    let g = *seen.entry(key).or_insert_with(|| {
                        states.push(GroupState {
                            variant: key.0,
                            charge: self.charge[i],
                            stats: CellStats {
                                program_ops: self.program_ops[i],
                                erase_ops: self.erase_ops[i],
                                injected_charge: self.injected_charge[i],
                            },
                        });
                        states.len() - 1
                    });
                    last = Some((key, g));
                    g
                }
            };
            group_of.push(g);
        }
        gnr_telemetry::counter_add!("population.ops", 1);
        gnr_telemetry::counter_add!("population.cells", indices.len() as u64);
        gnr_telemetry::counter_add!("population.groups", states.len() as u64);
        gnr_telemetry::histogram_record!("population.groups_per_op", states.len() as u64);
        (group_of, states)
    }

    /// Writes the absolute post-op group states back to every member and
    /// expands per-group results to per-index results in input order.
    fn write_back<R: Clone>(
        &mut self,
        indices: &[usize],
        group_of: Vec<usize>,
        states: &[GroupState],
        results: &[Result<R>],
    ) -> Vec<Result<R>> {
        for (pos, &i) in indices.iter().enumerate() {
            let s = &states[group_of[pos]];
            self.charge[i] = s.charge;
            self.injected_charge[i] = s.stats.injected_charge;
            self.program_ops[i] = s.stats.program_ops;
            self.erase_ops[i] = s.stats.erase_ops;
        }
        group_of.into_iter().map(|g| results[g].clone()).collect()
    }

    /// Runs a *columnar* driver over the state groups of `indices`: the
    /// driver mutates the [`GroupState`] column through a
    /// [`PulseColumns`] executor (one engine per variant, one sorted
    /// flow-map column per `(variant, pulse)` bucket) and returns one
    /// result per group; the absolute outcome is written back to every
    /// member. This is the fixed-width-pulse fast path — see the module
    /// docs for when it engages.
    ///
    /// Crate-visible so the [`crate::pe`] operation layer can run its
    /// own columnar algorithms (adaptive ISPP, soft-program compaction)
    /// through the same machinery.
    pub(crate) fn run_columnar<R, F>(
        &mut self,
        indices: &[usize],
        batch: &BatchSimulator,
        driver: F,
    ) -> Vec<Result<R>>
    where
        R: Clone,
        F: for<'a> FnOnce(&mut PulseColumns<'a>, &mut [GroupState]) -> Vec<Result<R>>,
    {
        let (group_of, mut states) = self.group_states(indices);
        let results = {
            let mut cols = PulseColumns::new(&self.variants, batch, self.backend_kind, self.pcm);
            driver(&mut cols, &mut states)
        };
        debug_assert_eq!(results.len(), states.len(), "one result per group");
        self.write_back(indices, group_of, &states, &results)
    }

    /// Jumps `cycles` whole P/E cycles of `recipe` for every cell in
    /// `indices` — the epoch kernel of long-horizon endurance
    /// campaigns.
    ///
    /// Cells are state-grouped exactly like the pulse kernels, then the
    /// group probes are **deduplicated by `(variant, charge bits)`**: a
    /// cycle jump depends only on where the charge starts, so groups
    /// that differ merely in wear history share one probe. Each unique
    /// probe answers through the variant's cached
    /// [`CycleMap`] (O(log cycles) Hermite
    /// evaluations, explicit pulse-by-pulse fallback outside its span);
    /// batch-ineligible engines (exact mode, custom tolerances) iterate
    /// every cycle explicitly through [`cyclemap::cycle_once`], which
    /// honours their per-pulse contract. Probes fan out over `batch`
    /// order-preserving, so parallel and sequential runs agree bitwise.
    ///
    /// Counters advance in closed form for the identical-recipe run:
    /// per cycle one program op, one erase op, and the composed wear
    /// table's `Σ|ΔQ|` onto the injected-charge column.
    ///
    /// # Errors
    ///
    /// Per cell, engine failures ([`ArrayError::Device`]) from fallback
    /// integrations; failed groups keep their pre-epoch state.
    pub fn run_epoch(
        &mut self,
        indices: &[usize],
        batch: &BatchSimulator,
        recipe: &CycleRecipe,
        cycles: u64,
    ) -> Result<EpochReport> {
        let mut report = EpochReport {
            cells: indices.len(),
            ..EpochReport::default()
        };
        if indices.is_empty() || cycles == 0 {
            return Ok(report);
        }
        if let Some(pcm) = self.pcm {
            return self.run_epoch_pcm(&pcm, indices, batch, recipe, cycles, report);
        }
        let (group_of, mut states) = self.group_states(indices);
        report.groups = states.len();

        // One engine (and, when eligible, one shared cycle map) per
        // variant actually present.
        let mut lanes: Vec<Option<(ChargeBalanceEngine, Option<Arc<CycleMap>>)>> =
            vec![None; self.variants.len()];
        for s in &states {
            let v = s.variant as usize;
            if lanes[v].is_none() {
                let engine = batch.engine_for(&self.variants[v].device);
                let map = engine.cycle_map(recipe);
                lanes[v] = Some((engine, map));
            }
        }

        // Unique (variant, charge) probes, in first-seen order.
        let mut probe_of: FnvHashMap<(u32, u64), usize> = FnvHashMap::default();
        let mut probes: Vec<(u32, f64)> = Vec::new();
        for s in &states {
            probe_of
                .entry((s.variant, s.charge.to_bits()))
                .or_insert_with(|| {
                    probes.push((s.variant, s.charge));
                    probes.len() - 1
                });
        }
        report.map_probes = probes.len();
        for &(v, q) in &probes {
            let covered = lanes[v as usize]
                .as_ref()
                .and_then(|(_, map)| map.as_ref())
                .is_some_and(|map| map.covers(q));
            if !covered {
                report.fallback_probes += 1;
            }
        }
        // Recorded here, on the caller thread before the probe fan-out,
        // so the journal stays deterministic under rayon.
        gnr_telemetry::counter_add!("population.epoch.probes", report.map_probes as u64);
        gnr_telemetry::counter_add!("population.epoch.fallbacks", report.fallback_probes as u64);
        if report.fallback_probes > 0 {
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::CycleMapFallback {
                probes: report.fallback_probes as u64,
            });
        }

        // Answer the probes over the batch fan-out (order-preserving).
        let lanes_ref = &lanes;
        let probes_ref = &probes;
        const PROBE_CHUNK: usize = 64;
        let answers: Vec<Result<CycleOutcome>> = batch
            .map_chunks(probes.len(), PROBE_CHUNK, |start, len| {
                probes_ref[start..start + len]
                    .iter()
                    .map(|&(v, q)| {
                        let (engine, map) = lanes_ref[v as usize]
                            .as_ref()
                            .expect("variant lane built above");
                        let out = match map {
                            Some(map) => map.iterate(engine, q, cycles),
                            None => (|| {
                                let mut q = q;
                                let mut wear = 0.0;
                                for _ in 0..cycles {
                                    let step = cyclemap::cycle_once(engine, recipe, q)?;
                                    q = step.charge;
                                    wear += step.wear;
                                }
                                Ok(CycleOutcome { charge: q, wear })
                            })(),
                        };
                        out.map_err(ArrayError::Device)
                    })
                    .collect::<Vec<Result<CycleOutcome>>>()
            })
            .into_iter()
            .flatten()
            .collect();

        let results: Vec<Result<()>> = states
            .iter_mut()
            .map(|s| {
                let probe = probe_of[&(s.variant, s.charge.to_bits())];
                match &answers[probe] {
                    Ok(out) => {
                        s.charge = out.charge;
                        s.stats.injected_charge += out.wear;
                        s.stats.program_ops += cycles;
                        s.stats.erase_ops += cycles;
                        Ok(())
                    }
                    Err(e) => Err(e.clone()),
                }
            })
            .collect();
        let per_cell = self.write_back(indices, group_of, &states, &results);
        per_cell.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(report)
    }

    /// The PCM arm of [`Self::run_epoch`]: no cycle maps apply, so
    /// **every** deduplicated `(variant, charge)` probe is a fallback
    /// that iterates its cycles through the closed-form kinetics —
    /// with one shortcut the physics licenses: the exponential
    /// relaxation converges to a bitwise fixed point within a few
    /// cycles, after which every remaining cycle repeats the same state
    /// and wear exactly, so the loop jumps the tail in one multiply.
    fn run_epoch_pcm(
        &mut self,
        pcm: &PcmDevice,
        indices: &[usize],
        batch: &BatchSimulator,
        recipe: &CycleRecipe,
        cycles: u64,
        mut report: EpochReport,
    ) -> Result<EpochReport> {
        let (group_of, mut states) = self.group_states(indices);
        report.groups = states.len();

        // Unique charge probes, in first-seen order (single variant:
        // PCM populations never carry FG process variation).
        let mut probe_of: FnvHashMap<u64, usize> = FnvHashMap::default();
        let mut probes: Vec<f64> = Vec::new();
        for s in &states {
            probe_of.entry(s.charge.to_bits()).or_insert_with(|| {
                probes.push(s.charge);
                probes.len() - 1
            });
        }
        report.map_probes = probes.len();
        report.fallback_probes = probes.len();
        gnr_telemetry::counter_add!("population.epoch.probes", report.map_probes as u64);
        gnr_telemetry::counter_add!("population.epoch.fallbacks", report.fallback_probes as u64);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::CycleMapFallback {
            probes: report.fallback_probes as u64,
        });

        let probes_ref = &probes;
        const PROBE_CHUNK: usize = 64;
        let answers: Vec<CycleOutcome> = batch
            .map_chunks(probes.len(), PROBE_CHUNK, |start, len| {
                probes_ref[start..start + len]
                    .iter()
                    .map(|&a0| {
                        let mut a = a0;
                        let mut wear = 0.0;
                        let mut remaining = cycles;
                        while remaining > 0 {
                            let mut next = a;
                            let mut cycle_wear = 0.0;
                            for pulse in recipe.pulses() {
                                if let Some(a1) = pcm.pulse_final_fraction(
                                    pulse.amplitude.as_volts(),
                                    pulse.width.as_seconds(),
                                    next,
                                ) {
                                    cycle_wear += pcm.wear_increment(next, a1);
                                    next = a1;
                                }
                            }
                            remaining -= 1;
                            if next.to_bits() == a.to_bits() {
                                // Bitwise fixed point: every further
                                // cycle repeats this one exactly.
                                wear += cycle_wear * (remaining as f64 + 1.0);
                                break;
                            }
                            wear += cycle_wear;
                            a = next;
                        }
                        CycleOutcome { charge: a, wear }
                    })
                    .collect::<Vec<CycleOutcome>>()
            })
            .into_iter()
            .flatten()
            .collect();

        let results: Vec<Result<()>> = states
            .iter_mut()
            .map(|s| {
                let out = &answers[probe_of[&s.charge.to_bits()]];
                s.charge = out.charge;
                s.stats.injected_charge += out.wear;
                s.stats.program_ops += cycles;
                s.stats.erase_ops += cycles;
                Ok(())
            })
            .collect();
        let per_cell = self.write_back(indices, group_of, &states, &results);
        per_cell.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(report)
    }

    /// Runs an arbitrary per-cell closure once per state group on a
    /// scratch [`FlashCell`] and writes the absolute outcome back to
    /// every member. Returns per-index results in input order.
    ///
    /// This is the generic *scalar* escape hatch: fixed-width-pulse
    /// operations take the columnar fast path instead (see the module
    /// docs), but an opaque closure cannot be batched, so custom
    /// per-cell algorithms route through here.
    ///
    /// Correctness rests on `op` being a deterministic function of the
    /// scratch cell's `(device, charge, stats)` — which holds for every
    /// pulse and ladder op, since the engine and tables are immutable.
    /// Groups are fanned out over `batch` in chunks, and within a chunk
    /// one scratch cell + engine per *variant* is reused across groups
    /// (reset to each group's state), so the per-group cost is a charge/
    /// stats store — not a device clone plus four table-cache probes.
    pub fn run_grouped<R, F>(
        &mut self,
        indices: &[usize],
        batch: &BatchSimulator,
        op: F,
    ) -> Vec<Result<R>>
    where
        R: Clone + Send,
        F: Fn(&mut FlashCell, &ChargeBalanceEngine) -> Result<R> + Sync,
    {
        let (group_of, states) = self.group_states(indices);
        let variants = &self.variants;
        let kind = self.backend_kind;
        let pcm = self.pcm;
        // Chunked fan-out: big enough to amortise the per-variant
        // scratch build, small enough to spread groups across cores.
        const SCRATCH_CHUNK: usize = 64;
        let blocks: Vec<Vec<GroupState>> = states
            .chunks(SCRATCH_CHUNK)
            .map(<[GroupState]>::to_vec)
            .collect();
        let outcomes: Vec<Vec<GroupOutcome<R>>> = batch.scatter(blocks, |block| {
            let mut scratch: HashMap<u32, (ChargeBalanceEngine, FlashCell)> = HashMap::new();
            block
                .into_iter()
                .map(|s| {
                    let (engine, cell) = scratch.entry(s.variant).or_insert_with(|| {
                        let device = &variants[s.variant as usize].device;
                        (
                            batch.engine_for_kind(kind, device),
                            FlashCell::restore_backend(
                                kind,
                                pcm,
                                device.clone(),
                                Charge::ZERO,
                                CellStats::default(),
                            ),
                        )
                    });
                    cell.reset(Charge::from_coulombs(s.charge), s.stats);
                    let result = op(cell, engine);
                    // State is captured whether or not the op failed: a
                    // verify failure still applied its pulses, exactly as
                    // on the historical per-cell path.
                    GroupOutcome {
                        charge: cell.charge().as_coulombs(),
                        stats: cell.stats(),
                        result,
                    }
                })
                .collect()
        });
        let flat: Vec<GroupOutcome<R>> = outcomes.into_iter().flatten().collect();
        let states: Vec<GroupState> = flat
            .iter()
            .zip(&states)
            .map(|(o, s)| GroupState {
                variant: s.variant,
                charge: o.charge,
                stats: o.stats,
            })
            .collect();
        let results: Vec<Result<R>> = flat.into_iter().map(|o| o.result).collect();
        self.write_back(indices, group_of, &states, &results)
    }

    fn check(&self, i: usize) -> Result<()> {
        if i < self.len() {
            Ok(())
        } else {
            Err(ArrayError::AddressOutOfRange {
                kind: "cell",
                index: i,
                len: self.len(),
            })
        }
    }

    /// The shared variant table — the columnar executor's device source
    /// ([`crate::column`] tests build a [`PulseColumns`] directly).
    #[cfg(test)]
    pub(crate) fn variants_for_columns(&self) -> &[DeviceVariant] {
        &self.variants
    }

    fn variant(&self, i: usize) -> Result<usize> {
        self.check(i)?;
        Ok(self.variant_of[i] as usize)
    }

    /// Builds the device for a delta pair and appends it to the variant
    /// table (no lookup — callers have already checked for sharing).
    fn push_variant(&mut self, xto: f64, barrier_ev: f64) -> Result<u32> {
        let device = self.build_variant_device(xto, barrier_ev)?;
        let cfc_farads = device.capacitances().cfc().as_farads();
        self.variants.push(DeviceVariant {
            xto_delta: xto,
            barrier_delta_ev: barrier_ev,
            device,
            cfc_farads,
        });
        Ok(u32::try_from(self.variants.len() - 1).expect("variant table fits u32"))
    }

    /// Builds the blueprint with a perturbed tunnel oxide and channel
    /// barrier — the same perturbation model as
    /// `gnr_flash::variation::run_variation`, applied around *this*
    /// population's blueprint.
    fn build_variant_device(&self, xto: f64, barrier_ev: f64) -> Result<FloatingGateTransistor> {
        if xto == 0.0 && barrier_ev == 0.0 {
            return Ok(self.blueprint.clone());
        }
        let geometry = *self.blueprint.geometry();
        let xto_nm = geometry.tunnel_oxide_thickness().as_nanometers() * (1.0 + xto);
        let barrier = self.blueprint.channel_emission_model().barrier().as_ev() + barrier_ev;
        let oxide_affinity = self.blueprint.tunnel_oxide().electron_affinity().as_ev();
        if xto_nm <= 0.5 || barrier <= 0.5 {
            return Err(ArrayError::Snapshot(format!(
                "unphysical variation deltas: xto {xto:+.3}, barrier {barrier_ev:+.3} eV"
            )));
        }
        let geom = geometry.with_tunnel_oxide(Length::from_nanometers(xto_nm))?;
        let device = FgtBuilder::default()
            .name(format!("{}+var", self.blueprint.name()))
            .geometry(geom)
            .gcr(self.blueprint.capacitances().gcr())
            .total_capacitance(self.blueprint.capacitances().total())
            .tunnel_oxide(self.blueprint.tunnel_oxide().clone())
            .control_oxide(self.blueprint.control_oxide().clone())
            .channel_work_function(Energy::from_ev(barrier + oxide_affinity))
            .floating_gate_work_function(self.blueprint.floating_gate_work_function())
            .control_gate_work_function(self.blueprint.control_gate_work_function())
            .build()?;
        Ok(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_units::Time;

    #[test]
    fn uniform_population_shares_one_variant() {
        let pop = CellPopulation::paper(1000);
        assert_eq!(pop.len(), 1000);
        assert_eq!(pop.variant_count(), 1);
        assert_eq!(pop.bytes_per_cell(), 52);
        assert_eq!(pop.read(0).unwrap(), LogicState::Erased1);
    }

    #[test]
    fn grouped_program_matches_single_cell_bitwise() {
        let mut pop = CellPopulation::paper(8);
        let programmer = IsppProgrammer::nominal();
        let batch = BatchSimulator::sequential();
        let reports = pop.program_cells(&programmer, &[0, 1, 2, 3], &batch);

        let mut reference = FlashCell::paper_cell();
        let engine = batch.engine_for(reference.device());
        let expected = programmer.program_with(&mut reference, &engine).unwrap();

        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.as_ref().unwrap(), &expected);
            assert_eq!(
                pop.charge(i).unwrap().as_coulombs(),
                reference.charge().as_coulombs(),
                "cell {i}"
            );
            assert_eq!(pop.stats(i).unwrap(), reference.stats());
        }
        // Unselected cells untouched.
        assert_eq!(pop.charge(5).unwrap().as_coulombs(), 0.0);
        assert_eq!(pop.stats(5).unwrap().program_ops, 0);
    }

    #[test]
    fn grouped_disturb_matches_cell_path_bitwise() {
        let mut pop = CellPopulation::paper(4);
        let bias = crate::disturb::DisturbBias::default();
        pop.apply_disturb_cells(&[0, 1], bias.v_pass_program, bias.program_exposure, 250);

        let mut cell = FlashCell::paper_cell();
        crate::disturb::apply_disturb(&mut cell, bias.v_pass_program, bias.program_exposure, 250);
        assert_eq!(
            pop.charge(0).unwrap().as_coulombs(),
            cell.charge().as_coulombs()
        );
        assert_eq!(pop.charge(2).unwrap().as_coulombs(), 0.0);
    }

    #[test]
    fn pulse_noop_below_threshold() {
        let mut pop = CellPopulation::paper(3);
        let results = pop.apply_pulse_cells(
            &[0, 1, 2],
            SquarePulse::new(Voltage::from_volts(0.5), Time::from_microseconds(100.0)),
            &BatchSimulator::sequential(),
        );
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(pop.charge(0).unwrap().as_coulombs(), 0.0);
    }

    #[test]
    fn variation_builds_shared_variants() {
        let pop = CellPopulation::with_variation(
            FloatingGateTransistor::mlgnr_cnt_paper(),
            50,
            &PopulationVariation::default(),
        )
        .unwrap();
        // Gaussian draws are distinct, so ~every cell gets its own build.
        assert!(pop.variant_count() > 1);
        let (stats_j, stats_vfg) = pop
            .variation_stats(gnr_flash::presets::program_vgs())
            .unwrap();
        assert_eq!(stats_j.count, 50);
        assert!(stats_j.std_dev > 0.0);
        assert!((stats_vfg.median - 9.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_round_trips_state_through_json() {
        let mut pop = CellPopulation::with_variation(
            FloatingGateTransistor::mlgnr_cnt_paper(),
            6,
            &PopulationVariation::default(),
        )
        .unwrap();
        pop.set_charge(3, Charge::from_electrons(-120.0)).unwrap();
        let json = serde_json::to_string(&pop.snapshot()).unwrap();
        let decoded = PopulationSnapshot::from_json(&json).unwrap();
        assert_eq!(decoded, pop.snapshot());
        let rebuilt =
            CellPopulation::restore(FloatingGateTransistor::mlgnr_cnt_paper(), decoded).unwrap();
        assert_eq!(rebuilt, pop);
    }

    #[test]
    fn vt_column_matches_scalar_accessor() {
        let mut pop = CellPopulation::paper(40);
        pop.set_charge(7, Charge::from_electrons(-80.0)).unwrap();
        let column = pop.vt_shift_column(&BatchSimulator::new());
        for (i, vt) in column.iter().enumerate() {
            assert_eq!(*vt, pop.vt_shift(i).unwrap().as_volts());
        }
    }

    #[test]
    fn out_of_range_indices_rejected() {
        let pop = CellPopulation::paper(2);
        assert!(matches!(
            pop.charge(2),
            Err(ArrayError::AddressOutOfRange { .. })
        ));
        assert!(pop.cell(5).is_err());
    }
}
