//! Array-level threshold-distribution and read-margin analysis.
//!
//! A single cell has a clean window; an *array* has distributions — of
//! programmed and erased thresholds, smeared by disturb history. The read
//! margin is the gap between the lowest programmed and the highest erased
//! threshold; sensing fails when it closes. This module extracts those
//! statistics from a [`NandArray`].

use gnr_flash::threshold::LogicState;
use gnr_numerics::stats::{Histogram, Summary};

use crate::nand::NandArray;
use crate::Result;

/// Threshold statistics of one logic population in the array.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationStats {
    /// Number of cells in the population.
    pub count: usize,
    /// Threshold summary (V).
    pub vt: Summary,
}

/// The array margin report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MarginReport {
    /// Programmed ('0') population, when non-empty.
    pub programmed: Option<PopulationStats>,
    /// Erased ('1') population, when non-empty.
    pub erased: Option<PopulationStats>,
    /// Worst-case read margin: `min(programmed VT) − max(erased VT)` (V);
    /// `None` unless both populations exist.
    pub worst_case_margin: Option<f64>,
}

impl MarginReport {
    /// `true` when both populations exist and the margin exceeds
    /// `required` volts.
    #[must_use]
    pub fn is_readable(&self, required: f64) -> bool {
        self.worst_case_margin.is_some_and(|m| m > required)
    }
}

/// Scans every cell of the array and builds the margin report.
///
/// Reads the struct-of-arrays columns directly (one ΔVT column sweep
/// fanned out over the array's batch executor) — no per-cell device
/// clones, so the scan stays cheap on million-cell arrays.
///
/// # Errors
///
/// Propagates statistics errors for pathological (empty) arrays.
pub fn analyze(array: &NandArray) -> Result<MarginReport> {
    let pop = array.population();
    let shifts = pop.vt_shift_column(array.batch());
    let mut programmed = Vec::new();
    let mut erased = Vec::new();
    for (i, &vt) in shifts.iter().enumerate() {
        match pop.read(i)? {
            LogicState::Programmed0 => programmed.push(vt),
            LogicState::Erased1 => erased.push(vt),
        }
    }
    let stats = |v: &[f64]| -> Result<Option<PopulationStats>> {
        if v.is_empty() {
            return Ok(None);
        }
        Ok(Some(PopulationStats {
            count: v.len(),
            vt: Summary::from_samples(v).map_err(gnr_flash::DeviceError::from)?,
        }))
    };
    let programmed_stats = stats(&programmed)?;
    let erased_stats = stats(&erased)?;
    let margin = match (&programmed_stats, &erased_stats) {
        (Some(p), Some(e)) => Some(p.vt.min - e.vt.max),
        _ => None,
    };
    Ok(MarginReport {
        programmed: programmed_stats,
        erased: erased_stats,
        worst_case_margin: margin,
    })
}

/// Threshold histogram of every cell in the array (for VT-distribution
/// plots), over `[lo, hi]` volts with `bins` bins. Column scan — no
/// per-cell materialisation.
///
/// # Errors
///
/// Propagates histogram-construction errors for invalid ranges.
pub fn vt_histogram(array: &NandArray, lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
    let samples = array.population().vt_shift_column(array.batch());
    Histogram::new(&samples, lo, hi, bins).map_err(|e| gnr_flash::DeviceError::from(e).into())
}

/// FNV-1a digest over the bit patterns of the array's full ΔVT column —
/// the cheap state fingerprint multi-plane parity checks compare (used
/// by `tests/pe_scheduler.rs` and asserted by the `pe_scheduler` bench
/// on every run, CI smoke included).
#[must_use]
pub fn state_digest(array: &NandArray) -> u64 {
    use gnr_numerics::hash::{fnv1a_fold_f64, FNV1A_OFFSET};
    array
        .population()
        .vt_shift_column(array.batch())
        .into_iter()
        .fold(FNV1A_OFFSET, fnv1a_fold_f64)
}

/// The deepest valley of a (bimodal) threshold histogram: the bin center
/// minimising counts strictly *between* the two tallest genuinely
/// distinct modes — the reference voltage a re-centering read path
/// should sense at. Returns `None` for unimodal or empty histograms (no
/// valley to sit in).
///
/// Mode selection is deliberately conservative: the second mode must be
/// a *local* maximum (a tall peak's shoulder is monotone and never
/// qualifies), sit more than one bin from the first, carry at least 5 %
/// of the first mode's count (a handful of outlier cells is a tail, not
/// a population), and the gap between the modes must dip strictly below
/// the smaller one.
#[must_use]
pub fn decision_valley(h: &Histogram) -> Option<f64> {
    let counts = h.counts();
    let is_local_max = |i: usize| {
        counts[i] > 0
            && (i == 0 || counts[i] >= counts[i - 1])
            && (i + 1 == counts.len() || counts[i] >= counts[i + 1])
    };
    let (first, &first_count) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, core::cmp::Reverse(i)))?;
    let (second, &second_count) = counts
        .iter()
        .enumerate()
        .filter(|&(i, _)| i.abs_diff(first) > 1 && is_local_max(i))
        .max_by_key(|&(i, &c)| (c, core::cmp::Reverse(i)))?;
    if second_count == 0 || 20 * second_count < first_count {
        return None;
    }
    let (lo, hi) = (first.min(second), first.max(second));
    let min_count = (lo + 1..hi).map(|i| counts[i]).min()?;
    if min_count >= second_count {
        return None; // no dip between the "modes": one sloped population
    }
    // The middle of the flattest stretch between the modes: a reference
    // centred in the gap, not hugging one population's tail. Tie bins can
    // appear in several disjoint runs (equal dips with a bump between);
    // the reference sits at the midpoint of the *longest contiguous* run
    // of minimum-count bins — `(first + last) / 2` of its bin centers, so
    // an even-length flat stretch centres exactly between its two middle
    // bins instead of snapping to the right one of them.
    let ties: Vec<usize> = (lo + 1..hi).filter(|&i| counts[i] == min_count).collect();
    let mut best = (ties[0], ties[0]);
    let mut run = (ties[0], ties[0]);
    for &i in &ties[1..] {
        if i == run.1 + 1 {
            run.1 = i;
        } else {
            run = (i, i);
        }
        if run.1 - run.0 > best.1 - best.0 {
            best = run;
        }
    }
    Some(0.5 * (h.bin_center(best.0) + h.bin_center(best.1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nand::NandConfig;

    fn half_programmed_array() -> NandArray {
        let mut array = NandArray::new(NandConfig {
            blocks: 1,
            pages_per_block: 2,
            page_width: 8,
        });
        // Alternate bits on page 0; page 1 stays erased.
        let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        array.program_page(0, 0, &bits).unwrap();
        array
    }

    #[test]
    fn populations_are_counted_correctly() {
        let array = half_programmed_array();
        let report = analyze(&array).unwrap();
        let p = report.programmed.unwrap();
        let e = report.erased.unwrap();
        assert_eq!(p.count, 4); // half of page 0
        assert_eq!(e.count, 12); // other half + page 1
    }

    #[test]
    fn margin_is_open_after_ispp_programming() {
        let array = half_programmed_array();
        let report = analyze(&array).unwrap();
        let margin = report.worst_case_margin.unwrap();
        assert!(margin > 0.5, "margin = {margin} V");
        assert!(report.is_readable(0.5));
        assert!(!report.is_readable(margin + 1.0));
    }

    #[test]
    fn fresh_array_has_single_population() {
        let array = NandArray::new(NandConfig {
            blocks: 1,
            pages_per_block: 1,
            page_width: 4,
        });
        let report = analyze(&array).unwrap();
        assert!(report.programmed.is_none());
        assert!(report.erased.is_some());
        assert!(report.worst_case_margin.is_none());
        assert!(!report.is_readable(0.0));
    }

    #[test]
    fn valley_sits_between_the_two_populations() {
        let array = half_programmed_array();
        let h = vt_histogram(&array, -1.0, 4.0, 50).unwrap();
        let valley = decision_valley(&h).unwrap();
        // Between the erased mode (~0 V) and the programmed mode (~2.3 V).
        assert!(valley > 0.3 && valley < 2.2, "valley = {valley} V");
    }

    /// Samples placed exactly on the centers of 0.1 V bins over [0, 5):
    /// `(center, count)` pairs give full control of the histogram shape.
    fn synthetic_histogram(spec: &[(f64, usize)]) -> Histogram {
        let mut samples = Vec::new();
        for &(center, count) in spec {
            samples.extend((0..count).map(|_| center));
        }
        Histogram::new(&samples, 0.0, 5.0, 50).unwrap()
    }

    #[test]
    fn imbalanced_modes_still_get_a_centred_valley() {
        // 87 % programmed in a peaked mode around 2.45 V with broad
        // monotone shoulders, 13 % erased at 0.05 V: the second mode
        // must be the minority *population*, not the majority's flank.
        let h = synthetic_histogram(&[
            (0.05, 100),
            (2.05, 40),
            (2.15, 80),
            (2.25, 120),
            (2.35, 200),
            (2.45, 120),
            (2.55, 80),
            (2.65, 40),
        ]);
        let valley = decision_valley(&h).unwrap();
        assert!(valley > 0.3 && valley < 1.9, "valley = {valley} V");
    }

    #[test]
    fn symmetric_two_mode_histogram_centres_exactly() {
        // Regression: the old `ties[ties.len() / 2]` pick lands one bin
        // right of centre for even-length flat stretches. Two equal
        // modes at 1.05 V and 3.95 V leave an even run of empty gap bins
        // whose exact middle is 2.50 V — pin it to the bin-width scale.
        let h = synthetic_histogram(&[(1.05, 100), (3.95, 100)]);
        let valley = decision_valley(&h).unwrap();
        assert!(
            (valley - 2.5).abs() < 1e-12,
            "valley = {valley} V, expected the exact gap centre 2.5 V"
        );
        // A shifted pair keeps the property: the valley is the exact
        // midpoint of the two modes wherever the gap sits.
        let shifted = synthetic_histogram(&[(0.75, 100), (3.05, 100)]);
        let shifted_valley = decision_valley(&shifted).unwrap();
        assert!(
            (shifted_valley - 1.9).abs() < 1e-12,
            "valley = {shifted_valley} V, expected 1.9 V"
        );
    }

    #[test]
    fn equal_dips_prefer_the_longest_flat_stretch() {
        // Every bin between the modes is populated; two disjoint runs
        // share the minimum count 10 — a short one (0.75–0.85) and a
        // long one (1.05–1.25). The reference must sit at the centre of
        // the longest run, not at an index-midpoint across both runs.
        let h = synthetic_histogram(&[
            (0.25, 200),
            (0.35, 20),
            (0.45, 20),
            (0.55, 20),
            (0.65, 20),
            (0.75, 10),
            (0.85, 10),
            (0.95, 20),
            (1.05, 10),
            (1.15, 10),
            (1.25, 10),
            (1.35, 20),
            (1.45, 20),
            (1.55, 20),
            (1.65, 180),
        ]);
        let valley = decision_valley(&h).unwrap();
        assert!(
            (valley - 1.15).abs() < 1e-12,
            "valley = {valley} V, expected the long stretch centre 1.15 V"
        );
    }

    #[test]
    fn outlier_blips_are_a_tail_not_a_mode() {
        // A peaked majority plus 5 stray cells: below the 5 % prominence
        // bar, so no valley — the reference must not chase outliers.
        let h = synthetic_histogram(&[(0.05, 5), (2.25, 120), (2.35, 200), (2.45, 120)]);
        assert_eq!(decision_valley(&h), None);
    }

    #[test]
    fn unimodal_histograms_have_no_valley() {
        let array = NandArray::new(NandConfig {
            blocks: 1,
            pages_per_block: 2,
            page_width: 8,
        });
        let h = vt_histogram(&array, -1.0, 4.0, 50).unwrap();
        assert_eq!(decision_valley(&h), None);
    }

    #[test]
    fn histogram_is_bimodal_after_programming() {
        let array = half_programmed_array();
        let h = vt_histogram(&array, -1.0, 4.0, 10).unwrap();
        assert_eq!(h.total(), 16);
        // Mass near 0 V (erased) and near the ISPP target ~2.3 V.
        let counts = h.counts();
        let low_mass: usize = counts[..4].iter().sum();
        let high_mass: usize = counts[5..].iter().sum();
        assert!(low_mass >= 12, "low bins {counts:?}");
        assert!(high_mass >= 4, "high bins {counts:?}");
    }
}
