//! Array-level threshold-distribution and read-margin analysis.
//!
//! A single cell has a clean window; an *array* has distributions — of
//! programmed and erased thresholds, smeared by disturb history. The read
//! margin is the gap between the lowest programmed and the highest erased
//! threshold; sensing fails when it closes. This module extracts those
//! statistics from a [`NandArray`].

use gnr_flash::threshold::LogicState;
use gnr_numerics::stats::{Histogram, Summary};

use crate::nand::NandArray;
use crate::Result;

/// Threshold statistics of one logic population in the array.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationStats {
    /// Number of cells in the population.
    pub count: usize,
    /// Threshold summary (V).
    pub vt: Summary,
}

/// The array margin report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MarginReport {
    /// Programmed ('0') population, when non-empty.
    pub programmed: Option<PopulationStats>,
    /// Erased ('1') population, when non-empty.
    pub erased: Option<PopulationStats>,
    /// Worst-case read margin: `min(programmed VT) − max(erased VT)` (V);
    /// `None` unless both populations exist.
    pub worst_case_margin: Option<f64>,
}

impl MarginReport {
    /// `true` when both populations exist and the margin exceeds
    /// `required` volts.
    #[must_use]
    pub fn is_readable(&self, required: f64) -> bool {
        self.worst_case_margin.is_some_and(|m| m > required)
    }
}

/// Scans every cell of the array and builds the margin report.
///
/// Reads the struct-of-arrays columns directly (one ΔVT column sweep
/// fanned out over the array's batch executor) — no per-cell device
/// clones, so the scan stays cheap on million-cell arrays.
///
/// # Errors
///
/// Propagates statistics errors for pathological (empty) arrays.
pub fn analyze(array: &NandArray) -> Result<MarginReport> {
    let pop = array.population();
    let shifts = pop.vt_shift_column(array.batch());
    let mut programmed = Vec::new();
    let mut erased = Vec::new();
    for (i, &vt) in shifts.iter().enumerate() {
        match pop.read(i)? {
            LogicState::Programmed0 => programmed.push(vt),
            LogicState::Erased1 => erased.push(vt),
        }
    }
    let stats = |v: &[f64]| -> Result<Option<PopulationStats>> {
        if v.is_empty() {
            return Ok(None);
        }
        Ok(Some(PopulationStats {
            count: v.len(),
            vt: Summary::from_samples(v).map_err(gnr_flash::DeviceError::from)?,
        }))
    };
    let programmed_stats = stats(&programmed)?;
    let erased_stats = stats(&erased)?;
    let margin = match (&programmed_stats, &erased_stats) {
        (Some(p), Some(e)) => Some(p.vt.min - e.vt.max),
        _ => None,
    };
    Ok(MarginReport {
        programmed: programmed_stats,
        erased: erased_stats,
        worst_case_margin: margin,
    })
}

/// Threshold histogram of every cell in the array (for VT-distribution
/// plots), over `[lo, hi]` volts with `bins` bins. Column scan — no
/// per-cell materialisation.
///
/// # Errors
///
/// Propagates histogram-construction errors for invalid ranges.
pub fn vt_histogram(array: &NandArray, lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
    let samples = array.population().vt_shift_column(array.batch());
    Histogram::new(&samples, lo, hi, bins).map_err(|e| gnr_flash::DeviceError::from(e).into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nand::NandConfig;

    fn half_programmed_array() -> NandArray {
        let mut array = NandArray::new(NandConfig {
            blocks: 1,
            pages_per_block: 2,
            page_width: 8,
        });
        // Alternate bits on page 0; page 1 stays erased.
        let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        array.program_page(0, 0, &bits).unwrap();
        array
    }

    #[test]
    fn populations_are_counted_correctly() {
        let array = half_programmed_array();
        let report = analyze(&array).unwrap();
        let p = report.programmed.unwrap();
        let e = report.erased.unwrap();
        assert_eq!(p.count, 4); // half of page 0
        assert_eq!(e.count, 12); // other half + page 1
    }

    #[test]
    fn margin_is_open_after_ispp_programming() {
        let array = half_programmed_array();
        let report = analyze(&array).unwrap();
        let margin = report.worst_case_margin.unwrap();
        assert!(margin > 0.5, "margin = {margin} V");
        assert!(report.is_readable(0.5));
        assert!(!report.is_readable(margin + 1.0));
    }

    #[test]
    fn fresh_array_has_single_population() {
        let array = NandArray::new(NandConfig {
            blocks: 1,
            pages_per_block: 1,
            page_width: 4,
        });
        let report = analyze(&array).unwrap();
        assert!(report.programmed.is_none());
        assert!(report.erased.is_some());
        assert!(report.worst_case_margin.is_none());
        assert!(!report.is_readable(0.0));
    }

    #[test]
    fn histogram_is_bimodal_after_programming() {
        let array = half_programmed_array();
        let h = vt_histogram(&array, -1.0, 4.0, 10).unwrap();
        assert_eq!(h.total(), 16);
        // Mass near 0 V (erased) and near the ISPP target ~2.3 V.
        let counts = h.counts();
        let low_mass: usize = counts[..4].iter().sum();
        let high_mass: usize = counts[5..].iter().sum();
        assert!(low_mass >= 12, "low bins {counts:?}");
        assert!(high_mass >= 4, "high bins {counts:?}");
    }
}
