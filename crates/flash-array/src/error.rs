//! Error type for the array layer.

use core::fmt;

/// Errors produced by array-level operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrayError {
    /// The underlying device simulation failed.
    Device(gnr_flash::DeviceError),
    /// An address was outside the array.
    AddressOutOfRange {
        /// What kind of address (block/page/column).
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The number of valid entries.
        len: usize,
    },
    /// An ISPP verify loop exhausted its ladder without passing.
    VerifyFailed {
        /// Pulses applied before giving up.
        pulses: usize,
        /// The threshold shift reached (V).
        reached_volts: f64,
        /// The verify target (V).
        target_volts: f64,
    },
    /// A page write was attempted on a page that is not erased
    /// (erase-before-write violation).
    PageNotErased {
        /// Block index.
        block: usize,
        /// Page index.
        page: usize,
    },
    /// A data buffer did not match the page width.
    WrongPageWidth {
        /// Provided length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// A population snapshot failed to decode or validate.
    Snapshot(String),
    /// The operation is meaningless for the population's device backend
    /// (e.g. floating-gate process variation on a PCM population).
    UnsupportedBackend {
        /// The active backend's stable name.
        backend: &'static str,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// The controller ran out of writable pages: every page holds live
    /// data, so no block can be reclaimed without destroying it.
    CapacityExhausted {
        /// Live pages currently mapped.
        live_pages: usize,
        /// Total pages in the array.
        capacity: usize,
    },
    /// The controller degraded to read-only mode: the spare-block pool
    /// is exhausted, so another retirement cannot be absorbed without
    /// shrinking below the advertised logical capacity. Reads keep
    /// working; writes fail with this error.
    ReadOnly,
    /// A block has grown bad and been (or must be) retired — the media
    /// reported an unrecoverable erase/program status for it.
    BlockRetired {
        /// The retired physical block.
        block: usize,
    },
    /// A page program reported a failed status (injected or media):
    /// the data did not land and the page is consumed.
    ProgramFailed {
        /// Block of the failed page.
        block: usize,
        /// Page index within the block.
        page: usize,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::AddressOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range (len {len})")
            }
            Self::VerifyFailed {
                pulses,
                reached_volts,
                target_volts,
            } => write!(
                f,
                "verify failed after {pulses} pulses: reached {reached_volts:.2} V of \
                 {target_volts:.2} V"
            ),
            Self::PageNotErased { block, page } => {
                write!(
                    f,
                    "page {page} of block {block} must be erased before writing"
                )
            }
            Self::WrongPageWidth { got, expected } => {
                write!(f, "page data has {got} bits, page width is {expected}")
            }
            Self::Snapshot(message) => write!(f, "population snapshot: {message}"),
            Self::UnsupportedBackend { backend, operation } => {
                write!(f, "backend `{backend}` does not support {operation}")
            }
            Self::CapacityExhausted {
                live_pages,
                capacity,
            } => write!(
                f,
                "capacity exhausted: {live_pages} of {capacity} pages hold live data"
            ),
            Self::ReadOnly => {
                write!(f, "controller is read-only: spare-block pool exhausted")
            }
            Self::BlockRetired { block } => {
                write!(f, "block {block} has grown bad and is retired")
            }
            Self::ProgramFailed { block, page } => {
                write!(f, "program status failed on page {page} of block {block}")
            }
        }
    }
}

impl std::error::Error for ArrayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gnr_flash::DeviceError> for ArrayError {
    fn from(e: gnr_flash::DeviceError) -> Self {
        Self::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ArrayError::VerifyFailed {
            pulses: 5,
            reached_volts: 2.1,
            target_volts: 3.0,
        };
        assert!(e.to_string().contains("5 pulses"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArrayError>();
    }
}
