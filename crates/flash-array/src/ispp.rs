//! Incremental step pulse programming (ISPP) with verify.
//!
//! The standard NAND programming algorithm: apply a pulse, read back,
//! step the amplitude up, repeat until the target threshold is reached.
//! This realises the paper's §II point that FN programming allows tight
//! threshold placement with tiny per-cell current.
//!
//! Every rung goes through [`FlashCell::apply_pulse_with`], so in the
//! engine's default flow-map mode a whole verify ladder costs two
//! interpolations per rung against the per-`(device, amplitude)` master
//! trajectories — the rung amplitudes are shared across every cell and
//! reprogram of the array, so the integrations amortise to ~zero.

use gnr_flash::engine::{BatchSimulator, ChargeBalanceEngine};
use gnr_flash::pulse::{IsppLadder, SquarePulse};
use gnr_units::Voltage;

use crate::cell::FlashCell;
use crate::column::{GroupState, PulseColumns};
use crate::{ArrayError, Result};

/// Result of one ISPP operation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IsppReport {
    /// Pulses applied (including the passing one); `0` when the cell
    /// already verified before the first rung.
    pub pulses: usize,
    /// Final gate amplitude applied (V); `0` when no pulse was applied.
    pub final_amplitude: f64,
    /// Threshold shift after the operation (V).
    pub final_vt_shift: f64,
    /// The verify trajectory: the VT shift (V) observed at every verify
    /// read, starting with the pre-rung-0 verify — `verify_vt.len()` is
    /// always `pulses + 1` and `verify_vt.last()` equals
    /// [`Self::final_vt_shift`] for successful operations.
    pub verify_vt: Vec<f64>,
}

/// ISPP programmer: a ladder plus a verify target.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IsppProgrammer {
    ladder: IsppLadder,
    target: Voltage,
}

impl IsppProgrammer {
    /// Creates a programmer.
    #[must_use]
    pub fn new(ladder: IsppLadder, target: Voltage) -> Self {
        Self { ladder, target }
    }

    /// A nominal NAND-class recipe for the paper cell: 13 → 16 V in
    /// 0.5 V steps, 10 µs rungs, verify at +2 V threshold shift.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(
            IsppLadder::new(
                Voltage::from_volts(13.0),
                Voltage::from_volts(0.5),
                Voltage::from_volts(16.0),
                gnr_units::Time::from_microseconds(10.0),
            ),
            Voltage::from_volts(2.0),
        )
    }

    /// The verify target.
    #[must_use]
    pub fn target(&self) -> Voltage {
        self.target
    }

    /// The rung ladder.
    #[must_use]
    pub fn ladder(&self) -> IsppLadder {
        self.ladder
    }

    /// Programs the cell, verifying after every rung.
    ///
    /// # Errors
    ///
    /// [`ArrayError::VerifyFailed`] when the ladder is exhausted before
    /// the target is reached; device errors propagate.
    pub fn program(&self, cell: &mut FlashCell) -> Result<IsppReport> {
        let engine = ChargeBalanceEngine::new(cell.device());
        self.program_with(cell, &engine)
    }

    /// [`Self::program`] with a prepared engine, so the whole verify
    /// ladder pays the engine setup once (the per-cell unit of work the
    /// batch layer fans out).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::program`].
    pub fn program_with(
        &self,
        cell: &mut FlashCell,
        engine: &ChargeBalanceEngine,
    ) -> Result<IsppReport> {
        // Verify before rung 0: a cell already at or above target (a
        // reprogram, or an MLC level the cell already sits on) must not
        // receive a single pulse — the historical first-pulse-then-verify
        // loop over-programmed it past the target window.
        let mut verify_vt = vec![cell.vt_shift().as_volts()];
        if cell.verify_program(self.target) {
            return Ok(IsppReport {
                pulses: 0,
                final_amplitude: 0.0,
                final_vt_shift: verify_vt[0],
                verify_vt,
            });
        }
        let mut pulses = 0;
        for pulse in self.ladder {
            cell.apply_pulse_with(engine, pulse)?;
            pulses += 1;
            let vt = cell.vt_shift().as_volts();
            verify_vt.push(vt);
            if cell.verify_program(self.target) {
                return Ok(IsppReport {
                    pulses,
                    final_amplitude: pulse.amplitude.as_volts(),
                    final_vt_shift: vt,
                    verify_vt,
                });
            }
        }
        Err(ArrayError::VerifyFailed {
            pulses,
            reached_volts: cell.vt_shift().as_volts(),
            target_volts: self.target.as_volts(),
        })
    }

    /// Programs many independent cells through the batch engine, one
    /// full verify ladder per cell, fanned out across cores. Results are
    /// in cell order and failures are per-cell.
    #[must_use]
    pub fn program_batch(
        &self,
        cells: Vec<&mut FlashCell>,
        batch: &BatchSimulator,
    ) -> Vec<Result<IsppReport>> {
        batch.scatter(cells, |cell| {
            let engine = batch.engine_for(cell.device());
            self.program_with(cell, &engine)
        })
    }
}

/// The columnar fixed-ladder driver shared by [`IsppProgrammer`] and
/// [`IsppEraser`]: the listed groups run the ladder in lockstep — every
/// still-active group receives rung `k` at step `k`, so one shared pulse
/// counter tracks every group's pulse count, and each rung's pulses are
/// one [`PulseColumns::apply`] call (one sorted flow-map column per
/// variant). Per-group control flow replicates the scalar
/// `program_with`/`erase_with` verbatim: verify before rung 0, verify
/// after every rung, `VerifyFailed` on ladder exhaustion, device errors
/// freeze the group's state where the scalar path would have returned.
fn ladder_column(
    ladder: IsppLadder,
    target: Voltage,
    erase: bool,
    cols: &mut PulseColumns<'_>,
    states: &mut [GroupState],
    members: &[usize],
) -> Vec<Result<IsppReport>> {
    let target_volts = target.as_volts();
    let verified = |vt: f64| {
        if erase {
            vt <= target_volts
        } else {
            vt >= target_volts
        }
    };
    let mut results: Vec<Option<Result<IsppReport>>> = members.iter().map(|_| None).collect();
    let mut trajectories: Vec<Vec<f64>> = Vec::with_capacity(members.len());
    // Positions (into `members`) still running the ladder.
    let mut active: Vec<usize> = Vec::new();
    for (pos, &g) in members.iter().enumerate() {
        let vt = cols.vt_shift(&states[g]);
        trajectories.push(vec![vt]);
        if verified(vt) {
            results[pos] = Some(Ok(IsppReport {
                pulses: 0,
                final_amplitude: 0.0,
                final_vt_shift: vt,
                verify_vt: std::mem::take(&mut trajectories[pos]),
            }));
        } else {
            active.push(pos);
        }
    }
    let mut pulses = 0;
    for pulse in ladder {
        if active.is_empty() {
            break;
        }
        let jobs: Vec<(usize, SquarePulse)> =
            active.iter().map(|&pos| (members[pos], pulse)).collect();
        let outcomes = cols.apply(states, &jobs);
        pulses += 1;
        let mut still: Vec<usize> = Vec::new();
        for (&pos, outcome) in active.iter().zip(outcomes) {
            if let Err(e) = outcome {
                results[pos] = Some(Err(e));
                continue;
            }
            let vt = cols.vt_shift(&states[members[pos]]);
            trajectories[pos].push(vt);
            if verified(vt) {
                results[pos] = Some(Ok(IsppReport {
                    pulses,
                    final_amplitude: pulse.amplitude.as_volts(),
                    final_vt_shift: vt,
                    verify_vt: std::mem::take(&mut trajectories[pos]),
                }));
            } else {
                still.push(pos);
            }
        }
        active = still;
    }
    for pos in active {
        results[pos] = Some(Err(ArrayError::VerifyFailed {
            pulses,
            reached_volts: cols.vt_shift(&states[members[pos]]),
            target_volts,
        }));
    }
    results
        .into_iter()
        .map(|r| r.expect("every group resolves to a report or an error"))
        .collect()
}

impl IsppProgrammer {
    /// Columnar [`Self::program_with`] over the listed state groups —
    /// results align with `members`.
    pub(crate) fn program_column(
        &self,
        cols: &mut PulseColumns<'_>,
        states: &mut [GroupState],
        members: &[usize],
    ) -> Vec<Result<IsppReport>> {
        ladder_column(self.ladder, self.target, false, cols, states, members)
    }
}

/// ISPP eraser: a negative ladder plus a verify ceiling.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IsppEraser {
    ladder: IsppLadder,
    target: Voltage,
}

impl IsppEraser {
    /// Creates an eraser.
    #[must_use]
    pub fn new(ladder: IsppLadder, target: Voltage) -> Self {
        Self { ladder, target }
    }

    /// A nominal erase recipe: −13 → −16 V in 0.5 V steps, 10 µs rungs,
    /// verify at ≤ +0.3 V shift.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(
            IsppLadder::new(
                Voltage::from_volts(-13.0),
                Voltage::from_volts(0.5),
                Voltage::from_volts(-16.0),
                gnr_units::Time::from_microseconds(10.0),
            ),
            Voltage::from_volts(0.3),
        )
    }

    /// The rung ladder.
    #[must_use]
    pub fn ladder(&self) -> IsppLadder {
        self.ladder
    }

    /// Erases the cell, verifying after every rung.
    ///
    /// # Errors
    ///
    /// [`ArrayError::VerifyFailed`] when the ladder is exhausted before
    /// the threshold falls to the target; device errors propagate.
    pub fn erase(&self, cell: &mut FlashCell) -> Result<IsppReport> {
        let engine = ChargeBalanceEngine::new(cell.device());
        self.erase_with(cell, &engine)
    }

    /// [`Self::erase`] with a prepared engine (see
    /// [`IsppProgrammer::program_with`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::erase`].
    pub fn erase_with(
        &self,
        cell: &mut FlashCell,
        engine: &ChargeBalanceEngine,
    ) -> Result<IsppReport> {
        // Symmetric to the program path: verify before rung 0, so an
        // already-erased cell is not driven deeper (over-erase).
        let mut verify_vt = vec![cell.vt_shift().as_volts()];
        if cell.verify_erase(self.target) {
            return Ok(IsppReport {
                pulses: 0,
                final_amplitude: 0.0,
                final_vt_shift: verify_vt[0],
                verify_vt,
            });
        }
        let mut pulses = 0;
        for pulse in self.ladder {
            cell.apply_pulse_with(engine, pulse)?;
            pulses += 1;
            let vt = cell.vt_shift().as_volts();
            verify_vt.push(vt);
            if cell.verify_erase(self.target) {
                return Ok(IsppReport {
                    pulses,
                    final_amplitude: pulse.amplitude.as_volts(),
                    final_vt_shift: vt,
                    verify_vt,
                });
            }
        }
        Err(ArrayError::VerifyFailed {
            pulses,
            reached_volts: cell.vt_shift().as_volts(),
            target_volts: self.target.as_volts(),
        })
    }

    /// Columnar [`Self::erase_with`] over the listed state groups —
    /// results align with `members`.
    pub(crate) fn erase_column(
        &self,
        cols: &mut PulseColumns<'_>,
        states: &mut [GroupState],
        members: &[usize],
    ) -> Vec<Result<IsppReport>> {
        ladder_column(self.ladder, self.target, true, cols, states, members)
    }

    /// Erases many independent cells through the batch engine (the
    /// block-erase fan-out). Results are in cell order.
    #[must_use]
    pub fn erase_batch(
        &self,
        cells: Vec<&mut FlashCell>,
        batch: &BatchSimulator,
    ) -> Vec<Result<IsppReport>> {
        batch.scatter(cells, |cell| {
            let engine = batch.engine_for(cell.device());
            self.erase_with(cell, &engine)
        })
    }
}

/// Freezes one program→erase verify outcome into a fixed pulse train:
/// runs `programmer` then `eraser` on a fresh scratch cell of `cell`'s
/// device and records exactly the rungs each ladder applied. The result
/// is the [`CycleRecipe`] an epoch-jumping
/// [`crate::population::CellPopulation::run_epoch`] composes — a P/E
/// cycle with the verify decisions *pinned* to the fresh-cell
/// trajectory, which is the steady-state rung count because the recipe
/// ends erased (each composed cycle starts where the scratch cycle
/// did).
///
/// # Errors
///
/// Propagates verify/device failures from the scratch cycle.
pub fn cycle_recipe(
    cell: &FlashCell,
    programmer: &IsppProgrammer,
    eraser: &IsppEraser,
) -> Result<gnr_flash::engine::CycleRecipe> {
    let mut scratch = FlashCell::new(cell.device().clone());
    let programmed = programmer.program(&mut scratch)?;
    let erased = eraser.erase(&mut scratch)?;
    let pulses: Vec<SquarePulse> = programmer
        .ladder()
        .take(programmed.pulses)
        .chain(eraser.ladder().take(erased.pulses))
        .collect();
    Ok(gnr_flash::engine::CycleRecipe::new(pulses))
}

/// [`cycle_recipe`] of the nominal program/erase pair on the paper cell.
///
/// # Errors
///
/// Same contract as [`cycle_recipe`].
pub fn nominal_cycle_recipe() -> Result<gnr_flash::engine::CycleRecipe> {
    cycle_recipe(
        &FlashCell::paper_cell(),
        &IsppProgrammer::nominal(),
        &IsppEraser::nominal(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_ispp_programs_the_paper_cell() {
        let mut cell = FlashCell::paper_cell();
        let report = IsppProgrammer::nominal().program(&mut cell).unwrap();
        assert!(report.pulses >= 1);
        assert!(report.final_vt_shift >= 2.0);
        assert!(cell.verify_program(Voltage::from_volts(2.0)));
    }

    #[test]
    fn ispp_stops_at_first_passing_rung() {
        // A generous target passes on the very first rung.
        let mut cell = FlashCell::paper_cell();
        let p = IsppProgrammer::new(
            IsppLadder::new(
                Voltage::from_volts(15.0),
                Voltage::from_volts(0.5),
                Voltage::from_volts(16.0),
                gnr_units::Time::from_microseconds(50.0),
            ),
            Voltage::from_volts(0.5),
        );
        let report = p.program(&mut cell).unwrap();
        assert_eq!(report.pulses, 1);
        assert!((report.final_amplitude - 15.0).abs() < 1e-12);
    }

    #[test]
    fn reprogramming_a_passing_cell_applies_no_pulse() {
        // Regression: the historical loop applied rung 0 before any
        // verify, so a cell already at/above target was over-programmed
        // on every reprogram. The second program must be a no-op.
        let mut cell = FlashCell::paper_cell();
        let programmer = IsppProgrammer::nominal();
        let first = programmer.program(&mut cell).unwrap();
        assert!(first.pulses >= 1);
        let vt_after_first = cell.vt_shift().as_volts();

        let second = programmer.program(&mut cell).unwrap();
        assert_eq!(second.pulses, 0, "verified cell must not be pulsed");
        assert_eq!(second.final_amplitude, 0.0);
        assert_eq!(second.final_vt_shift, vt_after_first);
        assert_eq!(second.verify_vt, vec![vt_after_first]);
        assert_eq!(
            cell.vt_shift().as_volts(),
            vt_after_first,
            "reprogram must leave the threshold untouched"
        );
    }

    #[test]
    fn erasing_an_erased_cell_applies_no_pulse() {
        let mut cell = FlashCell::paper_cell();
        let report = IsppEraser::nominal().erase(&mut cell).unwrap();
        assert_eq!(report.pulses, 0);
        assert_eq!(cell.vt_shift().as_volts(), 0.0);
    }

    #[test]
    fn reports_record_the_verify_trajectory() {
        let mut cell = FlashCell::paper_cell();
        let report = IsppProgrammer::nominal().program(&mut cell).unwrap();
        assert_eq!(report.verify_vt.len(), report.pulses + 1);
        assert_eq!(
            report.verify_vt[0], 0.0,
            "pre-rung-0 verify of a fresh cell"
        );
        assert_eq!(*report.verify_vt.last().unwrap(), report.final_vt_shift);
        // The trajectory climbs monotonically toward the target.
        for pair in report.verify_vt.windows(2) {
            assert!(pair[1] > pair[0], "trajectory {:?}", report.verify_vt);
        }
    }

    #[test]
    fn unreachable_target_fails_verify() {
        let mut cell = FlashCell::paper_cell();
        let p = IsppProgrammer::new(
            IsppLadder::new(
                Voltage::from_volts(10.0),
                Voltage::from_volts(0.5),
                Voltage::from_volts(11.0),
                gnr_units::Time::from_microseconds(1.0),
            ),
            Voltage::from_volts(8.0),
        );
        let err = p.program(&mut cell).unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { .. }));
    }

    #[test]
    fn erase_returns_programmed_cell_below_target() {
        let mut cell = FlashCell::paper_cell();
        IsppProgrammer::nominal().program(&mut cell).unwrap();
        let report = IsppEraser::nominal().erase(&mut cell).unwrap();
        assert!(report.final_vt_shift <= 0.3);
        assert!(cell.verify_erase(Voltage::from_volts(0.3)));
    }

    #[test]
    fn ispp_uses_fewer_volts_than_worst_case() {
        // The point of ISPP: most cells pass before the ladder top.
        let mut cell = FlashCell::paper_cell();
        let report = IsppProgrammer::nominal().program(&mut cell).unwrap();
        assert!(report.final_amplitude <= 16.0);
    }
}
