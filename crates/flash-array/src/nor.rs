//! NOR-style programming with channel hot electrons.
//!
//! §II of the paper: "Most NOR-type Flash memories utilize CHE
//! programming", drawing 0.3–1 mA per cell at 4–6 V drain — against FN's
//! sub-nanoamp. This module programs the same MLGNR-CNT cell through the
//! lucky-electron model so benches can reproduce the paper's
//! current/energy comparison.

use gnr_tunneling::che::CheModel;
use gnr_units::{Charge, Current, ElectricField, Time, Voltage};

use crate::cell::FlashCell;
use crate::population::CellPopulation;

/// CHE bias conditions for one programming pulse.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CheBias {
    /// Drain current during the pulse (paper: 0.3–1 mA).
    pub drain_current: Current,
    /// Drain voltage (paper: 4–6 V).
    pub drain_voltage: Voltage,
    /// Peak lateral channel field near the drain.
    pub lateral_field: ElectricField,
    /// Pulse width.
    pub width: Time,
}

impl Default for CheBias {
    fn default() -> Self {
        Self {
            drain_current: Current::from_milliamps(0.5),
            drain_voltage: Voltage::from_volts(5.0),
            lateral_field: ElectricField::from_volts_per_meter(6.0e7),
            width: Time::from_microseconds(1.0),
        }
    }
}

/// A NOR cell: the flash cell plus a CHE injection model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NorCell {
    cell: FlashCell,
    che: CheModel,
}

impl NorCell {
    /// Wraps a cell with the silicon NOR CHE preset.
    #[must_use]
    pub fn new(cell: FlashCell) -> Self {
        Self {
            cell,
            che: CheModel::silicon_nor_cell(),
        }
    }

    /// The wrapped flash cell.
    #[must_use]
    pub fn cell(&self) -> &FlashCell {
        &self.cell
    }

    /// Mutable access (for erase via FN, which NOR also uses).
    #[must_use]
    pub fn cell_mut(&mut self) -> &mut FlashCell {
        &mut self.cell
    }

    /// Applies one CHE programming pulse.
    ///
    /// The injection is **self-limiting**: hot electrons carry at most
    /// `q·V_D` of excess energy, so collection stops once the floating
    /// gate sits about `V_D` below the channel. The stored charge
    /// therefore relaxes exponentially toward the floor
    /// `Q_floor = −CT·V_D` with the raw injected charge as the drive —
    /// one healthy CHE pulse is enough to saturate a nanoscale gate (the
    /// reason CHE programming is fast *and* power-hungry, §II).
    pub fn program_che(&mut self, bias: &CheBias) {
        let i_gate = self
            .che
            .gate_current(bias.drain_current, bias.lateral_field);
        let raw = (i_gate * bias.width).as_coulombs();
        let ct = self.cell.device().capacitances().total().as_farads();
        let floor = -ct * bias.drain_voltage.as_volts().abs();
        let q0 = self.cell.charge().as_coulombs();
        if q0 <= floor || floor == 0.0 {
            return;
        }
        let q_new = floor + (q0 - floor) * (-raw / floor.abs()).exp();
        self.cell.set_charge(Charge::from_coulombs(q_new));
    }

    /// Channel energy consumed by one CHE pulse (J).
    #[must_use]
    pub fn che_pulse_energy(&self, bias: &CheBias) -> f64 {
        self.che.programming_energy_joules(
            bias.drain_current,
            bias.drain_voltage.as_volts(),
            bias.width.as_seconds(),
        )
    }
}

/// Applies one CHE programming pulse to every listed cell of a
/// population — the struct-of-arrays mirror of [`NorCell::program_che`]:
/// the same self-limiting exponential relaxation toward the
/// `−CT·V_D` floor, evaluated per cell against its *shared* device
/// (the floor depends on the variant's `CT`), with no per-cell clones.
pub fn program_che_cells(
    pop: &mut CellPopulation,
    indices: &[usize],
    che: &CheModel,
    bias: &CheBias,
) {
    let i_gate = che.gate_current(bias.drain_current, bias.lateral_field);
    let raw = (i_gate * bias.width).as_coulombs();
    pop.map_charge(indices, |device, charge| {
        let ct = device.capacitances().total().as_farads();
        let floor = -ct * bias.drain_voltage.as_volts().abs();
        let q0 = charge.as_coulombs();
        if q0 <= floor || floor == 0.0 {
            return charge;
        }
        Charge::from_coulombs(floor + (q0 - floor) * (-raw / floor.abs()).exp())
    });
}

/// Energy of an FN programming pulse for comparison: gate displacement
/// current is negligible, so the energy is the tunneling charge times the
/// programming voltage.
#[must_use]
pub fn fn_pulse_energy(charge_moved: Charge, vgs: Voltage) -> f64 {
    (charge_moved.as_coulombs() * vgs.as_volts()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn che_pulse_stores_electrons() {
        let mut nor = NorCell::new(FlashCell::paper_cell());
        nor.program_che(&CheBias::default());
        assert!(nor.cell().charge().as_coulombs() < 0.0);
    }

    #[test]
    fn repeated_pulses_converge_to_the_drain_voltage_floor() {
        let mut nor = NorCell::new(FlashCell::paper_cell());
        let bias = CheBias::default();
        let ct = nor.cell().device().capacitances().total().as_farads();
        let floor = -ct * bias.drain_voltage.as_volts();
        nor.program_che(&bias);
        let q1 = nor.cell().charge().as_coulombs();
        for _ in 0..10 {
            nor.program_che(&bias);
        }
        let q11 = nor.cell().charge().as_coulombs();
        assert!(q11 <= q1); // monotone toward the floor
        assert!(q11 >= floor - 1e-30); // never past it
        assert!(
            (q11 - floor).abs() / floor.abs() < 0.05,
            "q = {q11:e}, floor = {floor:e}"
        );
    }

    #[test]
    fn weak_pulse_injects_partially() {
        let mut nor = NorCell::new(FlashCell::paper_cell());
        // A very short pulse at low lateral field injects little.
        let bias = CheBias {
            lateral_field: ElectricField::from_volts_per_meter(1.5e7),
            width: Time::from_nanoseconds(1.0),
            ..CheBias::default()
        };
        nor.program_che(&bias);
        let ct = nor.cell().device().capacitances().total().as_farads();
        let floor = -ct * bias.drain_voltage.as_volts();
        let q = nor.cell().charge().as_coulombs();
        assert!(q < 0.0, "some injection must occur");
        assert!(q > 0.5 * floor, "weak pulse must not saturate: {q:e}");
    }

    #[test]
    fn che_energy_dwarfs_fn_energy_per_cell() {
        // The paper's §II current comparison, as energy per operation.
        let mut fn_cell = FlashCell::paper_cell();
        fn_cell.program_default().unwrap();
        let e_fn = fn_pulse_energy(fn_cell.charge(), Voltage::from_volts(15.0));

        let nor = NorCell::new(FlashCell::paper_cell());
        let e_che = nor.che_pulse_energy(&CheBias::default());
        assert!(
            e_che / e_fn > 1e3,
            "CHE {e_che:e} J vs FN {e_fn:e} J, ratio {:e}",
            e_che / e_fn
        );
    }

    #[test]
    fn population_che_matches_nor_cell_bitwise() {
        let bias = CheBias::default();
        let mut nor = NorCell::new(FlashCell::paper_cell());
        let mut pop = CellPopulation::paper(4);
        for _ in 0..3 {
            nor.program_che(&bias);
            program_che_cells(&mut pop, &[0, 2], &nor.che, &bias);
        }
        assert_eq!(
            pop.charge(0).unwrap().as_coulombs(),
            nor.cell().charge().as_coulombs()
        );
        assert_eq!(pop.charge(1).unwrap().as_coulombs(), 0.0);
    }

    #[test]
    fn fn_erase_clears_che_programming() {
        let mut nor = NorCell::new(FlashCell::paper_cell());
        let bias = CheBias::default();
        for _ in 0..20 {
            nor.program_che(&bias);
        }
        let q_prog = nor.cell().charge().as_coulombs();
        nor.cell_mut().erase_default().unwrap();
        assert!(nor.cell().charge().as_coulombs() > q_prog);
    }
}
