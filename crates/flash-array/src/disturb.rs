//! Read- and pass-disturb accumulation.
//!
//! Unselected cells in a NAND string see moderate gate biases (the pass
//! voltage during program/read). The resulting field is far below the FN
//! programming point, but over many operations the weak tunneling shifts
//! thresholds. Because the per-event charge is minuscule, the disturb
//! model uses the *instantaneous* current (linear in time) instead of the
//! full transient — the error is second order in the disturb charge.

// Array ops route disturb through
// `crate::population::CellPopulation::apply_disturb_cells`, which
// evaluates `disturb_charge` once per distinct `(variant, charge)` state
// instead of once per cell; the per-cell helpers here remain the single
// source of the physics (and of the cell-level parity baseline).

use gnr_flash::device::FloatingGateTransistor;
use gnr_units::{Charge, Time, Voltage};

use crate::cell::FlashCell;

/// Standard NAND bias levels for disturb accounting.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DisturbBias {
    /// Pass voltage applied to unselected wordlines during program.
    pub v_pass_program: Voltage,
    /// Pass voltage during read.
    pub v_pass_read: Voltage,
    /// Duration of one program pulse seen by inhibited cells.
    pub program_exposure: Time,
    /// Duration of one read seen by unselected cells.
    pub read_exposure: Time,
}

impl Default for DisturbBias {
    fn default() -> Self {
        // V_pass is a design compromise: high enough to turn on unselected
        // cells, low enough that the pass-disturb margin supports ~10⁵
        // page operations (7 V keeps the inhibited-cell oxide field under
        // ~8.5 MV/cm on this 5 nm stack).
        Self {
            v_pass_program: Voltage::from_volts(7.0),
            v_pass_read: Voltage::from_volts(5.0),
            program_exposure: Time::from_microseconds(100.0),
            read_exposure: Time::from_microseconds(10.0),
        }
    }
}

/// Charge gained by a cell exposed to `vgs` for `duration` (linearised).
#[must_use]
pub fn disturb_charge(
    device: &FloatingGateTransistor,
    stored: Charge,
    vgs: Voltage,
    duration: Time,
) -> Charge {
    let state = device.tunneling_state(vgs, Voltage::ZERO, stored);
    Charge::from_coulombs(state.charge_rate_amps * duration.as_seconds())
}

/// Applies `events` disturb exposures at `vgs` to a cell.
pub fn apply_disturb(cell: &mut FlashCell, vgs: Voltage, duration: Time, events: u64) {
    let dq = disturb_charge(cell.device(), cell.charge(), vgs, duration);
    cell.set_charge(Charge::from_coulombs(
        cell.charge().as_coulombs() + dq.as_coulombs() * events as f64,
    ));
}

/// Number of disturb events at `vgs` before the threshold drifts by
/// `margin` volts (linearised; `None` when the drift direction never
/// consumes the margin or the rate is zero).
#[must_use]
pub fn events_to_margin(
    device: &FloatingGateTransistor,
    stored: Charge,
    vgs: Voltage,
    duration: Time,
    margin: Voltage,
) -> Option<u64> {
    let dq = disturb_charge(device, stored, vgs, duration);
    if dq.as_coulombs() == 0.0 {
        return None;
    }
    // ΔVT per event = −dq/CFC; drift magnitude consumes the margin.
    let dvt = (dq / device.capacitances().cfc()).as_volts().abs();
    if dvt == 0.0 {
        return None;
    }
    Some((margin.as_volts().abs() / dvt) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_bias_disturb_is_tiny_per_event() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let bias = DisturbBias::default();
        let dq = disturb_charge(&d, Charge::ZERO, bias.v_pass_program, bias.program_exposure);
        // Far less than one electron per exposure.
        assert!(
            dq.as_electrons().abs() < 1.0,
            "dq = {} e",
            dq.as_electrons()
        );
    }

    #[test]
    fn disturb_accumulates_linearly() {
        let mut cell = FlashCell::paper_cell();
        let bias = DisturbBias::default();
        apply_disturb(&mut cell, bias.v_pass_program, bias.program_exposure, 1000);
        let q1000 = cell.charge().as_coulombs();
        let mut cell2 = FlashCell::paper_cell();
        apply_disturb(&mut cell2, bias.v_pass_program, bias.program_exposure, 2000);
        assert!((cell2.charge().as_coulombs() / q1000 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn margin_supports_many_operations() {
        // A healthy cell tolerates a large number of pass exposures before
        // losing 0.5 V of margin — the array design target.
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let bias = DisturbBias::default();
        let events = events_to_margin(
            &d,
            Charge::ZERO,
            bias.v_pass_program,
            bias.program_exposure,
            Voltage::from_volts(0.5),
        )
        .expect("finite disturb rate");
        assert!(events > 10_000, "events = {events}");
    }

    #[test]
    fn read_disturb_weaker_than_pass_disturb() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let bias = DisturbBias::default();
        let dq_pass = disturb_charge(&d, Charge::ZERO, bias.v_pass_program, bias.program_exposure);
        let dq_read = disturb_charge(&d, Charge::ZERO, bias.v_pass_read, bias.program_exposure);
        assert!(dq_read.as_coulombs().abs() < dq_pass.as_coulombs().abs());
    }

    #[test]
    fn zero_bias_no_disturb() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let dq = disturb_charge(&d, Charge::ZERO, Voltage::ZERO, Time::from_seconds(1.0));
        assert_eq!(dq.as_coulombs(), 0.0);
        assert!(events_to_margin(
            &d,
            Charge::ZERO,
            Voltage::ZERO,
            Time::from_seconds(1.0),
            Voltage::from_volts(0.5)
        )
        .is_none());
    }
}
