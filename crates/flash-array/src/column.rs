//! Column-batched pulse application over grouped population state.
//!
//! [`crate::population::CellPopulation`] groups cells by full state and
//! historically ran each group's operation on its own scratch
//! [`FlashCell`] + engine. For *fixed-width-pulse* operations (page
//! program, block erase, both ISPP ladders, erase-verify, soft-program)
//! that means every group pays a full scalar flow-map query per rung:
//! a process-wide cache probe, a binary-search monotone inverse and a
//! Hermite sample. [`PulseColumns`] instead drives whole columns of
//! groups through [`ChargeBalanceEngine::pulse_final_charges`]: groups
//! sharing a `(variant, pulse)` bias become **one sorted column per
//! probe** — one cache resolution and one amortised segment walk for
//! the entire column.
//!
//! Bit-identity with the scalar path is structural, not approximate:
//! the engine's batched kernel is pinned bitwise-equal to per-query
//! `pulse_final_charge` calls, the write-back below replicates
//! [`FlashCell::apply_pulse_with`] verbatim (including the
//! `NoTunneling`-is-a-no-op rule), and the `ΔVT = −Q/CFC` verify reads
//! use the population's cached per-variant `CFC` — the same arithmetic
//! as [`gnr_flash::threshold::vt_shift`].

use gnr_flash::backend::{BackendKind, PcmDevice};
use gnr_flash::engine::{BatchSimulator, ChargeBalanceEngine};
use gnr_flash::pulse::SquarePulse;
use gnr_numerics::hash::FnvHashMap;
use gnr_units::Time;

use crate::cell::{CellStats, DEFAULT_PULSE_WIDTH_S};
use crate::population::DeviceVariant;
use crate::Result;

/// The columnar mirror of one state group's scratch [`FlashCell`]:
/// variant index, stored charge (C) and lifetime counters. Drivers
/// mutate these in place; the population writes the absolute outcome
/// back to every member afterwards.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupState {
    /// Index into the population's shared variant table.
    pub(crate) variant: u32,
    /// Stored charge (C).
    pub(crate) charge: f64,
    /// Lifetime counters, carried with full per-group history so wear
    /// accumulation happens in per-cell order.
    pub(crate) stats: CellStats,
}

/// Batched pulse executor over a population's group column: owns one
/// lazily-built engine per device variant and dispatches each
/// `(variant, pulse)` bucket as a single sorted flow-map column.
pub(crate) struct PulseColumns<'a> {
    variants: &'a [DeviceVariant],
    batch: &'a BatchSimulator,
    engines: Vec<Option<ChargeBalanceEngine>>,
    kind: BackendKind,
    pcm: Option<PcmDevice>,
}

impl<'a> PulseColumns<'a> {
    pub(crate) fn new(
        variants: &'a [DeviceVariant],
        batch: &'a BatchSimulator,
        kind: BackendKind,
        pcm: Option<PcmDevice>,
    ) -> Self {
        Self {
            variants,
            batch,
            engines: variants.iter().map(|_| None).collect(),
            kind,
            pcm,
        }
    }

    /// Threshold shift (V) of a group — bit-identical to
    /// [`FlashCell::vt_shift`] on the group's shared device (for PCM,
    /// the linear fraction→window map).
    pub(crate) fn vt_shift(&self, state: &GroupState) -> f64 {
        match &self.pcm {
            Some(pcm) => pcm.vt_shift_volts(state.charge),
            None => -(state.charge / self.variants[state.variant as usize].cfc_farads),
        }
    }

    /// The engine of a variant, built on first use and reused for every
    /// subsequent rung and bucket (one device clone + one set of table
    /// probes per variant per operation, never per group).
    fn engine(&mut self, variant: u32) -> &ChargeBalanceEngine {
        let slot = &mut self.engines[variant as usize];
        if slot.is_none() {
            *slot = Some(
                self.batch
                    .engine_for_kind(self.kind, &self.variants[variant as usize].device),
            );
        }
        slot.as_ref().expect("slot filled above")
    }

    /// Applies one pulse job per listed group — `jobs` pairs a group
    /// index with the pulse it receives this rung. Jobs are bucketed by
    /// `(variant, amplitude bits, width bits)` and each bucket is
    /// dispatched as one engine column. Results align with `jobs`.
    ///
    /// Per-job semantics replicate [`FlashCell::apply_pulse_with`]: on
    /// success the injected-charge wear grows by `|ΔQ|` and the charge
    /// advances; a sub-threshold bias (`NoTunneling`) is an Ok no-op.
    ///
    /// A group must appear at most once per call — a duplicate would
    /// query the pre-pulse charge of its first job.
    pub(crate) fn apply(
        &mut self,
        states: &mut [GroupState],
        jobs: &[(usize, SquarePulse)],
    ) -> Vec<Result<()>> {
        if let Some(pcm) = self.pcm {
            return Self::apply_pcm(&pcm, states, jobs);
        }
        let mut buckets: Vec<(u32, SquarePulse, Vec<usize>)> = Vec::new();
        let mut index: FnvHashMap<(u32, u64, u64), usize> = FnvHashMap::default();
        for (pos, &(g, pulse)) in jobs.iter().enumerate() {
            let variant = states[g].variant;
            let key = (
                variant,
                pulse.amplitude.as_volts().to_bits(),
                pulse.width.as_seconds().to_bits(),
            );
            let b = *index.entry(key).or_insert_with(|| {
                buckets.push((variant, pulse, Vec::new()));
                buckets.len() - 1
            });
            buckets[b].2.push(pos);
        }
        let mut out: Vec<Result<()>> = jobs.iter().map(|_| Ok(())).collect();
        for (variant, pulse, members) in &buckets {
            let q0s: Vec<f64> = members
                .iter()
                .map(|&pos| states[jobs[pos].0].charge)
                .collect();
            let answers = self.engine(*variant).pulse_final_charges(*pulse, &q0s);
            for (&pos, answer) in members.iter().zip(answers) {
                let state = &mut states[jobs[pos].0];
                out[pos] = match answer {
                    Ok(q_new) => {
                        let q = q_new.as_coulombs();
                        state.stats.injected_charge += (q - state.charge).abs();
                        state.charge = q;
                        Ok(())
                    }
                    Err(gnr_flash::DeviceError::NoTunneling { .. }) => Ok(()),
                    Err(e) => Err(e.into()),
                };
            }
        }
        out
    }

    /// The PCM arm of [`Self::apply`]: closed-form set/reset kinetics
    /// per job — no engines, no buckets, nothing to amortise. Every
    /// super-threshold pulse is an exact-path evaluation, so the
    /// flow-map bookkeeping records the whole column as queries that
    /// escaped the (inapplicable) map — the observable trace of the
    /// exact-engine fallback the PCM backend exercises by construction.
    fn apply_pcm(
        pcm: &PcmDevice,
        states: &mut [GroupState],
        jobs: &[(usize, SquarePulse)],
    ) -> Vec<Result<()>> {
        let mut escaped = 0_u64;
        let out = jobs
            .iter()
            .map(|&(g, pulse)| {
                let state = &mut states[g];
                if let Some(a1) = pcm.pulse_final_fraction(
                    pulse.amplitude.as_volts(),
                    pulse.width.as_seconds(),
                    state.charge,
                ) {
                    escaped += 1;
                    state.stats.injected_charge += pcm.wear_increment(state.charge, a1);
                    state.charge = a1;
                }
                Ok(())
            })
            .collect();
        gnr_telemetry::counter_add!("engine.flowmap.queries", jobs.len() as u64);
        gnr_telemetry::counter_add!("engine.flowmap.escapes", escaped);
        if escaped > 0 {
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::FlowMapEscape {
                queries: escaped,
            });
        }
        out
    }

    /// The default erase pulse over the listed groups — the columnar
    /// mirror of [`FlashCell::erase_default_with`]: one −15 V / 100 µs
    /// pulse, and the erase-op counter advances on success only.
    pub(crate) fn erase_default(
        &mut self,
        states: &mut [GroupState],
        members: &[usize],
    ) -> Vec<Result<()>> {
        let pulse = SquarePulse::new(
            gnr_flash::presets::erase_vgs(),
            Time::from_seconds(DEFAULT_PULSE_WIDTH_S),
        );
        let jobs: Vec<(usize, SquarePulse)> = members.iter().map(|&g| (g, pulse)).collect();
        let results = self.apply(states, &jobs);
        for (&g, result) in members.iter().zip(&results) {
            if result.is_ok() {
                states[g].stats.erase_ops += 1;
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::FlashCell;
    use crate::population::CellPopulation;
    use gnr_units::Voltage;

    /// The columnar executor must replicate `FlashCell::apply_pulse_with`
    /// bitwise — charge, wear and the `NoTunneling` no-op rule.
    #[test]
    fn apply_matches_the_scalar_cell_path_bitwise() {
        let pop = CellPopulation::paper(1);
        let batch = BatchSimulator::sequential();
        let mut cols = PulseColumns::new(
            pop.variants_for_columns(),
            &batch,
            BackendKind::GnrFloatingGate,
            None,
        );
        let mut states = [GroupState {
            variant: 0,
            charge: 0.0,
            stats: CellStats::default(),
        }];

        let mut cell = FlashCell::paper_cell();
        let engine = batch.engine_for(cell.device());
        for volts in [15.0, 0.5, -15.0, 14.2] {
            let pulse = SquarePulse::new(Voltage::from_volts(volts), Time::from_microseconds(10.0));
            let results = cols.apply(&mut states, &[(0, pulse)]);
            assert!(results[0].is_ok());
            cell.apply_pulse_with(&engine, pulse).unwrap();
            assert_eq!(
                states[0].charge.to_bits(),
                cell.charge().as_coulombs().to_bits()
            );
            assert_eq!(
                states[0].stats.injected_charge.to_bits(),
                cell.stats().injected_charge.to_bits()
            );
            assert_eq!(
                cols.vt_shift(&states[0]).to_bits(),
                cell.vt_shift().as_volts().to_bits()
            );
        }
    }

    /// The PCM arm replicates the scalar PCM cell path bitwise —
    /// fraction, wear and the sub-threshold no-op rule — and never
    /// touches the FN engines.
    #[test]
    fn pcm_columns_match_the_scalar_cell_path_bitwise() {
        use gnr_flash::backend::CellBackend;
        let pop = CellPopulation::paper(1);
        let batch = BatchSimulator::sequential();
        let backend = CellBackend::preset(BackendKind::PcmResistive);
        let pcm = *backend.pcm_device().unwrap();
        let mut cols = PulseColumns::new(
            pop.variants_for_columns(),
            &batch,
            BackendKind::PcmResistive,
            Some(pcm),
        );
        let mut states = [GroupState {
            variant: 0,
            charge: 0.0,
            stats: CellStats::default(),
        }];
        let mut cell = FlashCell::with_backend(&backend);
        for volts in [15.0, 7.0, 13.0, -15.0] {
            let pulse = SquarePulse::new(Voltage::from_volts(volts), Time::from_microseconds(10.0));
            let results = cols.apply(&mut states, &[(0, pulse)]);
            assert!(results[0].is_ok());
            cell.apply_pulse(pulse).unwrap();
            assert_eq!(
                states[0].charge.to_bits(),
                cell.charge().as_coulombs().to_bits()
            );
            assert_eq!(
                states[0].stats.injected_charge.to_bits(),
                cell.stats().injected_charge.to_bits()
            );
            assert_eq!(
                cols.vt_shift(&states[0]).to_bits(),
                cell.vt_shift().as_volts().to_bits()
            );
        }
    }

    /// One bucket per distinct `(variant, pulse)` — duplicate pulses in
    /// one call share a single engine column and the default-erase
    /// helper bumps the erase counter exactly once per group.
    #[test]
    fn default_erase_counts_one_op_per_group() {
        let pop = CellPopulation::paper(1);
        let batch = BatchSimulator::sequential();
        let mut cols = PulseColumns::new(
            pop.variants_for_columns(),
            &batch,
            BackendKind::GnrFloatingGate,
            None,
        );
        let mut states = [
            GroupState {
                variant: 0,
                charge: -1.0e-18,
                stats: CellStats::default(),
            },
            GroupState {
                variant: 0,
                charge: 0.0,
                stats: CellStats::default(),
            },
        ];
        let results = cols.erase_default(&mut states, &[0, 1]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(states[0].stats.erase_ops, 1);
        assert_eq!(states[1].stats.erase_ops, 1);
    }
}
