//! # gnr-flash-array
//!
//! The flash-memory system layer over the MLGNR-CNT cell of `gnr-flash`.
//!
//! The paper motivates its device with flash-memory practice: FN
//! tunneling "allows many cells to be programmed at a time" (NAND), CHE
//! programming draws milliamps per cell (NOR), and high tunneling current
//! "will severely damage the oxide's reliability" (§V). This crate makes
//! those claims runnable:
//!
//! * [`cell`] — a stateful flash cell: pulse application, read, verify.
//! * [`population`] — struct-of-arrays cell state: flat per-cell state
//!   columns sharing one device blueprint, the representation that
//!   scales the array layer to millions of cells.
//! * [`ispp`] — incremental step pulse programming with verify loops.
//! * [`nand`] — strings, pages and blocks with program-inhibit bias.
//! * [`mlc`] — multi-level (two-bit) operation with Gray-coded states.
//! * [`margins`] — array-wide threshold distributions and read margins.
//! * [`nor`] — channel-hot-electron programming (the NOR baseline).
//! * [`disturb`] — read/pass-disturb accumulation on unselected cells.
//! * [`endurance`] — P/E cycling with phenomenological oxide wear.
//! * [`retention`] — low-field charge loss and the ten-year check.
//! * [`pe`] — the program/erase operation subsystem: adaptive ISPP,
//!   erase-verify with soft-program compaction, and the multi-plane
//!   command scheduler.
//! * [`controller`] — a miniature flash-translation controller: logical
//!   page mapping, explicit block reclaim, garbage collection and wear
//!   tracking.
//! * [`fault`] — deterministic, seeded fault injection: grown-bad
//!   blocks, stuck-at cells, transient read flips, program-status
//!   failures and power-loss points, plus the crash-and-recover
//!   harness.
//! * [`workload`] — trace-driven workloads: generators for
//!   sequential/random/hot-cold/read-heavy/GC-churn mixes and a replayer
//!   that records latency, wear and margin trajectories.
//!
//! # Example
//!
//! ```
//! use gnr_flash_array::cell::FlashCell;
//! use gnr_flash::threshold::LogicState;
//!
//! let mut cell = FlashCell::paper_cell();
//! assert_eq!(cell.read(), LogicState::Erased1); // fresh cell reads '1'
//! cell.program_default().unwrap();
//! assert_eq!(cell.read(), LogicState::Programmed0);
//! cell.erase_default().unwrap();
//! assert_eq!(cell.read(), LogicState::Erased1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
mod column;
pub mod controller;
pub mod disturb;
pub mod endurance;
pub mod fault;
pub mod ispp;
pub mod margins;
pub mod mlc;
pub mod nand;
pub mod nor;
pub mod pe;
pub mod population;
pub mod retention;
pub mod workload;

mod error;

pub use error::ArrayError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ArrayError>;
