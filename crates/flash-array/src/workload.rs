//! Trace-driven workloads: the layer that turns the array stack into a
//! storage device under load.
//!
//! The JETC companion paper analyses the same device family under
//! realistic array traffic; this module makes that runnable: a
//! serializable trace format ([`WorkloadTrace`]), generators for the
//! canonical mixes (sequential fill, uniform-random writes, hot/cold
//! skew, read-disturb-heavy, steady-state GC churn) and a replayer that
//! drives a [`FlashController`] while recording per-op latency, wear
//! spread, disturb and margin trajectories.
//!
//! Patterns are *procedural* ([`PagePattern`]) rather than literal bit
//! buffers, so a trace over a million-cell array stays kilobytes.

use std::time::Instant;

use gnr_numerics::stats::Summary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::controller::{FlashController, WearStats};
use crate::margins::{self, MarginReport};
use crate::nand::NandConfig;
use crate::{ArrayError, Result};

/// Procedural page contents (`false` = programmed '0').
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePattern {
    /// Every bit programmed.
    AllProgrammed,
    /// Every bit left erased (a pure inhibit page).
    AllErased,
    /// Alternating bits; `phase` flips which columns program.
    Checkerboard {
        /// `true` programs even columns, `false` odd.
        phase: bool,
    },
    /// Deterministic pseudo-random bits from a seed.
    Seeded {
        /// The seed.
        seed: u64,
    },
}

impl PagePattern {
    /// Expands the pattern to a page-width bit buffer.
    #[must_use]
    pub fn expand(&self, width: usize) -> Vec<bool> {
        match *self {
            Self::AllProgrammed => vec![false; width],
            Self::AllErased => vec![true; width],
            Self::Checkerboard { phase } => (0..width).map(|i| (i % 2 == 0) != phase).collect(),
            Self::Seeded { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..width).map(|_| rng.gen_range(0u8..2) == 1).collect()
            }
        }
    }
}

/// One operation of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Write a page: to `lpn`, or to the controller's rotating logical
    /// cursor when `None`.
    Write {
        /// Target logical page.
        lpn: Option<usize>,
        /// Page contents.
        pattern: PagePattern,
    },
    /// Read the live copy of a logical page (unmapped reads count as
    /// misses, not errors).
    Read {
        /// Target logical page.
        lpn: usize,
    },
    /// Explicitly erase a physical block.
    EraseBlock {
        /// Block index.
        block: usize,
    },
}

/// A named, replayable sequence of operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Trace name (recorded in reports).
    pub name: String,
    /// The operations, in order.
    pub ops: Vec<WorkloadOp>,
}

impl WorkloadTrace {
    /// Sequential fill: `pages` writes through the rotating cursor —
    /// the log-structured best case.
    #[must_use]
    pub fn sequential_fill(pages: usize, pattern: PagePattern) -> Self {
        Self {
            name: "sequential_fill".into(),
            ops: (0..pages)
                .map(|_| WorkloadOp::Write { lpn: None, pattern })
                .collect(),
        }
    }

    /// Uniform-random logical overwrites — the wear-levelling stress
    /// case.
    #[must_use]
    pub fn random_writes(n: usize, logical_capacity: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            name: "random_writes".into(),
            ops: (0..n)
                .map(|i| WorkloadOp::Write {
                    lpn: Some(rng.gen_range(0..logical_capacity)),
                    pattern: PagePattern::Seeded {
                        seed: seed ^ i as u64,
                    },
                })
                .collect(),
        }
    }

    /// Hot/cold skew: `hot_op_fraction` of writes land on the first
    /// `hot_page_fraction` of the logical space — the GC-relevant
    /// locality real workloads show.
    #[must_use]
    pub fn hot_cold(
        n: usize,
        logical_capacity: usize,
        hot_op_fraction: f64,
        hot_page_fraction: f64,
        seed: u64,
    ) -> Self {
        let hot_pages = ((logical_capacity as f64 * hot_page_fraction) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            name: "hot_cold".into(),
            ops: (0..n)
                .map(|i| {
                    let hot = rng.gen_range(0.0..1.0) < hot_op_fraction;
                    let lpn = if hot {
                        rng.gen_range(0..hot_pages)
                    } else {
                        rng.gen_range(hot_pages.min(logical_capacity - 1)..logical_capacity)
                    };
                    WorkloadOp::Write {
                        lpn: Some(lpn),
                        pattern: PagePattern::Seeded {
                            seed: seed ^ i as u64,
                        },
                    }
                })
                .collect(),
        }
    }

    /// Read-disturb-heavy: one write then `reads_per_write` random reads,
    /// repeated — hammers pass-voltage exposure on unselected pages.
    #[must_use]
    pub fn read_heavy(
        writes: usize,
        reads_per_write: usize,
        logical_capacity: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(writes * (1 + reads_per_write));
        for i in 0..writes {
            let lpn = rng.gen_range(0..logical_capacity);
            ops.push(WorkloadOp::Write {
                lpn: Some(lpn),
                pattern: PagePattern::Seeded {
                    seed: seed ^ i as u64,
                },
            });
            for _ in 0..reads_per_write {
                ops.push(WorkloadOp::Read {
                    lpn: rng.gen_range(0..logical_capacity),
                });
            }
        }
        Self {
            name: "read_heavy".into(),
            ops,
        }
    }

    /// Steady-state GC churn: fill the whole logical space once, then
    /// `overwrites` uniform-random rewrites — the regime where every new
    /// write costs reclaim or relocation work.
    #[must_use]
    pub fn gc_churn(overwrites: usize, logical_capacity: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops: Vec<WorkloadOp> = (0..logical_capacity)
            .map(|lpn| WorkloadOp::Write {
                lpn: Some(lpn),
                pattern: PagePattern::Seeded {
                    seed: seed ^ lpn as u64,
                },
            })
            .collect();
        ops.extend((0..overwrites).map(|i| WorkloadOp::Write {
            lpn: Some(rng.gen_range(0..logical_capacity)),
            pattern: PagePattern::Seeded {
                seed: seed ^ (logical_capacity + i) as u64,
            },
        }));
        Self {
            name: "gc_churn".into(),
            ops,
        }
    }

    /// The acceptance-criterion trace for a shape: program every logical
    /// page once (a full-array page-program) and then erase every block.
    #[must_use]
    pub fn full_array_cycle(config: NandConfig) -> Self {
        let logical = config.logical_pages();
        let mut ops: Vec<WorkloadOp> = (0..logical)
            .map(|lpn| WorkloadOp::Write {
                lpn: Some(lpn),
                pattern: PagePattern::Checkerboard {
                    phase: lpn % 2 == 1,
                },
            })
            .collect();
        ops.extend((0..config.blocks).map(|block| WorkloadOp::EraseBlock { block }));
        Self {
            name: "full_array_cycle".into(),
            ops,
        }
    }

    /// Decodes a trace from its JSON serialization.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on syntax or schema errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = serde_json::from_str(text).map_err(|e| ArrayError::Snapshot(e.to_string()))?;
        let bad = |m: &str| ArrayError::Snapshot(m.to_string());
        let name = value
            .get("name")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| bad("missing trace name"))?
            .to_string();
        let ops = value
            .get("ops")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| bad("missing ops array"))?
            .iter()
            .map(decode_op)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { name, ops })
    }
}

/// A random-access stream of workload operations — the seam the
/// replayer actually consumes. `op(index)` must be a pure function of
/// the index, which buys two properties a materialized `Vec` cannot:
/// traces of billions of ops cost no memory (each op is synthesized on
/// demand), and any suffix can be replayed without regenerating the
/// prefix — the property checkpointed campaigns resume on.
///
/// [`WorkloadTrace`] implements the trait by indexing its `ops` vector,
/// so every existing generator works unchanged; [`GcChurnSource`] is
/// the streaming counterpart that never materializes.
pub trait TraceSource {
    /// Trace name (recorded in reports).
    fn name(&self) -> &str;
    /// Total operation count.
    fn len(&self) -> usize;
    /// `true` when the trace has no operations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The operation at `index` (`index < len()`). Must be pure: two
    /// calls with the same index return the same op.
    fn op(&self, index: usize) -> WorkloadOp;

    /// Iterates the ops in order without materializing them.
    fn iter_ops(&self) -> Box<dyn Iterator<Item = WorkloadOp> + '_>
    where
        Self: Sized,
    {
        Box::new((0..self.len()).map(move |i| self.op(i)))
    }
}

impl TraceSource for WorkloadTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.ops.len()
    }

    fn op(&self, index: usize) -> WorkloadOp {
        self.ops[index]
    }
}

/// Streaming steady-state GC churn: the counter-based counterpart of
/// [`WorkloadTrace::gc_churn`]. The first `capacity` ops fill the
/// logical space sequentially; every later op rewrites a
/// pseudo-randomly chosen logical page. Each op is a pure hash of
/// `(seed, index)`, so a billion-op churn stream costs 24 bytes and
/// resumes from any index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcChurnSource {
    capacity: usize,
    overwrites: usize,
    seed: u64,
}

impl GcChurnSource {
    /// A churn stream over `capacity` logical pages: one sequential
    /// fill, then `overwrites` random rewrites.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (there is nothing to overwrite).
    #[must_use]
    pub fn new(capacity: usize, overwrites: usize, seed: u64) -> Self {
        assert!(capacity > 0, "GC churn needs a non-empty logical space");
        Self {
            capacity,
            overwrites,
            seed,
        }
    }

    /// SplitMix64 finalizer — a full-avalanche mix of `(seed, i)`, so
    /// op targets are uniform without any sequential RNG state.
    fn mix(&self, i: u64) -> u64 {
        let mut z = self.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl TraceSource for GcChurnSource {
    fn name(&self) -> &str {
        "gc_churn_stream"
    }

    fn len(&self) -> usize {
        self.capacity + self.overwrites
    }

    fn op(&self, index: usize) -> WorkloadOp {
        let lpn = if index < self.capacity {
            index
        } else {
            (self.mix(index as u64) % self.capacity as u64) as usize
        };
        WorkloadOp::Write {
            lpn: Some(lpn),
            pattern: PagePattern::Seeded {
                seed: self.seed ^ index as u64,
            },
        }
    }
}

fn decode_pattern(value: &serde::Value) -> Result<PagePattern> {
    let bad = |m: &str| ArrayError::Snapshot(m.to_string());
    let kind = value
        .get("kind")
        .and_then(serde::Value::as_str)
        .ok_or_else(|| bad("pattern missing kind"))?;
    Ok(match kind {
        "all_programmed" => PagePattern::AllProgrammed,
        "all_erased" => PagePattern::AllErased,
        "checkerboard" => PagePattern::Checkerboard {
            phase: value
                .get("phase")
                .and_then(serde::Value::as_bool)
                .ok_or_else(|| bad("checkerboard missing phase"))?,
        },
        // The seed travels as a decimal string: the shim's JSON numbers
        // are f64, which would silently round u64 seeds above 2^53.
        "seeded" => PagePattern::Seeded {
            seed: value
                .get("seed")
                .and_then(serde::Value::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad("seeded pattern missing or invalid seed"))?,
        },
        other => return Err(bad(&format!("unknown pattern kind `{other}`"))),
    })
}

fn decode_op(value: &serde::Value) -> Result<WorkloadOp> {
    let bad = |m: &str| ArrayError::Snapshot(m.to_string());
    let op = value
        .get("op")
        .and_then(serde::Value::as_str)
        .ok_or_else(|| bad("op missing tag"))?;
    Ok(match op {
        "write" => WorkloadOp::Write {
            lpn: match value.get("lpn") {
                None | Some(serde::Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| bad("write lpn must be an integer"))?
                        as usize,
                ),
            },
            pattern: decode_pattern(
                value
                    .get("pattern")
                    .ok_or_else(|| bad("write missing pattern"))?,
            )?,
        },
        "read" => WorkloadOp::Read {
            lpn: value
                .get("lpn")
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| bad("read missing lpn"))? as usize,
        },
        "erase_block" => WorkloadOp::EraseBlock {
            block: value
                .get("block")
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| bad("erase missing block"))? as usize,
        },
        other => return Err(bad(&format!("unknown op `{other}`"))),
    })
}

impl serde::Serialize for PagePattern {
    fn to_value(&self) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        serde::Value::Object(match *self {
            Self::AllProgrammed => {
                vec![field("kind", serde::Value::String("all_programmed".into()))]
            }
            Self::AllErased => vec![field("kind", serde::Value::String("all_erased".into()))],
            Self::Checkerboard { phase } => vec![
                field("kind", serde::Value::String("checkerboard".into())),
                field("phase", serde::Value::Bool(phase)),
            ],
            // As a string: JSON numbers here are f64 and would round
            // seeds above 2^53.
            Self::Seeded { seed } => vec![
                field("kind", serde::Value::String("seeded".into())),
                field("seed", serde::Value::String(seed.to_string())),
            ],
        })
    }
}
impl serde::Deserialize for PagePattern {}

impl serde::Serialize for WorkloadOp {
    fn to_value(&self) -> serde::Value {
        let field = |k: &str, v: serde::Value| (k.to_string(), v);
        #[allow(clippy::cast_precision_loss)]
        serde::Value::Object(match self {
            Self::Write { lpn, pattern } => vec![
                field("op", serde::Value::String("write".into())),
                field(
                    "lpn",
                    lpn.map_or(serde::Value::Null, |l| serde::Value::Number(l as f64)),
                ),
                field("pattern", serde::Serialize::to_value(pattern)),
            ],
            Self::Read { lpn } => vec![
                field("op", serde::Value::String("read".into())),
                field("lpn", serde::Value::Number(*lpn as f64)),
            ],
            Self::EraseBlock { block } => vec![
                field("op", serde::Value::String("erase_block".into())),
                field("block", serde::Value::Number(*block as f64)),
            ],
        })
    }
}
impl serde::Deserialize for WorkloadOp {}

impl serde::Serialize for WorkloadTrace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), serde::Value::String(self.name.clone())),
            ("ops".to_string(), serde::Serialize::to_value(&self.ops)),
        ])
    }
}
impl serde::Deserialize for WorkloadTrace {}

/// Replayer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Record a [`WorkloadSnapshot`] every `snapshot_interval` ops
    /// (`0` = only the final snapshot).
    pub snapshot_interval: usize,
    /// Include a full margin scan in each snapshot (an O(cells) column
    /// sweep — cheap, but worth switching off for the largest arrays).
    pub margin_scan: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            snapshot_interval: 0,
            margin_scan: true,
        }
    }
}

/// Array health at one point of a replay: wear, occupancy and (when
/// enabled) the margin/disturb picture of the whole population.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSnapshot {
    /// Ops completed when the snapshot was taken.
    pub op_index: usize,
    /// Wear statistics.
    pub wear: WearStats,
    /// Live pages mapped.
    pub live_pages: usize,
    /// Margin report (the erased population's `vt.max` is the disturb
    /// trajectory; `worst_case_margin` the sensing headroom).
    pub margins: Option<MarginReport>,
    /// Mean injected-charge wear per cell (C) — the oxide-fluence
    /// trajectory of the endurance model.
    pub mean_injected_charge: f64,
}

/// What a replay did and what it cost.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadReport {
    /// Trace name.
    pub trace: String,
    /// Array shape replayed against.
    pub config: NandConfig,
    /// Total operations replayed.
    pub ops: usize,
    /// Page writes completed.
    pub writes: u64,
    /// Page reads completed.
    pub reads: u64,
    /// Reads of unmapped logical pages (misses, skipped).
    pub read_misses: u64,
    /// Explicit block erases.
    pub erases: u64,
    /// Cells in the array.
    pub cells: usize,
    /// Cells touched by program operations (written pages × width).
    pub cells_written: u64,
    /// Wall-clock of the replay loop (s).
    pub wall_seconds: f64,
    /// `cells_written / wall_seconds`.
    pub cells_per_second: f64,
    /// Bytes of per-cell state — the peak-RSS proxy of the SoA model.
    pub bytes_per_cell: usize,
    /// Per-write wall latency (µs). Writes executed inside one scheduled
    /// batch share that batch's mean, so percentiles resolve *batch*
    /// boundaries (a GC stall shows up in the batch that paid it), not
    /// individual ops within a batch. For true per-batch wall times —
    /// no mean-splitting — enable telemetry and read the
    /// `replay.write_batch_us` histogram, which records each batch's
    /// total duration as one sample.
    pub write_latency_us: Option<Summary>,
    /// Per-read wall latency (µs); batch-mean semantics as for writes
    /// (the true per-batch histogram is `replay.read_batch_us`).
    pub read_latency_us: Option<Summary>,
    /// Trajectories sampled during the replay (always ends with the
    /// final state).
    pub snapshots: Vec<WorkloadSnapshot>,
}

/// A hook called at every snapshot point of a replay (the
/// `snapshot_interval` cadence, plus exactly one terminal observation
/// when the trace length is not a multiple of the cadence) — the seam
/// through
/// which higher layers (e.g. the reliability pipeline's UBER tracker)
/// record their own trajectories against the same op clock without the
/// workload layer depending on them.
pub trait ReplayObserver {
    /// Observes the controller after `op_index` operations.
    ///
    /// # Errors
    ///
    /// Errors abort the replay.
    fn observe(&mut self, controller: &FlashController, op_index: usize) -> Result<()>;
}

/// The do-nothing observer behind plain [`replay`].
impl ReplayObserver for () {
    fn observe(&mut self, _controller: &FlashController, _op_index: usize) -> Result<()> {
        Ok(())
    }
}

/// A [`ReplayObserver`] that samples the unified telemetry registry at
/// every snapshot point, pairing each [`gnr_telemetry::snapshot`] with
/// the op index it was taken at — a per-phase telemetry trajectory on
/// the same cadence as the built-in [`WorkloadSnapshot`]s.
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    samples: Vec<(usize, gnr_telemetry::TelemetrySnapshot)>,
}

impl TelemetryObserver {
    /// An observer with no samples yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(op_index, snapshot)` samples collected so far.
    #[must_use]
    pub fn samples(&self) -> &[(usize, gnr_telemetry::TelemetrySnapshot)] {
        &self.samples
    }

    /// Consumes the observer, yielding its samples.
    #[must_use]
    pub fn into_samples(self) -> Vec<(usize, gnr_telemetry::TelemetrySnapshot)> {
        self.samples
    }
}

impl ReplayObserver for TelemetryObserver {
    fn observe(&mut self, _controller: &FlashController, op_index: usize) -> Result<()> {
        self.samples.push((op_index, gnr_telemetry::snapshot()));
        Ok(())
    }
}

/// Interns the replay-level metric catalogue with explicit zeros so a
/// telemetry-enabled replay always reports every acceptance-relevant
/// metric, even ones the particular trace never fires (a churn trace
/// with no epoch jump still shows `population.epoch.probes: 0`). A
/// no-op — no interning, no registry touch — while telemetry is
/// disabled.
fn intern_metric_catalogue() {
    gnr_telemetry::counter_add!("engine.flowmap.queries", 0);
    gnr_telemetry::counter_add!("engine.flowmap.answers", 0);
    gnr_telemetry::counter_add!("engine.flowmap.escapes", 0);
    gnr_telemetry::counter_add!("engine.ode.integrations", 0);
    gnr_telemetry::counter_add!("population.ops", 0);
    gnr_telemetry::counter_add!("population.groups", 0);
    gnr_telemetry::counter_add!("population.epoch.probes", 0);
    gnr_telemetry::counter_add!("population.epoch.fallbacks", 0);
    gnr_telemetry::counter_add!("ftl.host_pages_written", 0);
    gnr_telemetry::counter_add!("ftl.reclaims", 0);
    gnr_telemetry::counter_add!("ftl.gc.erases", 0);
    gnr_telemetry::counter_add!("ftl.gc.relocations", 0);
    gnr_telemetry::counter_add!("ftl.epoch_jumps", 0);
    gnr_telemetry::counter_add!("scheduler.executions", 0);
    gnr_telemetry::counter_add!("scheduler.reads_hoisted", 0);
    gnr_telemetry::counter_add!("replay.write_batches", 0);
    gnr_telemetry::counter_add!("replay.read_batches", 0);
    gnr_telemetry::counter_add!("ftl.program_fails", 0);
    gnr_telemetry::counter_add!("ftl.blocks_retired", 0);
    gnr_telemetry::counter_add!("ftl.read_only_entries", 0);
    gnr_telemetry::counter_add!("ftl.meta_checkpoints", 0);
    gnr_telemetry::counter_add!("ftl.power_losses", 0);
    gnr_telemetry::counter_add!("ftl.recoveries", 0);
    gnr_telemetry::counter_add!("ftl.read_reclaims", 0);
}

/// Replays a trace against a controller, recording per-op latency and
/// periodic health snapshots.
///
/// # Errors
///
/// Propagates write/erase failures (verify failures, capacity
/// exhaustion); read misses are counted, not raised.
pub fn replay(
    controller: &mut FlashController,
    trace: &WorkloadTrace,
    options: &ReplayOptions,
) -> Result<WorkloadReport> {
    replay_observed(controller, trace, options, &mut ())
}

/// [`replay`] with an observer called at every snapshot point, so
/// external trackers (error-rate reporters, custom probes) sample the
/// array on the same cadence the built-in snapshots use.
///
/// # Errors
///
/// Propagates replay failures and observer errors.
pub fn replay_observed(
    controller: &mut FlashController,
    trace: &WorkloadTrace,
    options: &ReplayOptions,
    observer: &mut dyn ReplayObserver,
) -> Result<WorkloadReport> {
    replay_streamed(controller, trace, options, observer)
}

/// Execution counts of one replayed segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SegmentCounts {
    pub writes: u64,
    pub reads: u64,
    pub read_misses: u64,
    pub erases: u64,
}

/// Executes ops `[start, end)` of `source` against the controller,
/// batching consecutive same-kind operations through the multi-plane
/// entry points. Batches never cross the segment boundary, so running a
/// trace segment-by-segment (on any segmentation) is bit-identical to
/// running it whole with the same boundaries — the property that makes
/// checkpointed campaigns resume digest-identical: the replayer always
/// cuts segments at snapshot boundaries.
pub(crate) fn execute_segment(
    controller: &mut FlashController,
    source: &dyn TraceSource,
    start: usize,
    end: usize,
    write_lat: &mut Vec<f64>,
    read_lat: &mut Vec<f64>,
) -> Result<SegmentCounts> {
    let width = controller.array().config().page_width;
    let mut counts = SegmentCounts::default();
    let mut i = start;
    while i < end {
        match source.op(i) {
            WorkloadOp::Write { .. } => {
                let mut jobs: Vec<(Option<usize>, Vec<bool>)> = Vec::new();
                while i + jobs.len() < end {
                    let WorkloadOp::Write { lpn, pattern } = source.op(i + jobs.len()) else {
                        break;
                    };
                    jobs.push((lpn, pattern.expand(width)));
                }
                let n = jobs.len();
                gnr_telemetry::set_op_index(i as u64);
                let t0 = Instant::now();
                let results = controller.write_batch(jobs);
                let elapsed = t0.elapsed();
                gnr_telemetry::counter_add!("replay.write_batches", 1);
                gnr_telemetry::histogram_record!(
                    "replay.write_batch_us",
                    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
                );
                #[allow(clippy::cast_precision_loss)]
                let per_op = elapsed.as_secs_f64() * 1.0e6 / n as f64;
                // Per-op results: the replayer keeps the historical
                // abort-on-first-failure contract — committed work
                // before the failing op stands.
                for result in results {
                    result?;
                    write_lat.push(per_op);
                    counts.writes += 1;
                }
                i += n;
            }
            WorkloadOp::Read { .. } => {
                let mut lpns: Vec<usize> = Vec::new();
                while i + lpns.len() < end {
                    let WorkloadOp::Read { lpn } = source.op(i + lpns.len()) else {
                        break;
                    };
                    lpns.push(lpn);
                }
                gnr_telemetry::set_op_index(i as u64);
                let t0 = Instant::now();
                let results = controller.read_batch(&lpns);
                let elapsed = t0.elapsed();
                gnr_telemetry::counter_add!("replay.read_batches", 1);
                gnr_telemetry::histogram_record!(
                    "replay.read_batch_us",
                    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
                );
                #[allow(clippy::cast_precision_loss)]
                let per_op = elapsed.as_secs_f64() * 1.0e6 / lpns.len() as f64;
                for result in results {
                    match result {
                        Ok(_) => {
                            read_lat.push(per_op);
                            counts.reads += 1;
                        }
                        Err(ArrayError::AddressOutOfRange { .. }) => counts.read_misses += 1,
                        Err(e) => return Err(e),
                    }
                }
                i += lpns.len();
            }
            WorkloadOp::EraseBlock { block } => {
                gnr_telemetry::set_op_index(i as u64);
                controller.erase_block(block)?;
                counts.erases += 1;
                i += 1;
            }
        }
    }
    Ok(counts)
}

/// [`replay_observed`] over any [`TraceSource`] — ops are synthesized
/// on demand, so streaming sources replay without ever materializing
/// their operation list.
///
/// # Errors
///
/// Propagates replay failures and observer errors.
pub fn replay_streamed(
    controller: &mut FlashController,
    source: &dyn TraceSource,
    options: &ReplayOptions,
    observer: &mut dyn ReplayObserver,
) -> Result<WorkloadReport> {
    let config = controller.array().config();
    let width = config.page_width;
    let total = source.len();
    let mut writes = 0u64;
    let mut reads = 0u64;
    let mut read_misses = 0u64;
    let mut erases = 0u64;
    let mut write_lat = Vec::new();
    let mut read_lat = Vec::new();
    let mut snapshots = Vec::new();

    intern_metric_catalogue();
    let start = Instant::now();
    // Consecutive same-kind operations batch through the controller's
    // multi-plane entry points (split at snapshot boundaries so the
    // recorded trajectories keep their cadence). Batched execution is
    // bit-identical to the historical per-op loop — the scheduler
    // preserves per-block order and distinct-block work commutes — so
    // only the wall clock changes. Per-op latency within a batch is the
    // batch wall time divided evenly across its ops.
    let mut i = 0;
    while i < total {
        let boundary = match options.snapshot_interval {
            0 => total,
            interval => ((i / interval + 1) * interval).min(total),
        };
        let counts = {
            let _zone = gnr_telemetry::zone!("replay.segment");
            execute_segment(
                controller,
                source,
                i,
                boundary,
                &mut write_lat,
                &mut read_lat,
            )?
        };
        writes += counts.writes;
        reads += counts.reads;
        read_misses += counts.read_misses;
        erases += counts.erases;
        i = boundary;
        if options.snapshot_interval > 0 && i % options.snapshot_interval == 0 {
            snapshots.push(take_snapshot(controller, i, options.margin_scan)?);
            observer.observe(controller, i)?;
        }
    }
    let wall = start.elapsed().as_secs_f64();
    // Terminal snapshot, exactly once: the cadence loop already recorded
    // it when the op count is a multiple of the interval — duplicating
    // it double-counted the final state in every trajectory (and fired
    // observers twice); and without this fallback, a trace whose length
    // is not a multiple of the cadence would drop its final state.
    if snapshots.last().map(|s| s.op_index) != Some(total) {
        snapshots.push(take_snapshot(controller, total, options.margin_scan)?);
        observer.observe(controller, total)?;
    }

    let cells_written = writes * width as u64;
    #[allow(clippy::cast_precision_loss)]
    let cells_per_second = if wall > 0.0 {
        cells_written as f64 / wall
    } else {
        0.0
    };
    let summarize = |lat: &[f64]| {
        (!lat.is_empty())
            .then(|| Summary::from_samples(lat))
            .transpose()
            .map_err(|e| ArrayError::Device(e.into()))
    };
    Ok(WorkloadReport {
        trace: source.name().to_string(),
        config,
        ops: total,
        writes,
        reads,
        read_misses,
        erases,
        cells: config.cells(),
        cells_written,
        wall_seconds: wall,
        cells_per_second,
        bytes_per_cell: controller.array().population().bytes_per_cell(),
        write_latency_us: summarize(&write_lat)?,
        read_latency_us: summarize(&read_lat)?,
        snapshots,
    })
}

/// A long-horizon endurance campaign: `rounds` alternations of one
/// epoch jump (`cycles_per_round` composed P/E cycles of `recipe`
/// through [`FlashController::run_epoch`]) and one full-fidelity
/// observation window (a streaming GC-churn workload replayed through
/// the ordinary FTL/scheduler path, with a [`ReplayObserver`] sampling
/// at every segment boundary).
///
/// The campaign advances through [`CampaignRunner::step`], each step
/// being exactly one checkpointable unit — callers may serialize a
/// [`CampaignCheckpoint`] between any two steps and resume in another
/// process with bit-identical continuation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnduranceCampaign {
    /// Epoch/window alternations.
    pub rounds: usize,
    /// Composed P/E cycles per round's epoch jump.
    pub cycles_per_round: u64,
    /// Cycles advanced per [`CampaignRunner::step`] within an epoch
    /// (`0` = the whole round's cycles in one step). Smaller chunks
    /// buy finer checkpoint granularity at the cost of more composed
    /// jumps — the jump count, not the cycle count, is what costs.
    pub epoch_chunk: u64,
    /// The pinned P/E pulse train each epoch composes.
    pub recipe: gnr_flash::engine::CycleRecipe,
    /// Random rewrites per observation window (each window first
    /// refills the logical space sequentially — the epoch jump left
    /// the array erased).
    pub window_overwrites: usize,
    /// Ops per window segment — the observer cadence *and* the
    /// checkpoint granularity inside a window (`0` = the whole window
    /// is one segment).
    pub window_segment: usize,
    /// Base seed; each round's window stream reseeds from it.
    pub window_seed: u64,
}

impl EnduranceCampaign {
    /// The window workload of `round`: a fresh GC-churn stream over
    /// the controller's logical space, decorrelated per round.
    #[must_use]
    pub fn window_source(&self, capacity: usize, round: usize) -> GcChurnSource {
        GcChurnSource::new(
            capacity,
            self.window_overwrites,
            self.window_seed ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }
}

/// Where a campaign stands inside its current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Mid-epoch: `cycles_done` of the round's cycles composed so far.
    Epoch {
        /// Cycles already composed this round.
        cycles_done: u64,
    },
    /// Mid-window: `ops_done` of the round's window ops replayed.
    Window {
        /// Window ops already replayed this round.
        ops_done: usize,
    },
}

/// The campaign's resumable position: the round index and the phase
/// position inside it. Together with a [`ControllerSnapshot`] this is
/// everything a resumed process needs — the campaign *configuration*
/// (recipe, seeds, shape) is reconstructed by the caller exactly like
/// the device blueprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignState {
    /// Current round (0-based); `round == rounds` means done.
    pub round: usize,
    /// Position inside the round.
    pub phase: CampaignPhase,
}

impl serde::Serialize for CampaignState {
    fn to_value(&self) -> serde::Value {
        #[allow(clippy::cast_precision_loss)]
        let (phase, progress) = match self.phase {
            CampaignPhase::Epoch { cycles_done } => ("epoch", cycles_done as f64),
            CampaignPhase::Window { ops_done } => ("window", ops_done as f64),
        };
        #[allow(clippy::cast_precision_loss)]
        serde::Value::Object(vec![
            ("round".to_string(), serde::Value::Number(self.round as f64)),
            ("phase".to_string(), serde::Value::String(phase.to_string())),
            ("progress".to_string(), serde::Value::Number(progress)),
        ])
    }
}
impl serde::Deserialize for CampaignState {}

impl CampaignState {
    /// Decodes a state from its JSON serialization.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing or ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let bad = |m: &str| ArrayError::Snapshot(m.to_string());
        let num = |name: &str| {
            value
                .get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| bad(&format!("campaign state missing `{name}`")))
        };
        let round = num("round")? as usize;
        let progress = num("progress")?;
        let phase = match value.get("phase").and_then(serde::Value::as_str) {
            Some("epoch") => CampaignPhase::Epoch {
                cycles_done: progress,
            },
            Some("window") => CampaignPhase::Window {
                ops_done: progress as usize,
            },
            _ => return Err(bad("campaign state has no phase tag")),
        };
        Ok(Self { round, phase })
    }
}

/// A full campaign checkpoint: the controller's complete state plus
/// the campaign position. Serializable between any two
/// [`CampaignRunner::step`] calls; restoring and continuing produces
/// the same [`FlashController::state_digest`] as never stopping.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignCheckpoint {
    /// The controller snapshot.
    pub controller: crate::controller::ControllerSnapshot,
    /// The campaign position.
    pub state: CampaignState,
}

impl CampaignCheckpoint {
    /// Decodes a checkpoint from its JSON serialization.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on syntax or schema errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let value = serde_json::from_str(text).map_err(|e| ArrayError::Snapshot(e.to_string()))?;
        Ok(Self {
            controller: crate::controller::ControllerSnapshot::from_value(
                value
                    .get("controller")
                    .ok_or_else(|| ArrayError::Snapshot("checkpoint missing controller".into()))?,
            )?,
            state: CampaignState::from_value(
                value
                    .get("state")
                    .ok_or_else(|| ArrayError::Snapshot("checkpoint missing state".into()))?,
            )?,
        })
    }
}

/// What one [`CampaignRunner::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStepReport {
    /// Round the step worked in.
    pub round: usize,
    /// Cycles composed (epoch steps; 0 for window steps).
    pub cycles: u64,
    /// Window ops replayed (window steps; 0 for epoch steps).
    pub ops: usize,
    /// Epoch telemetry (epoch steps only).
    pub epoch: Option<crate::population::EpochReport>,
}

/// Drives an [`EnduranceCampaign`] one checkpointable unit at a time.
///
/// Each [`Self::step`] advances either one epoch chunk or one window
/// segment and then returns, leaving the controller and the runner's
/// [`Self::state`] mutually consistent — the caller may checkpoint
/// there, or just keep stepping. An uninterrupted run and a
/// restore-and-continue run execute the *same* sequence of segment
/// boundaries, which is what makes them digest-identical (replay
/// batching never crosses a segment boundary).
#[derive(Debug)]
pub struct CampaignRunner<'a> {
    campaign: &'a EnduranceCampaign,
    state: CampaignState,
}

impl<'a> CampaignRunner<'a> {
    /// A runner at the campaign's start.
    #[must_use]
    pub fn new(campaign: &'a EnduranceCampaign) -> Self {
        Self::resume(
            campaign,
            CampaignState {
                round: 0,
                phase: CampaignPhase::Epoch { cycles_done: 0 },
            },
        )
    }

    /// A runner continuing from a checkpointed position (the paired
    /// controller must be restored from the same checkpoint).
    #[must_use]
    pub fn resume(campaign: &'a EnduranceCampaign, state: CampaignState) -> Self {
        Self { campaign, state }
    }

    /// The current position (what a checkpoint stores).
    #[must_use]
    pub fn state(&self) -> CampaignState {
        self.state
    }

    /// `true` when every round has run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state.round >= self.campaign.rounds
    }

    /// Advances one checkpointable unit: one epoch chunk, or one window
    /// segment followed by one observer call. Returns `None` when the
    /// campaign is already done.
    ///
    /// # Errors
    ///
    /// Device, replay and observer errors propagate; the runner's state
    /// is unspecified after an error.
    pub fn step(
        &mut self,
        controller: &mut FlashController,
        observer: &mut dyn ReplayObserver,
    ) -> Result<Option<CampaignStepReport>> {
        let campaign = self.campaign;
        if self.is_done() {
            return Ok(None);
        }
        let round = self.state.round;
        match self.state.phase {
            CampaignPhase::Epoch { cycles_done } => {
                let remaining = campaign.cycles_per_round.saturating_sub(cycles_done);
                let chunk = match campaign.epoch_chunk {
                    0 => remaining,
                    c => c.min(remaining),
                };
                let epoch = (chunk > 0)
                    .then(|| controller.run_epoch(&campaign.recipe, chunk))
                    .transpose()?;
                let done = cycles_done + chunk;
                self.state.phase = if done >= campaign.cycles_per_round {
                    CampaignPhase::Window { ops_done: 0 }
                } else {
                    CampaignPhase::Epoch { cycles_done: done }
                };
                Ok(Some(CampaignStepReport {
                    round,
                    cycles: chunk,
                    ops: 0,
                    epoch,
                }))
            }
            CampaignPhase::Window { ops_done } => {
                let source = campaign.window_source(controller.logical_capacity(), round);
                let total = source.len();
                let end = match campaign.window_segment {
                    0 => total,
                    seg => (ops_done + seg).min(total),
                };
                // Latency samples are observability-only; the campaign
                // records trajectories through its observer instead.
                let (mut wl, mut rl) = (Vec::new(), Vec::new());
                execute_segment(controller, &source, ops_done, end, &mut wl, &mut rl)?;
                observer.observe(controller, round * total + end)?;
                if end >= total {
                    self.state.round += 1;
                    self.state.phase = CampaignPhase::Epoch { cycles_done: 0 };
                } else {
                    self.state.phase = CampaignPhase::Window { ops_done: end };
                }
                Ok(Some(CampaignStepReport {
                    round,
                    cycles: 0,
                    ops: end - ops_done,
                    epoch: None,
                }))
            }
        }
    }

    /// Runs every remaining step.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::step`].
    pub fn run_to_end(
        &mut self,
        controller: &mut FlashController,
        observer: &mut dyn ReplayObserver,
    ) -> Result<Vec<CampaignStepReport>> {
        let mut reports = Vec::new();
        while let Some(report) = self.step(controller, observer)? {
            reports.push(report);
        }
        Ok(reports)
    }
}

fn take_snapshot(
    controller: &FlashController,
    op_index: usize,
    margin_scan: bool,
) -> Result<WorkloadSnapshot> {
    let pop = controller.array().population();
    let wear_summary = pop.wear_summary()?;
    Ok(WorkloadSnapshot {
        op_index,
        wear: controller.wear_stats()?,
        live_pages: controller.live_pages(),
        margins: if margin_scan {
            Some(margins::analyze(controller.array())?)
        } else {
            None
        },
        mean_injected_charge: wear_summary.mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NandConfig {
        NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 8,
        }
    }

    #[test]
    fn patterns_expand_deterministically() {
        assert_eq!(PagePattern::AllErased.expand(3), vec![true; 3]);
        assert_eq!(
            PagePattern::Checkerboard { phase: true }.expand(4),
            vec![false, true, false, true]
        );
        let a = PagePattern::Seeded { seed: 9 }.expand(64);
        let b = PagePattern::Seeded { seed: 9 }.expand(64);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn traces_round_trip_through_json() {
        let trace = WorkloadTrace {
            name: "mixed".into(),
            ops: vec![
                WorkloadOp::Write {
                    lpn: None,
                    pattern: PagePattern::Checkerboard { phase: true },
                },
                WorkloadOp::Write {
                    lpn: Some(3),
                    pattern: PagePattern::Seeded { seed: 77 },
                },
                WorkloadOp::Write {
                    lpn: Some(4),
                    // Above 2^53: must survive the f64-based JSON shim.
                    pattern: PagePattern::Seeded {
                        seed: u64::MAX - 12,
                    },
                },
                WorkloadOp::Read { lpn: 3 },
                WorkloadOp::EraseBlock { block: 1 },
            ],
        };
        let json = serde_json::to_string_pretty(&trace).unwrap();
        assert_eq!(WorkloadTrace::from_json(&json).unwrap(), trace);
    }

    #[test]
    fn sequential_fill_replays_cleanly() {
        let config = small();
        let mut c = FlashController::new(config);
        let trace = WorkloadTrace::sequential_fill(4, PagePattern::Checkerboard { phase: false });
        let report = replay(&mut c, &trace, &ReplayOptions::default()).unwrap();
        assert_eq!(report.writes, 4);
        assert_eq!(report.cells_written, 32);
        assert!(report.cells_per_second > 0.0);
        assert_eq!(report.bytes_per_cell, 52);
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.live_pages, 4);
        assert!(last.margins.as_ref().unwrap().worst_case_margin.unwrap() > 0.5);
        assert!(last.mean_injected_charge > 0.0);
    }

    #[test]
    fn gc_churn_forces_reclaims() {
        let config = small();
        let mut c = FlashController::new(config);
        let capacity = c.logical_capacity();
        let trace = WorkloadTrace::gc_churn(3 * capacity, capacity, 42);
        let report = replay(&mut c, &trace, &ReplayOptions::default()).unwrap();
        let wear = &report.snapshots.last().unwrap().wear;
        assert!(wear.total_erases > 0, "{wear:?}");
        assert_eq!(report.writes as usize, 4 * capacity);
    }

    #[test]
    fn read_heavy_counts_misses_without_failing() {
        let mut c = FlashController::new(small());
        let capacity = c.logical_capacity();
        let trace = WorkloadTrace::read_heavy(2, 5, capacity, 7);
        let report = replay(&mut c, &trace, &ReplayOptions::default()).unwrap();
        assert_eq!(report.reads + report.read_misses, 10);
        assert!(report.read_latency_us.is_some() || report.reads == 0);
    }

    #[test]
    fn hot_cold_concentrates_traffic() {
        let trace = WorkloadTrace::hot_cold(200, 100, 0.9, 0.1, 3);
        let hot_hits = trace
            .ops
            .iter()
            .filter(|op| matches!(op, WorkloadOp::Write { lpn: Some(l), .. } if *l < 10))
            .count();
        assert!(hot_hits > 140, "hot hits {hot_hits}");
    }

    #[test]
    fn snapshots_record_trajectories() {
        let mut c = FlashController::new(small());
        let capacity = c.logical_capacity();
        let trace = WorkloadTrace::gc_churn(capacity, capacity, 1);
        let options = ReplayOptions {
            snapshot_interval: 3,
            margin_scan: true,
        };
        let report = replay(&mut c, &trace, &options).unwrap();
        assert!(report.snapshots.len() >= 3);
        // Wear and fluence are monotone over the trace.
        for pair in report.snapshots.windows(2) {
            assert!(pair[1].wear.total_erases >= pair[0].wear.total_erases);
            assert!(pair[1].mean_injected_charge >= pair[0].mean_injected_charge - 1e-30);
        }
    }

    #[test]
    fn observers_fire_on_the_snapshot_cadence() {
        struct Recorder(Vec<usize>);
        impl ReplayObserver for Recorder {
            fn observe(&mut self, c: &FlashController, op_index: usize) -> crate::Result<()> {
                assert!(c.live_pages() <= c.logical_capacity());
                self.0.push(op_index);
                Ok(())
            }
        }
        let mut c = FlashController::new(small());
        let trace = WorkloadTrace::sequential_fill(4, PagePattern::AllProgrammed);
        let options = ReplayOptions {
            snapshot_interval: 2,
            margin_scan: false,
        };
        let mut recorder = Recorder(Vec::new());
        let report = replay_observed(&mut c, &trace, &options, &mut recorder).unwrap();
        // Interval snapshots at 2 and 4; op 4 is terminal and must not
        // be observed twice (the historical duplicate).
        assert_eq!(recorder.0, vec![2, 4]);
        assert_eq!(report.snapshots.len(), 2);
    }

    #[test]
    fn terminal_snapshot_survives_uneven_cadence() {
        // 5 ops on a cadence of 2: snapshots at 2 and 4 plus exactly one
        // terminal snapshot at 5 carrying the final state.
        let mut c = FlashController::new(small());
        let trace = WorkloadTrace::sequential_fill(5, PagePattern::AllProgrammed);
        let options = ReplayOptions {
            snapshot_interval: 2,
            margin_scan: false,
        };
        let report = replay(&mut c, &trace, &options).unwrap();
        let indices: Vec<usize> = report.snapshots.iter().map(|s| s.op_index).collect();
        assert_eq!(indices, vec![2, 4, 5]);
        // The 5th rotating write wrapped onto logical page 0: the final
        // state (4 live pages, 5 writes) is only visible in the terminal
        // snapshot the old cadence dropped.
        assert_eq!(report.snapshots.last().unwrap().live_pages, 4);
        assert_eq!(report.writes, 5);
    }

    #[test]
    fn streamed_replay_matches_materialized_trace() {
        let source = GcChurnSource::new(4, 6, 11);
        // Materialize the stream into a classic trace; both replays must
        // leave bit-identical controllers and equal reports.
        let trace = WorkloadTrace {
            name: source.name().to_string(),
            ops: source.iter_ops().collect(),
        };
        let options = ReplayOptions {
            snapshot_interval: 3,
            margin_scan: false,
        };
        let mut streamed = FlashController::new(small());
        let mut materialized = FlashController::new(small());
        let a = replay_streamed(&mut streamed, &source, &options, &mut ()).unwrap();
        let b = replay_observed(&mut materialized, &trace, &options, &mut ()).unwrap();
        assert_eq!(streamed.state_digest(), materialized.state_digest());
        assert_eq!(a.writes, b.writes);
        assert_eq!(a.snapshots.len(), b.snapshots.len());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn churn_stream_is_pure_in_the_index() {
        let source = GcChurnSource::new(3, 5, 99);
        assert_eq!(source.len(), 8);
        for i in 0..source.len() {
            assert_eq!(source.op(i), source.op(i));
        }
        // The fill prefix is sequential; overwrites stay in range.
        for i in 0..3 {
            assert!(matches!(source.op(i), WorkloadOp::Write { lpn: Some(l), .. } if l == i));
        }
        for i in 3..8 {
            assert!(matches!(source.op(i), WorkloadOp::Write { lpn: Some(l), .. } if l < 3));
        }
    }

    #[test]
    fn campaign_alternates_epochs_and_windows() {
        let campaign = EnduranceCampaign {
            rounds: 2,
            cycles_per_round: 5,
            epoch_chunk: 0,
            recipe: crate::ispp::nominal_cycle_recipe().unwrap(),
            window_overwrites: 4,
            window_segment: 0,
            window_seed: 7,
        };
        let mut controller = FlashController::new(small());
        let mut runner = CampaignRunner::new(&campaign);
        let reports = runner.run_to_end(&mut controller, &mut ()).unwrap();
        assert!(runner.is_done());
        // One epoch step and one window step per round.
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.cycles).sum::<u64>(), 10);
        let window_ops = controller.logical_capacity() + 4;
        assert_eq!(reports.iter().map(|r| r.ops).sum::<usize>(), 2 * window_ops);
        // The epochs aged every block by their cycle count.
        for block in 0..small().blocks {
            assert!(controller.array().erase_count(block).unwrap() >= 10);
        }
        // The epoch wear landed in the population's closed-form counters.
        let pop = controller.array().population();
        assert!(pop.program_ops_column().iter().all(|&ops| ops >= 10));
        assert!(pop.wear_summary().unwrap().mean > 0.0);
    }

    #[test]
    fn campaign_states_round_trip_through_json() {
        for state in [
            CampaignState {
                round: 0,
                phase: CampaignPhase::Epoch { cycles_done: 123 },
            },
            CampaignState {
                round: 7,
                phase: CampaignPhase::Window { ops_done: 42 },
            },
        ] {
            let json = serde_json::to_string(&state).unwrap();
            let decoded = CampaignState::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
            assert_eq!(decoded, state);
        }
    }

    #[test]
    fn full_array_cycle_covers_every_block() {
        let config = small();
        let mut c = FlashController::new(config);
        let trace = WorkloadTrace::full_array_cycle(config);
        let report = replay(&mut c, &trace, &ReplayOptions::default()).unwrap();
        assert_eq!(
            report.writes as usize,
            (config.blocks - 1) * config.pages_per_block
        );
        assert_eq!(report.erases as usize, config.blocks);
        // After the final erases nothing is live and margins collapse to
        // a single erased population.
        let last = report.snapshots.last().unwrap();
        assert_eq!(last.live_pages, 0);
        assert!(last.margins.as_ref().unwrap().programmed.is_none());
    }
}
