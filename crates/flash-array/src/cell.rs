//! A stateful flash cell: the device model plus its stored charge.

use gnr_flash::backend::{BackendKind, CellBackend, PcmDevice};
use gnr_flash::device::FloatingGateTransistor;
use gnr_flash::engine::ChargeBalanceEngine;
use gnr_flash::pulse::SquarePulse;
use gnr_flash::threshold::{LogicState, ReadModel};
use gnr_flash::transient::ProgramPulseSpec;
use gnr_units::{Charge, Time, Voltage};

use crate::Result;

/// Default program/erase pulse width used by the convenience operations
/// (100 µs — a realistic NAND-class pulse; full `Jin = Jout` equilibrium
/// would take seconds, see `gnr-flash::transient`).
pub const DEFAULT_PULSE_WIDTH_S: f64 = 1.0e-4;

/// Lifetime counters of one cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CellStats {
    /// Completed program operations.
    pub program_ops: u64,
    /// Completed erase operations.
    pub erase_ops: u64,
    /// Total magnitude of charge driven through the tunnel oxide (C) —
    /// the wear variable of the endurance model.
    pub injected_charge: f64,
}

/// One flash cell: device + stored 1-D state + read model.
///
/// The `charge` column is the backend's state variable: floating-gate
/// coulombs for the FN backends, the (dimensionless) amorphous fraction
/// for [`BackendKind::PcmResistive`] — exactly the contract of
/// [`gnr_flash::backend::DeviceBackend`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlashCell {
    device: FloatingGateTransistor,
    charge: Charge,
    read_model: ReadModel,
    read_voltage: Voltage,
    decision_level: Voltage,
    stats: CellStats,
    kind: BackendKind,
    pcm: Option<PcmDevice>,
}

impl FlashCell {
    /// Creates a cell around a device with the nominal read setup.
    #[must_use]
    pub fn new(device: FloatingGateTransistor) -> Self {
        Self {
            device,
            charge: Charge::ZERO,
            read_model: ReadModel::paper_nominal(),
            read_voltage: Voltage::from_volts(2.0),
            decision_level: Voltage::from_volts(1.0),
            stats: CellStats::default(),
            kind: BackendKind::GnrFloatingGate,
            pcm: None,
        }
    }

    /// The paper's MLGNR-CNT cell.
    #[must_use]
    pub fn paper_cell() -> Self {
        Self::new(FloatingGateTransistor::mlgnr_cnt_paper())
    }

    /// Creates a cell over an arbitrary device backend. For floating
    /// gates this is [`Self::new`] plus the material tag; for PCM the
    /// device slot holds the paper's FG device purely as a placeholder
    /// (its capacitances are never consulted — the PCM element owns the
    /// threshold map).
    #[must_use]
    pub fn with_backend(backend: &CellBackend) -> Self {
        let mut cell = match backend.floating_gate_device() {
            Some(device) => Self::new(device.clone()),
            None => Self::new(FloatingGateTransistor::mlgnr_cnt_paper()),
        };
        cell.kind = backend.kind();
        cell.pcm = backend.pcm_device().copied();
        cell
    }

    /// Rebuilds a cell from raw state — the materialisation path of
    /// [`crate::population::CellPopulation`] views: the population owns
    /// the state columns, this turns one row back into an owning cell.
    #[must_use]
    pub fn restore(device: FloatingGateTransistor, charge: Charge, stats: CellStats) -> Self {
        let mut cell = Self::new(device);
        cell.charge = charge;
        cell.stats = stats;
        cell
    }

    /// [`Self::restore`] with an explicit backend tag — the population's
    /// materialisation path for non-GNR backends.
    #[must_use]
    pub(crate) fn restore_backend(
        kind: BackendKind,
        pcm: Option<PcmDevice>,
        device: FloatingGateTransistor,
        charge: Charge,
        stats: CellStats,
    ) -> Self {
        let mut cell = Self::restore(device, charge, stats);
        cell.kind = kind;
        cell.pcm = pcm;
        cell
    }

    /// Re-points an existing cell at new raw state — the scratch-reuse
    /// path of the population layer. Bit-identical to [`Self::restore`]
    /// around the same device: the read setup is a construction
    /// constant, so only the charge and counters change.
    pub(crate) fn reset(&mut self, charge: Charge, stats: CellStats) {
        self.charge = charge;
        self.stats = stats;
    }

    /// The conventional-silicon baseline cell.
    #[must_use]
    pub fn silicon_cell() -> Self {
        Self::new(FloatingGateTransistor::silicon_conventional())
    }

    /// The underlying device (for PCM cells: the placeholder FG device,
    /// see [`Self::with_backend`]).
    #[must_use]
    pub fn device(&self) -> &FloatingGateTransistor {
        &self.device
    }

    /// Which device backend this cell evolves under.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The PCM element, when this is a PCM-backed cell.
    #[must_use]
    pub fn pcm_device(&self) -> Option<&PcmDevice> {
        self.pcm.as_ref()
    }

    /// Current stored charge.
    #[must_use]
    pub fn charge(&self) -> Charge {
        self.charge
    }

    /// Directly sets the stored charge (trap-injection models and tests).
    pub fn set_charge(&mut self, charge: Charge) {
        self.charge = charge;
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> CellStats {
        self.stats
    }

    /// Threshold shift of the current state.
    #[must_use]
    pub fn vt_shift(&self) -> Voltage {
        match &self.pcm {
            Some(pcm) => Voltage::from_volts(pcm.vt_shift_volts(self.charge.as_coulombs())),
            None => gnr_flash::threshold::vt_shift(&self.device, self.charge),
        }
    }

    /// Applies one gate pulse, advancing the stored charge through the
    /// transient simulator.
    ///
    /// # Errors
    ///
    /// Propagates device errors; a bias too low to tunnel
    /// ([`gnr_flash::DeviceError::NoTunneling`]) leaves the charge
    /// unchanged and is *not* an error here — sub-threshold pulses are
    /// legitimate array biases (inhibit levels).
    pub fn apply_pulse(&mut self, pulse: SquarePulse) -> Result<()> {
        if let Some(pcm) = self.pcm {
            return self.apply_pulse_pcm(&pcm, pulse);
        }
        let engine = ChargeBalanceEngine::new_for(self.kind, &self.device);
        self.apply_pulse_with(&engine, pulse)
    }

    /// The PCM pulse path: closed-form set/reset kinetics, sub-threshold
    /// biases are no-ops — the same contract the FN path exposes.
    fn apply_pulse_pcm(&mut self, pcm: &PcmDevice, pulse: SquarePulse) -> Result<()> {
        let a0 = self.charge.as_coulombs();
        match pcm.pulse_final_fraction(pulse.amplitude.as_volts(), pulse.width.as_seconds(), a0) {
            Some(a1) => {
                self.stats.injected_charge += pcm.wear_increment(a0, a1);
                self.charge = Charge::from_coulombs(a1);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Like [`Self::apply_pulse`] but reusing a prepared engine — the
    /// hot path for ISPP ladders, which apply many pulses to one cell
    /// and should pay the engine setup (device clone + table-cache
    /// lookups) once, not per rung. Fixed-width pulses route through
    /// [`ChargeBalanceEngine::pulse_final_charge`], so in the engine's
    /// default flow-map mode a pulse costs two interpolations against
    /// the process-wide master trajectory instead of an integration.
    ///
    /// The engine must have been built for this cell's device (e.g. via
    /// [`ChargeBalanceEngine::new`] or
    /// [`gnr_flash::engine::BatchSimulator::engine_for`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::apply_pulse`].
    pub fn apply_pulse_with(
        &mut self,
        engine: &ChargeBalanceEngine,
        pulse: SquarePulse,
    ) -> Result<()> {
        if let Some(pcm) = self.pcm {
            // PCM has no FN engine; the prepared engine is simply unused.
            return self.apply_pulse_pcm(&pcm, pulse);
        }
        let spec = ProgramPulseSpec::from_pulse(pulse, self.charge);
        match engine.pulse_final_charge(&spec) {
            Ok(q_new) => {
                self.stats.injected_charge +=
                    (q_new.as_coulombs() - self.charge.as_coulombs()).abs();
                self.charge = q_new;
                Ok(())
            }
            Err(gnr_flash::DeviceError::NoTunneling { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Programs with the paper's nominal 15 V / 100 µs pulse.
    ///
    /// # Errors
    ///
    /// Propagates transient failures.
    pub fn program_default(&mut self) -> Result<()> {
        self.apply_pulse(SquarePulse::new(
            gnr_flash::presets::program_vgs(),
            Time::from_seconds(DEFAULT_PULSE_WIDTH_S),
        ))?;
        self.stats.program_ops += 1;
        Ok(())
    }

    /// Erases with the paper's nominal −15 V / 100 µs pulse.
    ///
    /// # Errors
    ///
    /// Propagates transient failures.
    pub fn erase_default(&mut self) -> Result<()> {
        if let Some(pcm) = self.pcm {
            self.apply_pulse_pcm(
                &pcm,
                SquarePulse::new(
                    gnr_flash::presets::erase_vgs(),
                    Time::from_seconds(DEFAULT_PULSE_WIDTH_S),
                ),
            )?;
            self.stats.erase_ops += 1;
            return Ok(());
        }
        let engine = ChargeBalanceEngine::new_for(self.kind, &self.device);
        self.erase_default_with(&engine)
    }

    /// [`Self::erase_default`] with a prepared engine (block-erase hot
    /// path).
    ///
    /// # Errors
    ///
    /// Propagates transient failures.
    pub fn erase_default_with(&mut self, engine: &ChargeBalanceEngine) -> Result<()> {
        self.apply_pulse_with(
            engine,
            SquarePulse::new(
                gnr_flash::presets::erase_vgs(),
                Time::from_seconds(DEFAULT_PULSE_WIDTH_S),
            ),
        )?;
        self.stats.erase_ops += 1;
        Ok(())
    }

    /// Reads the logic state through the read model.
    #[must_use]
    pub fn read(&self) -> LogicState {
        gnr_flash::threshold::classify(self.vt_shift(), self.decision_level)
    }

    /// Drain current at the read point (sense-amp input).
    #[must_use]
    pub fn read_current(&self) -> gnr_units::Current {
        self.read_model
            .drain_current(self.read_voltage, self.vt_shift())
    }

    /// Verify comparison used by ISPP: `true` when the threshold shift
    /// has reached `target`.
    #[must_use]
    pub fn verify_program(&self, target: Voltage) -> bool {
        self.vt_shift() >= target
    }

    /// Verify comparison for erase: `true` when the shift is at or below
    /// `target`.
    #[must_use]
    pub fn verify_erase(&self, target: Voltage) -> bool {
        self.vt_shift() <= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_reads_erased() {
        let cell = FlashCell::paper_cell();
        assert_eq!(cell.read(), LogicState::Erased1);
        assert_eq!(cell.vt_shift().as_volts(), 0.0);
    }

    #[test]
    fn program_erase_cycle_flips_state() {
        let mut cell = FlashCell::paper_cell();
        cell.program_default().unwrap();
        assert_eq!(cell.read(), LogicState::Programmed0);
        assert!(cell.vt_shift().as_volts() > 1.0);
        cell.erase_default().unwrap();
        assert_eq!(cell.read(), LogicState::Erased1);
        assert_eq!(cell.stats().program_ops, 1);
        assert_eq!(cell.stats().erase_ops, 1);
        assert!(cell.stats().injected_charge > 0.0);
    }

    #[test]
    fn programmed_cell_draws_less_read_current() {
        let mut cell = FlashCell::paper_cell();
        let i_erased = cell.read_current();
        cell.program_default().unwrap();
        let i_prog = cell.read_current();
        assert!(i_prog < i_erased);
    }

    #[test]
    fn sub_threshold_pulse_is_a_noop() {
        let mut cell = FlashCell::paper_cell();
        cell.apply_pulse(SquarePulse::new(
            Voltage::from_volts(0.5),
            Time::from_microseconds(100.0),
        ))
        .unwrap();
        assert_eq!(cell.charge().as_coulombs(), 0.0);
    }

    #[test]
    fn longer_pulse_stores_more_charge() {
        let mut short = FlashCell::paper_cell();
        let mut long = FlashCell::paper_cell();
        short
            .apply_pulse(SquarePulse::new(
                Voltage::from_volts(15.0),
                Time::from_microseconds(10.0),
            ))
            .unwrap();
        long.apply_pulse(SquarePulse::new(
            Voltage::from_volts(15.0),
            Time::from_milliseconds(1.0),
        ))
        .unwrap();
        assert!(long.charge().as_coulombs() < short.charge().as_coulombs());
    }

    #[test]
    fn pcm_cell_cycles_through_the_same_api() {
        let backend = CellBackend::preset(BackendKind::PcmResistive);
        let mut cell = FlashCell::with_backend(&backend);
        assert_eq!(cell.kind(), BackendKind::PcmResistive);
        assert_eq!(cell.read(), LogicState::Erased1);
        // The default ±15 V / 100 µs pulses sit far above the 12 V
        // switching threshold, so the stock cycle works unmodified.
        cell.program_default().unwrap();
        assert!(cell.verify_program(Voltage::from_volts(2.0)));
        assert_eq!(cell.read(), LogicState::Programmed0);
        let programmed_state = cell.charge();
        // Pass-bias pulses (7 V) disturb nothing on PCM.
        cell.apply_pulse(SquarePulse::new(
            Voltage::from_volts(7.0),
            Time::from_microseconds(100.0),
        ))
        .unwrap();
        assert_eq!(cell.charge(), programmed_state);
        cell.erase_default().unwrap();
        assert!(cell.verify_erase(Voltage::from_volts(0.3)));
        assert_eq!(cell.stats().program_ops, 1);
        assert_eq!(cell.stats().erase_ops, 1);
        assert!(cell.stats().injected_charge > 0.0);
    }

    #[test]
    fn verify_levels_behave() {
        let mut cell = FlashCell::paper_cell();
        assert!(!cell.verify_program(Voltage::from_volts(1.0)));
        assert!(cell.verify_erase(Voltage::from_volts(0.5)));
        cell.program_default().unwrap();
        assert!(cell.verify_program(Voltage::from_volts(1.0)));
        assert!(!cell.verify_erase(Voltage::from_volts(0.5)));
    }
}
