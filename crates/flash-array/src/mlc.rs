//! Multi-level cell (MLC) operation: two bits per cell.
//!
//! The paper's cell stores one bit ('0' programmed / '1' erased, §I).
//! Because the stored charge is continuous, the same device supports
//! multi-level operation — the density lever of commercial NAND. Four
//! threshold states are placed with fine-step ISPP and discriminated by
//! three read reference levels:
//!
//! ```text
//! VT:   |  11  |   |  10  |   |  01  |   |  00  |
//!            R1         R2         R3
//! ```
//!
//! Gray coding between adjacent states keeps single-level read errors to
//! one bit, as in real MLC parts.

use gnr_flash::engine::BatchSimulator;
use gnr_flash::pulse::IsppLadder;
use gnr_units::{Time, Voltage};

use crate::cell::FlashCell;
use crate::ispp::IsppProgrammer;
use crate::population::CellPopulation;
use crate::{ArrayError, Result};

/// The four MLC states in threshold order (Gray-coded bit pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MlcState {
    /// Lowest threshold — fully erased, bits `11`.
    Erased11,
    /// First programmed level, bits `10`.
    Level10,
    /// Second programmed level, bits `00`.
    Level00,
    /// Highest programmed level, bits `01`.
    Level01,
}

impl MlcState {
    /// The stored bit pair `(msb, lsb)`.
    #[must_use]
    pub fn bits(self) -> (bool, bool) {
        match self {
            Self::Erased11 => (true, true),
            Self::Level10 => (true, false),
            Self::Level00 => (false, false),
            Self::Level01 => (false, true),
        }
    }

    /// All states in threshold order.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [Self::Erased11, Self::Level10, Self::Level00, Self::Level01]
    }

    /// Threshold rank: 0 (erased) to 3 (highest level).
    #[must_use]
    pub fn rank(self) -> usize {
        match self {
            Self::Erased11 => 0,
            Self::Level10 => 1,
            Self::Level00 => 2,
            Self::Level01 => 3,
        }
    }
}

/// The MLC level placement: verify targets for the three programmed
/// states and the three read references between states.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MlcLevels {
    /// ISPP verify targets for `Level10`, `Level00`, `Level01` (V).
    pub verify: [f64; 3],
    /// Read references `R1 < R2 < R3` separating the four states (V).
    pub read_refs: [f64; 3],
}

impl Default for MlcLevels {
    fn default() -> Self {
        Self {
            verify: [1.2, 2.4, 3.6],
            read_refs: [0.6, 1.8, 3.0],
        }
    }
}

impl MlcLevels {
    /// Validates the placement: references interleave the verify targets.
    ///
    /// # Errors
    ///
    /// [`ArrayError::VerifyFailed`]-free; returns `InvalidLevels` via
    /// `AddressOutOfRange` kind misuse is avoided — a dedicated message
    /// through [`ArrayError::WrongPageWidth`] would be misleading, so the
    /// validation panics on construction misuse instead.
    ///
    /// # Panics
    ///
    /// Panics when the orderings `R1 < V1 < R2 < V2 < R3 < V3` are
    /// violated.
    pub fn validate(&self) {
        let [v1, v2, v3] = self.verify;
        let [r1, r2, r3] = self.read_refs;
        assert!(
            r1 < v1 && v1 < r2 && r2 < v2 && v2 < r3 && r3 < v3,
            "MLC levels must interleave: R1 < V1 < R2 < V2 < R3 < V3"
        );
    }
}

/// The fine-step MLC placement ladder for a verify `level` (0.25 V
/// steps, 5 µs rungs) — shared by the single-cell and population paths
/// so they stay bit-identical.
fn placement_programmer(level: f64) -> IsppProgrammer {
    IsppProgrammer::new(
        IsppLadder::new(
            Voltage::from_volts(12.0),
            Voltage::from_volts(0.25),
            Voltage::from_volts(16.5),
            Time::from_microseconds(5.0),
        ),
        Voltage::from_volts(level),
    )
}

/// Reads the MLC state of population cell `index` against the three
/// read references.
///
/// # Errors
///
/// Address errors.
pub fn read_cell(pop: &CellPopulation, index: usize, levels: &MlcLevels) -> Result<MlcState> {
    let vt = pop.vt_shift(index)?.as_volts();
    let [r1, r2, r3] = levels.read_refs;
    Ok(if vt < r1 {
        MlcState::Erased11
    } else if vt < r2 {
        MlcState::Level10
    } else if vt < r3 {
        MlcState::Level00
    } else {
        MlcState::Level01
    })
}

/// Programs population cell `index` to `target` — the struct-of-arrays
/// mirror of [`MlcCell::program`], including the monotone-up rule
/// (erase before any downward move) and the overshoot ceiling check.
///
/// # Errors
///
/// Verify failures and device errors propagate.
///
/// # Panics
///
/// Panics if `levels` are not properly interleaved.
pub fn program_cell(
    pop: &mut CellPopulation,
    index: usize,
    target: MlcState,
    levels: &MlcLevels,
    batch: &BatchSimulator,
) -> Result<()> {
    levels.validate();
    if target.rank() <= read_cell(pop, index, levels)?.rank() {
        pop.erase_cells_default(&[index], batch)
            .pop()
            .expect("one result per index")?;
    }
    let level = match target {
        MlcState::Erased11 => return Ok(()),
        MlcState::Level10 => levels.verify[0],
        MlcState::Level00 => levels.verify[1],
        MlcState::Level01 => levels.verify[2],
    };
    pop.program_cells(&placement_programmer(level), &[index], batch)
        .pop()
        .expect("one result per index")?;
    let vt = pop.vt_shift(index)?.as_volts();
    let ceiling = match target {
        MlcState::Erased11 => unreachable!("handled above"),
        MlcState::Level10 => levels.read_refs[1],
        MlcState::Level00 => levels.read_refs[2],
        MlcState::Level01 => f64::INFINITY,
    };
    if vt >= ceiling {
        return Err(ArrayError::VerifyFailed {
            pulses: 0,
            reached_volts: vt,
            target_volts: ceiling,
        });
    }
    Ok(())
}

/// A two-bit cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MlcCell {
    cell: FlashCell,
    levels: MlcLevels,
}

impl MlcCell {
    /// Wraps a flash cell with the default level placement.
    ///
    /// # Panics
    ///
    /// Panics if `levels` are not properly interleaved.
    #[must_use]
    pub fn new(cell: FlashCell, levels: MlcLevels) -> Self {
        levels.validate();
        Self { cell, levels }
    }

    /// A paper cell with default levels.
    #[must_use]
    pub fn paper_cell() -> Self {
        Self::new(FlashCell::paper_cell(), MlcLevels::default())
    }

    /// The wrapped single-bit cell.
    #[must_use]
    pub fn cell(&self) -> &FlashCell {
        &self.cell
    }

    /// Reads the state by comparing the threshold shift against the three
    /// references.
    #[must_use]
    pub fn read(&self) -> MlcState {
        let vt = self.cell.vt_shift().as_volts();
        let [r1, r2, r3] = self.levels.read_refs;
        if vt < r1 {
            MlcState::Erased11
        } else if vt < r2 {
            MlcState::Level10
        } else if vt < r3 {
            MlcState::Level00
        } else {
            MlcState::Level01
        }
    }

    /// Programs the cell to `target` from the erased state.
    ///
    /// MLC programming is monotone: levels can only move *up* without an
    /// erase. Writing `Erased11` erases; writing a level at or below the
    /// current one first erases, then programs.
    ///
    /// # Errors
    ///
    /// Verify failures and device errors propagate.
    pub fn program(&mut self, target: MlcState) -> Result<()> {
        if target.rank() <= self.read().rank() {
            self.erase()?;
        }
        let level = match target {
            MlcState::Erased11 => return Ok(()),
            MlcState::Level10 => self.levels.verify[0],
            MlcState::Level00 => self.levels.verify[1],
            MlcState::Level01 => self.levels.verify[2],
        };
        // Fine-grained ladder for tight placement: 0.25 V steps, 5 µs.
        placement_programmer(level).program(&mut self.cell)?;
        // Placement check: the cell must not overshoot past the next read
        // reference (the ladder step bounds the overshoot).
        let vt = self.cell.vt_shift().as_volts();
        let ceiling = match target {
            MlcState::Erased11 => unreachable!("handled above"),
            MlcState::Level10 => self.levels.read_refs[1],
            MlcState::Level00 => self.levels.read_refs[2],
            MlcState::Level01 => f64::INFINITY,
        };
        if vt >= ceiling {
            return Err(ArrayError::VerifyFailed {
                pulses: 0,
                reached_volts: vt,
                target_volts: ceiling,
            });
        }
        Ok(())
    }

    /// Erases to `Erased11`.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn erase(&mut self) -> Result<()> {
        self.cell.erase_default()?;
        Ok(())
    }

    /// Writes a bit pair (Gray-decoded to the matching state).
    ///
    /// # Errors
    ///
    /// As for [`Self::program`].
    pub fn write_bits(&mut self, msb: bool, lsb: bool) -> Result<()> {
        let state = match (msb, lsb) {
            (true, true) => MlcState::Erased11,
            (true, false) => MlcState::Level10,
            (false, false) => MlcState::Level00,
            (false, true) => MlcState::Level01,
        };
        self.program(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_states_round_trip() {
        for target in MlcState::all() {
            let mut cell = MlcCell::paper_cell();
            cell.program(target).unwrap();
            assert_eq!(cell.read(), target, "target {target:?}");
        }
    }

    #[test]
    fn bit_pairs_round_trip() {
        for (msb, lsb) in [(true, true), (true, false), (false, false), (false, true)] {
            let mut cell = MlcCell::paper_cell();
            cell.write_bits(msb, lsb).unwrap();
            assert_eq!(cell.read().bits(), (msb, lsb));
        }
    }

    #[test]
    fn upgrade_without_erase_downgrade_with() {
        let mut cell = MlcCell::paper_cell();
        cell.program(MlcState::Level10).unwrap();
        let erases_before = cell.cell().stats().erase_ops;
        // Up: no erase needed.
        cell.program(MlcState::Level01).unwrap();
        assert_eq!(cell.cell().stats().erase_ops, erases_before);
        assert_eq!(cell.read(), MlcState::Level01);
        // Down: must erase first.
        cell.program(MlcState::Level10).unwrap();
        assert!(cell.cell().stats().erase_ops > erases_before);
        assert_eq!(cell.read(), MlcState::Level10);
    }

    #[test]
    fn gray_coding_differs_by_one_bit_between_neighbours() {
        let states = MlcState::all();
        for pair in states.windows(2) {
            let (a1, a0) = pair[0].bits();
            let (b1, b0) = pair[1].bits();
            let flips = usize::from(a1 != b1) + usize::from(a0 != b0);
            assert_eq!(flips, 1, "{:?} -> {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn placement_margins_hold() {
        // Each programmed state's VT must sit strictly between its
        // bracketing read references.
        let levels = MlcLevels::default();
        for (target, lo, hi) in [
            (MlcState::Level10, levels.read_refs[0], levels.read_refs[1]),
            (MlcState::Level00, levels.read_refs[1], levels.read_refs[2]),
            (MlcState::Level01, levels.read_refs[2], f64::INFINITY),
        ] {
            let mut cell = MlcCell::paper_cell();
            cell.program(target).unwrap();
            let vt = cell.cell().vt_shift().as_volts();
            assert!(vt > lo && vt < hi, "{target:?}: vt = {vt}");
        }
    }

    #[test]
    fn population_placement_matches_mlc_cell_bitwise() {
        let levels = MlcLevels::default();
        let batch = BatchSimulator::new();
        for target in MlcState::all() {
            let mut cell = MlcCell::paper_cell();
            cell.program(target).unwrap();

            let mut pop = CellPopulation::paper(2);
            program_cell(&mut pop, 0, target, &levels, &batch).unwrap();
            assert_eq!(read_cell(&pop, 0, &levels).unwrap(), target);
            assert_eq!(
                pop.charge(0).unwrap().as_coulombs(),
                cell.cell().charge().as_coulombs(),
                "target {target:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "interleave")]
    fn bad_level_placement_panics() {
        let levels = MlcLevels {
            verify: [1.0, 2.0, 3.0],
            read_refs: [1.5, 1.8, 2.5],
        };
        let _ = MlcCell::new(FlashCell::paper_cell(), levels);
    }
}
