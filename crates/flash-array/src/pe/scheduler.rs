//! Multi-plane command scheduling.
//!
//! Blocks are partitioned into planes by `block % planes` (the classic
//! NAND channel interleave). Queued commands execute in rounds: each
//! round pops at most one command per plane — necessarily on distinct
//! blocks — and merges the round's page programs, block erases and page
//! reads into single grouped submissions through the array's multi-op
//! primitives, so the batch engine fans the whole round out at once.
//!
//! # Ordering model
//!
//! Two invariants define the schedule:
//!
//! 1. **Per-block order is inviolate.** Commands touching the same block
//!    execute in issue order — disturb accumulation and page lifecycle
//!    depend on it. Since a block maps to exactly one plane, the
//!    per-plane FIFO enforces this naturally.
//! 2. **Reads have priority** (program-suspend-for-read): within a
//!    plane, a queued read jumps ahead of earlier program/erase commands
//!    *of other blocks*. It never crosses a command on its own block
//!    (which would change what it reads and the disturb it deals).
//!
//! Commands on distinct blocks touch disjoint cells and deterministic
//! physics, so they commute: any schedule obeying invariant 1 produces a
//! bit-identical final array state, whatever the plane count. That is
//! the parity property `tests/pe_scheduler.rs` pins.

use std::collections::VecDeque;

use crate::nand::NandArray;
use crate::{ArrayError, Result};

/// One physical command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeCommand {
    /// Program a page with explicit bits (`false` = programmed '0').
    Program {
        /// Block index.
        block: usize,
        /// Page index within the block.
        page: usize,
        /// Page contents.
        bits: Vec<bool>,
    },
    /// Erase a block.
    Erase {
        /// Block index.
        block: usize,
    },
    /// Read a page.
    Read {
        /// Block index.
        block: usize,
        /// Page index within the block.
        page: usize,
    },
}

impl PeCommand {
    /// The block the command targets.
    #[must_use]
    pub fn block(&self) -> usize {
        match *self {
            Self::Program { block, .. } | Self::Erase { block } | Self::Read { block, .. } => block,
        }
    }

    fn is_read(&self) -> bool {
        matches!(self, Self::Read { .. })
    }
}

/// Per-command outcome of a scheduled execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandOutcome {
    /// Page programmed and verified.
    Programmed,
    /// Block erased.
    Erased,
    /// Page read; the bits.
    Read(Vec<bool>),
}

/// What a scheduled execution did.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneExecution {
    /// Scheduling rounds executed (≤ the longest plane queue).
    pub rounds: usize,
    /// Per-command results, index-aligned with the submitted commands.
    pub results: Vec<Result<CommandOutcome>>,
    /// Reads that jumped ahead of at least one queued program/erase on
    /// another block of their plane (the suspend-for-read events).
    pub reads_hoisted: usize,
}

impl PlaneExecution {
    /// The first error among the per-command results, if any.
    ///
    /// # Errors
    ///
    /// Clones out the first per-command failure.
    pub fn first_error(&self) -> Result<()> {
        for r in &self.results {
            if let Err(e) = r {
                return Err(e.clone());
            }
        }
        Ok(())
    }
}

/// The multi-plane scheduler. Cheap to copy; holds only the plane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlaneScheduler {
    planes: usize,
}

impl Default for PlaneScheduler {
    /// A single plane: strictly sequential execution.
    fn default() -> Self {
        Self::new(1)
    }
}

impl PlaneScheduler {
    /// Creates a scheduler over `planes` planes.
    ///
    /// # Panics
    ///
    /// Panics when `planes` is zero.
    #[must_use]
    pub fn new(planes: usize) -> Self {
        assert!(planes > 0, "need at least one plane");
        Self { planes }
    }

    /// The plane count.
    #[must_use]
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The plane a block belongs to.
    #[must_use]
    pub fn plane_of(&self, block: usize) -> usize {
        block % self.planes
    }

    /// Executes a command stream against an array.
    ///
    /// State is applied command by command exactly as the per-command
    /// array API would (failures stay per-command: a verify failure on
    /// one page does not stop the round, matching
    /// [`NandArray::program_page`] semantics where pulses land whether or
    /// not every verify passes).
    #[must_use]
    pub fn execute(&self, array: &mut NandArray, commands: Vec<PeCommand>) -> PlaneExecution {
        let _zone = gnr_telemetry::zone!("scheduler.execute");
        gnr_telemetry::counter_add!("scheduler.executions", 1);
        gnr_telemetry::counter_add!("scheduler.commands", commands.len() as u64);
        let mut queues: Vec<VecDeque<(usize, PeCommand)>> = vec![VecDeque::new(); self.planes];
        let blocks = array.config().blocks;
        let mut results: Vec<Option<Result<CommandOutcome>>> = Vec::new();
        for (idx, cmd) in commands.into_iter().enumerate() {
            results.push(None);
            if cmd.block() >= blocks {
                results[idx] = Some(Err(ArrayError::AddressOutOfRange {
                    kind: "block",
                    index: cmd.block(),
                    len: blocks,
                }));
                continue;
            }
            queues[self.plane_of(cmd.block())].push_back((idx, cmd));
        }

        // Per-plane count of queued reads: the hoist scan only runs on
        // queues that still hold one, so pure write/erase streams (the
        // write_batch common case) pop the front in O(1).
        let mut pending_reads: Vec<usize> = queues
            .iter()
            .map(|q| q.iter().filter(|(_, c)| c.is_read()).count())
            .collect();
        let mut rounds = 0;
        let mut reads_hoisted = 0;
        while queues.iter().any(|q| !q.is_empty()) {
            rounds += 1;
            // Pop one command per plane: the earliest read that has no
            // earlier same-block command (suspend-for-read), else the
            // queue front. Distinct planes ⇒ distinct blocks, so the
            // round's commands commute and can be merged per kind.
            let mut programs: Vec<(usize, usize, usize, Vec<bool>)> = Vec::new();
            let mut erases: Vec<(usize, usize)> = Vec::new();
            let mut reads: Vec<(usize, usize, usize)> = Vec::new();
            for (queue, reads_left) in queues.iter_mut().zip(&mut pending_reads) {
                let Some(pick) = Self::pick(queue, *reads_left) else {
                    continue;
                };
                let (hoisted, (idx, cmd)) = pick;
                if cmd.is_read() {
                    *reads_left -= 1;
                }
                if hoisted {
                    reads_hoisted += 1;
                }
                match cmd {
                    PeCommand::Program { block, page, bits } => {
                        programs.push((idx, block, page, bits));
                    }
                    PeCommand::Erase { block } => erases.push((idx, block)),
                    PeCommand::Read { block, page } => reads.push((idx, block, page)),
                }
            }
            gnr_telemetry::histogram_record!(
                "scheduler.round_commands",
                (programs.len() + erases.len() + reads.len()) as u64
            );
            // Reads run first within the round — the priority the
            // hoisting already established; order across kinds cannot
            // change any outcome (disjoint blocks), only the latency
            // story the counters tell.
            if !reads.is_empty() {
                let pages: Vec<(usize, usize)> = reads.iter().map(|&(_, b, p)| (b, p)).collect();
                for (outcome, &(idx, ..)) in array.read_pages_multi(&pages).into_iter().zip(&reads)
                {
                    results[idx] = Some(outcome.map(CommandOutcome::Read));
                }
            }
            if !programs.is_empty() {
                let jobs: Vec<(usize, usize, &[bool])> = programs
                    .iter()
                    .map(|(_, b, p, bits)| (*b, *p, bits.as_slice()))
                    .collect();
                for (outcome, (idx, ..)) in
                    array.program_pages_multi(&jobs).into_iter().zip(&programs)
                {
                    results[*idx] = Some(outcome.map(|()| CommandOutcome::Programmed));
                }
            }
            if !erases.is_empty() {
                let blocks: Vec<usize> = erases.iter().map(|&(_, b)| b).collect();
                for (outcome, &(idx, _)) in
                    array.erase_blocks_multi(&blocks).into_iter().zip(&erases)
                {
                    results[idx] = Some(outcome.map(|()| CommandOutcome::Erased));
                }
            }
        }

        gnr_telemetry::counter_add!("scheduler.rounds", rounds as u64);
        gnr_telemetry::counter_add!("scheduler.reads_hoisted", reads_hoisted as u64);
        PlaneExecution {
            rounds,
            results: results
                .into_iter()
                .map(|r| r.expect("every command was executed or rejected"))
                .collect(),
            reads_hoisted,
        }
    }

    /// Pops the plane's next command: the earliest read not blocked by
    /// an earlier same-block command, else the front. A blocked read
    /// does not end the scan — a later read on an unobstructed block is
    /// still hoistable. `reads_left` is the caller-tracked count of
    /// reads still queued: zero skips the scan entirely (pure
    /// program/erase streams pop in O(1)). Returns whether the pick was
    /// a hoisted read.
    fn pick(
        queue: &mut VecDeque<(usize, PeCommand)>,
        reads_left: usize,
    ) -> Option<(bool, (usize, PeCommand))> {
        if reads_left == 0 {
            return queue.pop_front().map(|cmd| (false, cmd));
        }
        if queue.is_empty() {
            return None;
        }
        let mut chosen = 0;
        for pos in 0..queue.len() {
            let (_, cmd) = &queue[pos];
            if cmd.is_read() {
                let block = cmd.block();
                if !queue.iter().take(pos).any(|(_, c)| c.block() == block) {
                    chosen = pos;
                    break;
                }
            }
        }
        let hoisted = chosen > 0;
        Some((hoisted, queue.remove(chosen).expect("index in range")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nand::NandConfig;

    fn array() -> NandArray {
        NandArray::new(NandConfig {
            blocks: 4,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    fn checker(phase: bool) -> Vec<bool> {
        (0..4).map(|i| (i % 2 == 0) != phase).collect()
    }

    #[test]
    fn scheduled_programs_land_and_read_back() {
        let mut a = array();
        let sched = PlaneScheduler::new(2);
        let exec = sched.execute(
            &mut a,
            vec![
                PeCommand::Program {
                    block: 0,
                    page: 0,
                    bits: checker(false),
                },
                PeCommand::Program {
                    block: 1,
                    page: 0,
                    bits: checker(true),
                },
                PeCommand::Read { block: 0, page: 0 },
                PeCommand::Read { block: 1, page: 0 },
            ],
        );
        assert_eq!(exec.results.len(), 4);
        assert_eq!(
            exec.results[2],
            Ok(CommandOutcome::Read(checker(false))),
            "{exec:?}"
        );
        assert_eq!(exec.results[3], Ok(CommandOutcome::Read(checker(true))));
        // Two planes, two commands per plane: two rounds.
        assert_eq!(exec.rounds, 2);
    }

    #[test]
    fn reads_hoist_past_other_blocks_programs_only() {
        let mut a = array();
        // Plane 0 owns blocks 0 and 2. The read of block 2 may jump the
        // program of block 0; the read of block 0 must wait for it.
        a.program_page(2, 0, &checker(false)).unwrap();
        let sched = PlaneScheduler::new(2);
        let exec = sched.execute(
            &mut a,
            vec![
                PeCommand::Program {
                    block: 0,
                    page: 0,
                    bits: checker(true),
                },
                PeCommand::Read { block: 2, page: 0 },
                PeCommand::Read { block: 0, page: 0 },
            ],
        );
        assert_eq!(exec.reads_hoisted, 1);
        assert_eq!(exec.results[1], Ok(CommandOutcome::Read(checker(false))));
        // The same-block read still sees the program's data.
        assert_eq!(exec.results[2], Ok(CommandOutcome::Read(checker(true))));
    }

    #[test]
    fn blocked_reads_do_not_shadow_later_hoistable_reads() {
        // Plane 0 queue: [Program b0, Read b0, Read b2]. The read of
        // block 0 is pinned behind its own block's program, but the
        // read of block 2 is unobstructed and must still jump the
        // program — a blocked read must not end the hoist scan.
        let mut a = array();
        a.program_page(2, 0, &checker(true)).unwrap();
        let sched = PlaneScheduler::new(2);
        let exec = sched.execute(
            &mut a,
            vec![
                PeCommand::Program {
                    block: 0,
                    page: 0,
                    bits: checker(false),
                },
                PeCommand::Read { block: 0, page: 0 },
                PeCommand::Read { block: 2, page: 0 },
            ],
        );
        assert_eq!(exec.reads_hoisted, 1);
        assert_eq!(exec.results[1], Ok(CommandOutcome::Read(checker(false))));
        assert_eq!(exec.results[2], Ok(CommandOutcome::Read(checker(true))));
    }

    #[test]
    fn per_command_failures_stay_local() {
        let mut a = array();
        a.program_page(1, 0, &checker(false)).unwrap();
        let sched = PlaneScheduler::new(4);
        let exec = sched.execute(
            &mut a,
            vec![
                // Not erased → rejected; the rest of the stream runs.
                PeCommand::Program {
                    block: 1,
                    page: 0,
                    bits: checker(true),
                },
                PeCommand::Program {
                    block: 2,
                    page: 0,
                    bits: checker(true),
                },
                PeCommand::Erase { block: 99 },
            ],
        );
        assert!(matches!(
            exec.results[0],
            Err(ArrayError::PageNotErased { .. })
        ));
        assert_eq!(exec.results[1], Ok(CommandOutcome::Programmed));
        assert!(matches!(
            exec.results[2],
            Err(ArrayError::AddressOutOfRange { .. })
        ));
        assert!(exec.first_error().is_err());
    }

    #[test]
    fn plane_partition_is_modular() {
        let sched = PlaneScheduler::new(3);
        assert_eq!(sched.plane_of(0), 0);
        assert_eq!(sched.plane_of(4), 1);
        assert_eq!(sched.plane_of(5), 2);
        assert_eq!(PlaneScheduler::default().planes(), 1);
    }
}
