//! Program/erase operation subsystem: the paper's §III–§IV programming
//! and erasing analysis made *operational*.
//!
//! The base array layer exposes one-shot primitives — a fixed ISPP
//! ladder per cell, a per-cell erase ladder per block. Real P/E
//! operation closes the loop around them:
//!
//! * [`operation`] — **adaptive ISPP** (the step tightens near target
//!   using the previous rung's observed gain, so cells land in a narrow
//!   band just above the verify level with no fewer rungs wasted), and
//!   **erase-verify with soft-program** (erase pulses hit the whole
//!   block until every cell verifies erased, then the over-erased tail
//!   is compacted with low-amplitude soft-program pulses — the erase
//!   distribution engineering of the paper's erase analysis).
//! * [`scheduler`] — a **multi-plane command scheduler**: blocks are
//!   partitioned into planes (`block % planes`), queued page-program /
//!   block-erase / read commands execute one per plane per round with
//!   program-suspend-for-read priority, and each round's work is merged
//!   into single grouped submissions so the batch engine sees the whole
//!   round at once. Per-block command order is preserved — which is the
//!   exact invariant that makes any plane count bit-identical to
//!   sequential execution (commands on distinct blocks touch disjoint
//!   cells and commute).
//!
//! [`crate::controller::FlashController`] drives the scheduler from its
//! batched entry points (`write_batch` / `read_batch`), which the
//! workload replayer and the reliability scrubber use — every existing
//! scenario gains plane parallelism without touching its trace.

pub mod operation;
pub mod scheduler;

pub use operation::{AdaptiveIspp, BlockEraseReport, EraseVerify, SoftProgram};
pub use scheduler::{CommandOutcome, PeCommand, PlaneExecution, PlaneScheduler};
