//! Closed-loop program and erase operations.
//!
//! Two algorithms on top of the raw pulse primitives:
//!
//! * [`AdaptiveIspp`] — ISPP whose step size adapts to the previous
//!   rung's observed threshold gain: far from target the step grows (up
//!   to `max_step`) to save rungs, and once the predicted next gain
//!   would overshoot, the step tightens toward `min_step` so the cell
//!   lands in a narrow band just above the verify level.
//! * [`EraseVerify`] + [`SoftProgram`] — block-granularity erase as real
//!   NAND does it: every erase pulse hits *every* cell of the block, the
//!   loop repeats (stepping the amplitude) until the slowest cell
//!   verifies erased, and the over-erased tail that collective pulsing
//!   produces is then compacted with low-amplitude soft-program pulses.
//!   The result is an erased distribution bounded between the
//!   soft-program floor and the erase target — far narrower than what
//!   raw per-cell erase leaves behind.

use gnr_flash::engine::{BatchSimulator, ChargeBalanceEngine};
use gnr_flash::pulse::SquarePulse;
use gnr_units::{Time, Voltage};

use crate::cell::FlashCell;
use crate::column::{GroupState, PulseColumns};
use crate::ispp::IsppReport;
use crate::population::CellPopulation;
use crate::{ArrayError, Result};

/// FN charging self-limits: at an unchanged step the next ISPP rung
/// gains roughly this fraction of the last one (the stored charge
/// lowers the oxide field). The adaptive step controller divides by it
/// when predicting the next rung's gain.
const GAIN_DECAY: f64 = 0.45;

/// Adaptive incremental-step-pulse programming.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveIspp {
    /// First rung amplitude (V).
    pub start: Voltage,
    /// Initial step between rungs (V).
    pub initial_step: Voltage,
    /// Smallest step the controller will tighten to (V).
    pub min_step: Voltage,
    /// Largest step the controller will stretch to (V).
    pub max_step: Voltage,
    /// Amplitude ceiling (V).
    pub max_amplitude: Voltage,
    /// Rung width.
    pub width: Time,
    /// Verify target (threshold shift, V).
    pub target: Voltage,
    /// Pulse-count safety bound (the fixed ladder is bounded by its rung
    /// count; the adaptive one is bounded here).
    pub max_pulses: usize,
}

impl AdaptiveIspp {
    /// The adaptive counterpart of
    /// [`crate::ispp::IsppProgrammer::nominal`]: same 13 V entry, same
    /// 16 V ceiling, same 10 µs rungs and the same +2 V verify target,
    /// with the step free to move between 0.25 V and 1.5 V.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            start: Voltage::from_volts(13.0),
            initial_step: Voltage::from_volts(0.5),
            min_step: Voltage::from_volts(0.25),
            max_step: Voltage::from_volts(1.5),
            max_amplitude: Voltage::from_volts(16.0),
            width: Time::from_microseconds(10.0),
            target: Voltage::from_volts(2.0),
            max_pulses: 32,
        }
    }

    /// Programs one cell: verify first (a passing cell receives zero
    /// pulses), then pulse/verify with the step scaled each rung by
    /// `remaining / (gain × decay)` — the distance still to cover over
    /// the decayed gain the next rung is expected to deliver — clamped
    /// to `[min_step, max_step]`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::VerifyFailed`] when the amplitude ceiling or the
    /// pulse bound is hit before the target; device errors propagate.
    pub fn program_with(
        &self,
        cell: &mut FlashCell,
        engine: &ChargeBalanceEngine,
    ) -> Result<IsppReport> {
        let mut verify_vt = vec![cell.vt_shift().as_volts()];
        if cell.verify_program(self.target) {
            return Ok(IsppReport {
                pulses: 0,
                final_amplitude: 0.0,
                final_vt_shift: verify_vt[0],
                verify_vt,
            });
        }
        let mut amplitude = self.start.as_volts();
        let mut step = self.initial_step.as_volts();
        let max = self.max_amplitude.as_volts();
        let mut pulses = 0;
        loop {
            cell.apply_pulse_with(
                engine,
                SquarePulse::new(Voltage::from_volts(amplitude), self.width),
            )?;
            pulses += 1;
            let vt = cell.vt_shift().as_volts();
            let gain = vt - verify_vt[pulses - 1];
            verify_vt.push(vt);
            if cell.verify_program(self.target) {
                return Ok(IsppReport {
                    pulses,
                    final_amplitude: amplitude,
                    final_vt_shift: vt,
                    verify_vt,
                });
            }
            if amplitude >= max || pulses >= self.max_pulses {
                return Err(ArrayError::VerifyFailed {
                    pulses,
                    reached_volts: vt,
                    target_volts: self.target.as_volts(),
                });
            }
            // The adaptation: scale the step by the ratio of the
            // distance still to cover to the gain the *next* rung is
            // expected to deliver — `gain × GAIN_DECAY`, not the raw
            // gain. Far from target the step stretches (fewer rungs
            // than the fixed ladder); with the target within one decayed
            // gain it tightens toward `min_step`, trimming the overshoot
            // past the verify level without spending an extra rung.
            let remaining = self.target.as_volts() - vt;
            if gain > 1e-9 {
                step = (step * remaining / (gain * GAIN_DECAY))
                    .clamp(self.min_step.as_volts(), self.max_step.as_volts());
            }
            amplitude = (amplitude + step).min(max);
        }
    }

    /// Columnar [`Self::program_with`] over the listed state groups:
    /// the groups run in lockstep (every active group is pulsed each
    /// iteration, so one shared counter tracks per-group pulse counts),
    /// each carrying its own amplitude/step track — groups that happen
    /// to share an amplitude land in the same flow-map column that
    /// iteration. Control flow replicates the scalar loop verbatim.
    pub(crate) fn program_column(
        &self,
        cols: &mut PulseColumns<'_>,
        states: &mut [GroupState],
        members: &[usize],
    ) -> Vec<Result<IsppReport>> {
        let target = self.target.as_volts();
        let max = self.max_amplitude.as_volts();
        let mut results: Vec<Option<Result<IsppReport>>> = members.iter().map(|_| None).collect();
        let mut trajectories: Vec<Vec<f64>> = Vec::with_capacity(members.len());
        let mut tracks: Vec<(f64, f64)> = members
            .iter()
            .map(|_| (self.start.as_volts(), self.initial_step.as_volts()))
            .collect();
        let mut active: Vec<usize> = Vec::new();
        for (pos, &g) in members.iter().enumerate() {
            let vt = cols.vt_shift(&states[g]);
            trajectories.push(vec![vt]);
            if vt >= target {
                results[pos] = Some(Ok(IsppReport {
                    pulses: 0,
                    final_amplitude: 0.0,
                    final_vt_shift: vt,
                    verify_vt: std::mem::take(&mut trajectories[pos]),
                }));
            } else {
                active.push(pos);
            }
        }
        let mut pulses = 0;
        while !active.is_empty() {
            let jobs: Vec<(usize, SquarePulse)> = active
                .iter()
                .map(|&pos| {
                    (
                        members[pos],
                        SquarePulse::new(Voltage::from_volts(tracks[pos].0), self.width),
                    )
                })
                .collect();
            let outcomes = cols.apply(states, &jobs);
            pulses += 1;
            let mut still: Vec<usize> = Vec::new();
            for (&pos, outcome) in active.iter().zip(outcomes) {
                if let Err(e) = outcome {
                    results[pos] = Some(Err(e));
                    continue;
                }
                let vt = cols.vt_shift(&states[members[pos]]);
                let gain = vt - *trajectories[pos].last().expect("pre-verify entry");
                trajectories[pos].push(vt);
                let (amplitude, step) = &mut tracks[pos];
                if vt >= target {
                    results[pos] = Some(Ok(IsppReport {
                        pulses,
                        final_amplitude: *amplitude,
                        final_vt_shift: vt,
                        verify_vt: std::mem::take(&mut trajectories[pos]),
                    }));
                    continue;
                }
                if *amplitude >= max || pulses >= self.max_pulses {
                    results[pos] = Some(Err(ArrayError::VerifyFailed {
                        pulses,
                        reached_volts: vt,
                        target_volts: target,
                    }));
                    continue;
                }
                let remaining = target - vt;
                if gain > 1e-9 {
                    *step = (*step * remaining / (gain * GAIN_DECAY))
                        .clamp(self.min_step.as_volts(), self.max_step.as_volts());
                }
                *amplitude = (*amplitude + *step).min(max);
                still.push(pos);
            }
            active = still;
        }
        results
            .into_iter()
            .map(|r| r.expect("every group resolves"))
            .collect()
    }

    /// Programs many cells of a population (grouped by distinct state,
    /// driven columnar — the same machinery as the fixed-ladder path,
    /// so results are index-aligned and bit-deterministic).
    pub fn program_cells(
        &self,
        pop: &mut CellPopulation,
        indices: &[usize],
        batch: &BatchSimulator,
    ) -> Vec<Result<IsppReport>> {
        pop.run_columnar(indices, batch, |cols, states| {
            let members: Vec<usize> = (0..states.len()).collect();
            self.program_column(cols, states, &members)
        })
    }
}

/// Block-granularity erase-verify: collective pulses until every cell
/// of the block verifies erased.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EraseVerify {
    /// First erase pulse amplitude (negative, V).
    pub start: Voltage,
    /// Amplitude step per loop iteration (magnitude, V).
    pub step: Voltage,
    /// Most negative amplitude (V).
    pub max_amplitude: Voltage,
    /// Pulse width per iteration.
    pub width: Time,
    /// Erased verify ceiling: the loop ends when every cell's threshold
    /// shift is at or below this (V).
    pub erased_target: Voltage,
    /// Iteration bound.
    pub max_loops: usize,
}

impl EraseVerify {
    /// The nominal recipe matching [`crate::ispp::IsppEraser::nominal`]:
    /// −13 → −16 V in 0.5 V steps, 10 µs pulses, verify at ≤ +0.3 V.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            start: Voltage::from_volts(-13.0),
            step: Voltage::from_volts(0.5),
            max_amplitude: Voltage::from_volts(-16.0),
            width: Time::from_microseconds(10.0),
            erased_target: Voltage::from_volts(0.3),
            max_loops: 24,
        }
    }
}

/// Post-erase soft-program: low-amplitude pulses that lift the deeply
/// erased tail back up to a floor, compacting the erased distribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SoftProgram {
    /// Soft pulse amplitude (low — well under the programming point, V).
    pub amplitude: Voltage,
    /// Soft pulse width (short).
    pub width: Time,
    /// Compaction floor: every cell below this threshold shift is
    /// soft-programmed up until it clears the floor (V).
    pub floor: Voltage,
    /// Per-cell pulse bound.
    pub max_pulses: usize,
}

impl SoftProgram {
    /// A nominal compaction recipe: 11 V / 1 µs pulses (≈ +0.1–0.2 V per
    /// pulse near the floor, FN-self-limiting) lifting the tail to
    /// −0.5 V — together with the +0.3 V erase target this bounds the
    /// erased distribution to well under a volt.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            amplitude: Voltage::from_volts(11.0),
            width: Time::from_microseconds(1.0),
            floor: Voltage::from_volts(-0.5),
            max_pulses: 64,
        }
    }

    /// Soft-programs one standalone cell up to the floor — the per-cell
    /// mirror of the columnar block path, returning the pulse count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::compact_with`].
    pub fn compact(&self, cell: &mut FlashCell) -> Result<usize> {
        let engine = ChargeBalanceEngine::new(cell.device());
        self.compact_with(cell, &engine)
    }

    /// Soft-programs one cell up to the floor.
    ///
    /// # Errors
    ///
    /// [`ArrayError::VerifyFailed`] when the pulse bound is exhausted
    /// below the floor; device errors propagate.
    fn compact_with(&self, cell: &mut FlashCell, engine: &ChargeBalanceEngine) -> Result<usize> {
        let mut pulses = 0;
        while cell.vt_shift() < self.floor {
            if pulses >= self.max_pulses {
                return Err(ArrayError::VerifyFailed {
                    pulses,
                    reached_volts: cell.vt_shift().as_volts(),
                    target_volts: self.floor.as_volts(),
                });
            }
            cell.apply_pulse_with(engine, SquarePulse::new(self.amplitude, self.width))?;
            pulses += 1;
        }
        Ok(pulses)
    }

    /// Columnar [`Self::compact_with`] over the listed state groups —
    /// every still-low group is pulsed each iteration (one shared
    /// flow-map column, since the soft pulse is a fixed bias), so the
    /// shared iteration counter is each group's own pulse count.
    pub(crate) fn compact_column(
        &self,
        cols: &mut PulseColumns<'_>,
        states: &mut [GroupState],
        members: &[usize],
    ) -> Vec<Result<usize>> {
        let floor = self.floor.as_volts();
        let mut results: Vec<Option<Result<usize>>> = members.iter().map(|_| None).collect();
        let mut active: Vec<usize> = (0..members.len()).collect();
        let mut pulses = 0;
        while !active.is_empty() {
            let mut pending: Vec<usize> = Vec::new();
            for &pos in &active {
                let vt = cols.vt_shift(&states[members[pos]]);
                if vt >= floor {
                    results[pos] = Some(Ok(pulses));
                } else if pulses >= self.max_pulses {
                    results[pos] = Some(Err(ArrayError::VerifyFailed {
                        pulses,
                        reached_volts: vt,
                        target_volts: floor,
                    }));
                } else {
                    pending.push(pos);
                }
            }
            if pending.is_empty() {
                break;
            }
            let pulse = SquarePulse::new(self.amplitude, self.width);
            let jobs: Vec<(usize, SquarePulse)> =
                pending.iter().map(|&pos| (members[pos], pulse)).collect();
            let outcomes = cols.apply(states, &jobs);
            pulses += 1;
            let mut still: Vec<usize> = Vec::new();
            for (&pos, outcome) in pending.iter().zip(outcomes) {
                match outcome {
                    Err(e) => results[pos] = Some(Err(e)),
                    Ok(()) => still.push(pos),
                }
            }
            active = still;
        }
        results
            .into_iter()
            .map(|r| r.expect("every group resolves"))
            .collect()
    }
}

/// What one verified block erase did.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockEraseReport {
    /// Collective erase pulses applied to the block.
    pub erase_pulses: usize,
    /// Cells below the soft-program floor after the erase loop (the
    /// over-erased tail that got compacted).
    pub soft_programmed_cells: usize,
    /// Total soft-program pulses across those cells.
    pub soft_pulses: usize,
    /// Erased-distribution width `max(VT) − min(VT)` right after the
    /// erase loop, before compaction (V).
    pub width_before_soft: f64,
    /// Erased-distribution width after compaction (V).
    pub width_after_soft: f64,
}

/// Threshold spread `max − min` over the listed cells (V).
fn vt_spread(pop: &CellPopulation, indices: &[usize]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &i in indices {
        let vt = pop
            .vt_shift(i)
            .expect("spread over valid indices")
            .as_volts();
        lo = lo.min(vt);
        hi = hi.max(vt);
    }
    hi - lo
}

/// Verified block erase with optional soft-program compaction over the
/// listed cells (one block's worth): collective pulses until every cell
/// verifies at or below `spec.erased_target`, then cells below
/// `soft.floor` are pulsed back up. Each cell's erase-op counter
/// advances once for the whole operation.
///
/// # Errors
///
/// [`ArrayError::VerifyFailed`] when the loop bound is exhausted with
/// cells still above target (wear and pulse stress remain applied, as on
/// real silicon); soft-program and device errors propagate.
pub fn erase_verify_cells(
    pop: &mut CellPopulation,
    indices: &[usize],
    batch: &BatchSimulator,
    spec: &EraseVerify,
    soft: Option<&SoftProgram>,
) -> Result<BlockEraseReport> {
    let above = |pop: &CellPopulation| -> bool {
        indices
            .iter()
            .any(|&i| pop.vt_shift(i).expect("erase over valid indices") > spec.erased_target)
    };
    let mut amplitude = spec.start.as_volts();
    let mut erase_pulses = 0;
    while above(pop) {
        if erase_pulses >= spec.max_loops {
            pop.note_erase_ops(indices);
            let worst = indices
                .iter()
                .map(|&i| pop.vt_shift(i).expect("valid index").as_volts())
                .fold(f64::NEG_INFINITY, f64::max);
            return Err(ArrayError::VerifyFailed {
                pulses: erase_pulses,
                reached_volts: worst,
                target_volts: spec.erased_target.as_volts(),
            });
        }
        // The collective pulse: every cell of the block sees it, passing
        // cells included — that is what digs the over-erased tail the
        // soft-program stage exists to fix.
        let pulse = SquarePulse::new(Voltage::from_volts(amplitude), spec.width);
        for result in pop.apply_pulse_cells(indices, pulse, batch) {
            result?;
        }
        erase_pulses += 1;
        amplitude = (amplitude - spec.step.as_volts()).max(spec.max_amplitude.as_volts());
    }
    pop.note_erase_ops(indices);
    let width_before_soft = vt_spread(pop, indices);

    let mut soft_programmed_cells = 0;
    let mut soft_pulses = 0;
    if let Some(soft) = soft {
        let tail: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| pop.vt_shift(i).expect("valid index") < soft.floor)
            .collect();
        soft_programmed_cells = tail.len();
        let results = pop.run_columnar(&tail, batch, |cols, states| {
            let members: Vec<usize> = (0..states.len()).collect();
            soft.compact_column(cols, states, &members)
        });
        for result in results {
            soft_pulses += result?;
        }
    }
    Ok(BlockEraseReport {
        erase_pulses,
        soft_programmed_cells,
        soft_pulses,
        width_before_soft,
        width_after_soft: vt_spread(pop, indices),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ispp::IsppProgrammer;

    #[test]
    fn adaptive_ispp_reaches_the_nominal_target() {
        let mut cell = FlashCell::paper_cell();
        let engine = ChargeBalanceEngine::new(cell.device());
        let report = AdaptiveIspp::nominal()
            .program_with(&mut cell, &engine)
            .unwrap();
        assert!(report.pulses >= 1);
        assert!(report.final_vt_shift >= 2.0);
        assert_eq!(report.verify_vt.len(), report.pulses + 1);
    }

    #[test]
    fn adaptive_ispp_needs_no_more_pulses_than_the_fixed_ladder() {
        let mut fixed_cell = FlashCell::paper_cell();
        let fixed = IsppProgrammer::nominal().program(&mut fixed_cell).unwrap();
        let mut adaptive_cell = FlashCell::paper_cell();
        let engine = ChargeBalanceEngine::new(adaptive_cell.device());
        let adaptive = AdaptiveIspp::nominal()
            .program_with(&mut adaptive_cell, &engine)
            .unwrap();
        assert!(
            adaptive.pulses <= fixed.pulses,
            "adaptive {} vs fixed {}",
            adaptive.pulses,
            fixed.pulses
        );
    }

    #[test]
    fn adaptive_ispp_verifies_before_the_first_rung() {
        let mut cell = FlashCell::paper_cell();
        let engine = ChargeBalanceEngine::new(cell.device());
        let spec = AdaptiveIspp::nominal();
        spec.program_with(&mut cell, &engine).unwrap();
        let vt = cell.vt_shift().as_volts();
        let again = spec.program_with(&mut cell, &engine).unwrap();
        assert_eq!(again.pulses, 0);
        assert_eq!(cell.vt_shift().as_volts(), vt);
    }

    #[test]
    fn adaptive_ispp_fails_cleanly_on_unreachable_targets() {
        let mut cell = FlashCell::paper_cell();
        let engine = ChargeBalanceEngine::new(cell.device());
        let spec = AdaptiveIspp {
            target: Voltage::from_volts(9.0),
            ..AdaptiveIspp::nominal()
        };
        let err = spec.program_with(&mut cell, &engine).unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { .. }));
    }

    #[test]
    fn erase_verify_converges_and_soft_program_compacts() {
        let mut pop = CellPopulation::paper(8);
        let batch = BatchSimulator::sequential();
        // Program half the block; the other half stays fresh — the
        // worst case for collective pulsing (fresh cells over-erase
        // while programmed cells catch up).
        let programmer = IsppProgrammer::nominal();
        for r in pop.program_cells(&programmer, &[0, 1, 2, 3], &batch) {
            r.unwrap();
        }
        let indices: Vec<usize> = (0..8).collect();
        let report = erase_verify_cells(
            &mut pop,
            &indices,
            &batch,
            &EraseVerify::nominal(),
            Some(&SoftProgram::nominal()),
        )
        .unwrap();
        assert!(report.erase_pulses >= 1);
        assert!(report.soft_programmed_cells > 0);
        assert!(
            report.width_after_soft < report.width_before_soft || report.width_before_soft == 0.0,
            "{report:?}"
        );
        for &i in &indices {
            let vt = pop.vt_shift(i).unwrap();
            assert!(vt <= Voltage::from_volts(0.3), "cell {i} vt {vt:?}");
            assert!(
                vt >= Voltage::from_volts(-0.5) - Voltage::from_volts(1e-9),
                "cell {i} below the soft floor: {vt:?}"
            );
            assert_eq!(pop.stats(i).unwrap().erase_ops, 1);
        }
    }

    #[test]
    fn columnar_adaptive_ispp_matches_the_scalar_cell_path_bitwise() {
        let mut pop = CellPopulation::paper(2);
        let batch = BatchSimulator::sequential();
        let spec = AdaptiveIspp::nominal();
        let reports = spec.program_cells(&mut pop, &[0, 1], &batch);

        let mut cell = FlashCell::paper_cell();
        let engine = batch.engine_for(cell.device());
        let expected = spec.program_with(&mut cell, &engine).unwrap();

        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.as_ref().unwrap(), &expected, "cell {i}");
            assert_eq!(
                pop.charge(i).unwrap().as_coulombs().to_bits(),
                cell.charge().as_coulombs().to_bits(),
                "cell {i}"
            );
            assert_eq!(pop.stats(i).unwrap(), cell.stats());
        }
    }

    #[test]
    fn columnar_soft_program_matches_the_scalar_cell_path_bitwise() {
        let batch = BatchSimulator::sequential();
        let soft = SoftProgram::nominal();
        // Over-erase first so the compaction has work to do.
        let deep_erase =
            SquarePulse::new(Voltage::from_volts(-15.0), Time::from_microseconds(300.0));

        let mut pop = CellPopulation::paper(2);
        for r in pop.apply_pulse_cells(&[0, 1], deep_erase, &batch) {
            r.unwrap();
        }
        let results = pop.run_columnar(&[0, 1], &batch, |cols, states| {
            let members: Vec<usize> = (0..states.len()).collect();
            soft.compact_column(cols, states, &members)
        });

        let mut cell = FlashCell::paper_cell();
        let engine = batch.engine_for(cell.device());
        cell.apply_pulse_with(&engine, deep_erase).unwrap();
        assert!(cell.vt_shift() < soft.floor, "setup must over-erase");
        let expected = soft.compact_with(&mut cell, &engine).unwrap();
        assert!(expected >= 1);

        for (i, result) in results.iter().enumerate() {
            assert_eq!(*result.as_ref().unwrap(), expected, "cell {i}");
            assert_eq!(
                pop.charge(i).unwrap().as_coulombs().to_bits(),
                cell.charge().as_coulombs().to_bits(),
                "cell {i}"
            );
        }
    }

    #[test]
    fn erase_verify_loop_bound_reports_the_worst_cell() {
        let mut pop = CellPopulation::paper(2);
        let batch = BatchSimulator::sequential();
        let programmer = IsppProgrammer::nominal();
        for r in pop.program_cells(&programmer, &[0, 1], &batch) {
            r.unwrap();
        }
        // An erase too weak to move the cells in one allowed loop.
        let spec = EraseVerify {
            start: Voltage::from_volts(-10.0),
            max_amplitude: Voltage::from_volts(-10.5),
            width: Time::from_microseconds(0.1),
            max_loops: 1,
            ..EraseVerify::nominal()
        };
        let err = erase_verify_cells(&mut pop, &[0, 1], &batch, &spec, None).unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { pulses: 1, .. }));
    }
}
