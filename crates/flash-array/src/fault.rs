//! Deterministic, seeded fault injection and the power-loss harness.
//!
//! The paper's P/E analysis is about cells that *degrade and fail*; this
//! module makes failure a first-class, reproducible input. A
//! [`FaultPlan`] describes grown-bad blocks (erase-count thresholds),
//! per-cell stuck-at faults, soft read flips, program-status failures
//! and power-loss points — and every decision is a **pure function of
//! the seed and local persistent state** (block erase counts, cell
//! indices), never of global op order. Two replays that drive a block
//! through the same local history see exactly the same faults, no
//! matter how the surrounding traffic was interleaved — the property
//! the fault-determinism proptests pin.
//!
//! The power-loss half of the plan is keyed on the replayer's op clock:
//! [`crash_and_recover`] runs a trace up to an injected cut point,
//! captures what survives power loss (the array medium plus the
//! controller's checkpoint + delta journal, see
//! [`FlashController::crash_image`]), rebuilds a controller from it and
//! finishes the trace. Recovery is pinned by the same digest discipline
//! multi-plane parity and campaign checkpoints use: the recovered
//! [`FlashController::state_digest`] must equal the uninterrupted run's
//! at the cut, and the finished run's digest must equal the
//! uninterrupted final digest.

use gnr_flash::backend::CellBackend;
use gnr_numerics::hash::{fnv1a_fold_bytes, FNV1A_OFFSET};

use crate::controller::FlashController;
use crate::workload::TraceSource;
use crate::Result;

/// Domain-separation tags: each fault family draws from its own hash
/// lane so (say) the stuck-cell lottery can never correlate with the
/// program-fail lottery.
const TAG_BAD_SELECT: u64 = 0x6261_645f_7365_6c01;
const TAG_BAD_THRESH: u64 = 0x6261_645f_7468_7202;
const TAG_STUCK: u64 = 0x7374_7563_6b5f_6103;
const TAG_FLIP: u64 = 0x666c_6970_5f72_6404;
const TAG_PROGRAM: u64 = 0x7067_6d5f_6661_6905;

/// A deterministic, seeded fault schedule for one array.
///
/// The default plan injects nothing; every knob is independent. All
/// decisions are pure functions of `(seed, local state)` — see the
/// module docs for why that makes them replay-order-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault lottery.
    pub seed: u64,
    /// Explicit grown-bad triggers: `(block, threshold)` — the block's
    /// erase fails (with [`crate::ArrayError::BlockRetired`]) once its
    /// erase count reaches `threshold`.
    pub bad_block_after_erases: Vec<(usize, u64)>,
    /// Fraction of blocks that additionally grow bad at a seeded
    /// erase-count threshold drawn uniformly from
    /// `[grown_bad_min_erases, grown_bad_max_erases]`.
    pub grown_bad_fraction: f64,
    /// Lower bound of the seeded grown-bad threshold window.
    pub grown_bad_min_erases: u64,
    /// Upper bound of the seeded grown-bad threshold window.
    pub grown_bad_max_erases: u64,
    /// Fraction of cells manufactured stuck: their reads always return
    /// the seeded stuck value, whatever was programmed.
    pub stuck_cell_fraction: f64,
    /// Per-cell soft read-flip probability. Flips are drawn per
    /// `(cell, erase generation)`: they vanish when the block is next
    /// erased (trapped charge, not a defect), and a re-read inside one
    /// generation reproduces the same flip — deterministic replay.
    pub read_flip_probability: f64,
    /// Per-page program-status failure probability, drawn per
    /// `(block, page, erase generation)` — a page that fails keeps
    /// failing until its block is erased again, like real marginal
    /// wordlines.
    pub program_fail_probability: f64,
    /// Op-clock indices at which the power-loss harness cuts power.
    pub power_loss_ops: Vec<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            bad_block_after_erases: Vec::new(),
            grown_bad_fraction: 0.0,
            grown_bad_min_erases: 1,
            grown_bad_max_erases: 1,
            stuck_cell_fraction: 0.0,
            read_flip_probability: 0.0,
            program_fail_probability: 0.0,
            power_loss_ops: Vec::new(),
        }
    }
}

/// splitmix64 finalizer: avalanches an FNV fold so nearby keys (cell i
/// vs i+1) land on independent lottery draws.
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a hash value.
#[allow(clippy::cast_precision_loss)]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// One lottery draw: FNV-fold the seed, a domain tag and the local
    /// key words, then avalanche.
    fn draw(&self, tag: u64, words: &[u64]) -> u64 {
        let mut h = fnv1a_fold_bytes(FNV1A_OFFSET, &self.seed.to_le_bytes());
        h = fnv1a_fold_bytes(h, &tag.to_le_bytes());
        for &w in words {
            h = fnv1a_fold_bytes(h, &w.to_le_bytes());
        }
        avalanche(h)
    }

    /// The erase-count threshold at which `block` grows bad, if it ever
    /// does: explicit triggers first, then the seeded lottery.
    #[must_use]
    pub fn grown_bad_threshold(&self, block: usize) -> Option<u64> {
        if let Some(&(_, t)) = self
            .bad_block_after_erases
            .iter()
            .find(|&&(b, _)| b == block)
        {
            return Some(t);
        }
        if self.grown_bad_fraction <= 0.0 {
            return None;
        }
        let select = self.draw(TAG_BAD_SELECT, &[block as u64]);
        if unit(select) >= self.grown_bad_fraction {
            return None;
        }
        let lo = self.grown_bad_min_erases.max(1);
        let hi = self.grown_bad_max_erases.max(lo);
        let span = hi - lo + 1;
        Some(lo + self.draw(TAG_BAD_THRESH, &[block as u64]) % span)
    }

    /// Whether `block` reports a failed erase status at `erase_count`
    /// (the count *after* the attempted erase).
    #[must_use]
    pub fn block_goes_bad(&self, block: usize, erase_count: u64) -> bool {
        self.grown_bad_threshold(block)
            .is_some_and(|t| erase_count >= t)
    }

    /// The stuck read value of a cell, if the cell lost the
    /// manufacturing lottery.
    #[must_use]
    pub fn stuck_bit(&self, cell: usize) -> Option<bool> {
        if self.stuck_cell_fraction <= 0.0 {
            return None;
        }
        let h = self.draw(TAG_STUCK, &[cell as u64]);
        (unit(h) < self.stuck_cell_fraction).then_some(h & (1 << 60) != 0)
    }

    /// Whether a read of `cell` soft-flips within erase generation
    /// `generation` (the containing block's erase count).
    #[must_use]
    pub fn read_flips(&self, cell: usize, generation: u64) -> bool {
        self.read_flip_probability > 0.0
            && unit(self.draw(TAG_FLIP, &[cell as u64, generation])) < self.read_flip_probability
    }

    /// Applies stuck-at then soft-flip faults to one sensed bit.
    #[must_use]
    pub fn corrupt_read_bit(&self, cell: usize, generation: u64, bit: bool) -> bool {
        if let Some(stuck) = self.stuck_bit(cell) {
            return stuck;
        }
        bit ^ self.read_flips(cell, generation)
    }

    /// Whether programming `(block, page)` reports a failed status in
    /// erase generation `generation`.
    #[must_use]
    pub fn program_fails(&self, block: usize, page: usize, generation: u64) -> bool {
        self.program_fail_probability > 0.0
            && unit(self.draw(TAG_PROGRAM, &[block as u64, page as u64, generation]))
                < self.program_fail_probability
    }

    /// Whether the plan cuts power at op-clock index `op`.
    #[must_use]
    pub fn loses_power_at(&self, op: u64) -> bool {
        self.power_loss_ops.contains(&op)
    }
}

/// What one [`crash_and_recover`] run measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The op-clock index power was cut at.
    pub crash_op: usize,
    /// `state_digest()` of the running controller the instant before
    /// power was cut.
    pub digest_at_crash: u64,
    /// `state_digest()` of the controller rebuilt from the crash image
    /// (checkpoint + replayed deltas). Crash consistency holds iff this
    /// equals `digest_at_crash` — and equals the uninterrupted run's
    /// prefix digest at the same op.
    pub recovered_digest: u64,
    /// `state_digest()` after the recovered controller finished the
    /// trace.
    pub final_digest: u64,
    /// Metadata deltas replayed onto the checkpoint during recovery.
    pub deltas_replayed: usize,
}

/// Executes ops `[start, end)` of `source` one op-clock tick at a time
/// through the same batched entry points the replayer uses. Single-op
/// batches keep the execution bit-identical to any other segmentation
/// of the same trace (the replayer's pinned property) while letting
/// power loss cut between *any* two ops.
///
/// # Errors
///
/// Write/erase failures propagate ([`crate::ArrayError::ReadOnly`] once
/// spares are exhausted); read misses are tolerated like the replayer
/// does.
pub fn replay_ops(
    controller: &mut FlashController,
    source: &dyn TraceSource,
    start: usize,
    end: usize,
) -> Result<()> {
    let mut write_lat = Vec::new();
    let mut read_lat = Vec::new();
    for i in start..end {
        crate::workload::execute_segment(
            controller,
            source,
            i,
            i + 1,
            &mut write_lat,
            &mut read_lat,
        )?;
        write_lat.clear();
        read_lat.clear();
    }
    Ok(())
}

/// Runs `source` up to `crash_op`, cuts power (dropping every volatile
/// controller field), recovers a controller from the crash image,
/// re-arms the fault plan on the recovered array and finishes the
/// trace. `build` must construct the controller exactly as the
/// uninterrupted run would (same backend, faults, spares, crash
/// consistency interval).
///
/// # Errors
///
/// Replay and recovery failures propagate; the controller passed to
/// `build` must have crash consistency enabled
/// ([`FlashController::enable_crash_consistency`]) or the crash image
/// capture fails.
pub fn crash_and_recover(
    backend: &CellBackend,
    build: &dyn Fn() -> FlashController,
    plan: &FaultPlan,
    source: &dyn TraceSource,
    crash_op: usize,
) -> Result<RecoveryOutcome> {
    let mut running = build();
    replay_ops(&mut running, source, 0, crash_op)?;
    let digest_at_crash = running.state_digest();
    let image = running.crash_image()?;
    gnr_telemetry::set_op_index(crash_op as u64);
    gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::PowerLoss {
        pending_deltas: image.deltas.len() as u64,
    });
    gnr_telemetry::counter_add!("ftl.power_losses", 1);
    // Power is gone: everything not in the image is lost.
    drop(running);
    let mut recovered = FlashController::recover_backend(backend, &image)?;
    recovered.set_faults(Some(plan.clone()));
    let recovered_digest = recovered.state_digest();
    replay_ops(&mut recovered, source, crash_op, source.len())?;
    Ok(RecoveryOutcome {
        crash_op,
        digest_at_crash,
        recovered_digest,
        final_digest: recovered.state_digest(),
        deltas_replayed: image.deltas.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        for b in 0..64 {
            assert_eq!(plan.grown_bad_threshold(b), None);
            assert!(!plan.block_goes_bad(b, 1_000_000));
        }
        for c in 0..256 {
            assert_eq!(plan.stuck_bit(c), None);
            assert!(!plan.read_flips(c, 3));
            assert!(plan.corrupt_read_bit(c, 3, true));
            assert!(!plan.corrupt_read_bit(c, 3, false));
        }
        assert!(!plan.program_fails(0, 0, 0));
        assert!(!plan.loses_power_at(0));
    }

    #[test]
    fn explicit_bad_block_triggers_at_threshold() {
        let plan = FaultPlan {
            bad_block_after_erases: vec![(2, 5)],
            ..FaultPlan::seeded(9)
        };
        assert!(!plan.block_goes_bad(2, 4));
        assert!(plan.block_goes_bad(2, 5));
        assert!(plan.block_goes_bad(2, 9));
        assert!(!plan.block_goes_bad(1, 9));
    }

    #[test]
    fn grown_bad_fraction_selects_roughly_that_many_blocks() {
        let plan = FaultPlan {
            grown_bad_fraction: 0.25,
            grown_bad_min_erases: 2,
            grown_bad_max_erases: 6,
            ..FaultPlan::seeded(42)
        };
        let bad: Vec<u64> = (0..1000)
            .filter_map(|b| plan.grown_bad_threshold(b))
            .collect();
        assert!(
            (150..350).contains(&bad.len()),
            "{} of 1000 blocks grew bad",
            bad.len()
        );
        assert!(bad.iter().all(|&t| (2..=6).contains(&t)));
    }

    #[test]
    fn lotteries_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan {
            stuck_cell_fraction: 0.1,
            program_fail_probability: 0.1,
            read_flip_probability: 0.1,
            ..FaultPlan::seeded(7)
        };
        let b = a.clone();
        let other = FaultPlan {
            seed: 8,
            ..a.clone()
        };
        let mut diverged = false;
        for c in 0..512 {
            assert_eq!(a.stuck_bit(c), b.stuck_bit(c));
            assert_eq!(a.read_flips(c, 1), b.read_flips(c, 1));
            assert_eq!(a.program_fails(c, 0, 1), b.program_fails(c, 0, 1));
            diverged |= a.stuck_bit(c) != other.stuck_bit(c);
        }
        assert!(diverged, "seed must matter");
    }

    #[test]
    fn power_loss_points_match_the_schedule() {
        let plan = FaultPlan {
            power_loss_ops: vec![3, 17],
            ..FaultPlan::seeded(1)
        };
        assert!(plan.loses_power_at(3));
        assert!(plan.loses_power_at(17));
        assert!(!plan.loses_power_at(4));
    }
}
