//! Program/erase endurance with phenomenological oxide wear.
//!
//! The paper's conclusion: "higher tunneling current will severely damage
//! the oxide's reliability. Therefore, an optimization among these
//! crucial parameters is recommended." The wear mechanism (after Olivio
//! et al., the paper's ref. [2]) is charge-to-breakdown: every coulomb
//! driven through the tunnel oxide generates interface traps. Trapped
//! electrons raise the erased threshold faster than the programmed one,
//! closing the memory window; enough cumulative fluence breaks the oxide
//! down entirely.
//!
//! The model here is deliberately *phenomenological* (trap generation
//! `∝ √fluence`, a standard empirical exponent) — calibrated so the
//! default cell survives ~10⁵ cycles, the NAND ballpark.

use gnr_numerics::stats::Summary;
use gnr_units::{Charge, Voltage};

use crate::cell::FlashCell;
use crate::population::CellPopulation;
use crate::{ArrayError, Result};

/// Oxide-wear parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnduranceModel {
    /// Trapped electrons per √(injected electrons) (empirical √ law).
    pub trap_sqrt_coefficient: f64,
    /// Fraction of the trap-induced threshold offset that afflicts the
    /// *programmed* state (< 1: the erased state degrades faster, so the
    /// window closes).
    pub programmed_state_fraction: f64,
    /// Charge-to-breakdown per cell (C).
    pub breakdown_charge: f64,
}

impl Default for EnduranceModel {
    fn default() -> Self {
        // Calibration: the nominal cell moves ~6×10⁻¹⁷ C per cycle; with
        // a √-law coefficient of 0.05 the trap-induced offset reaches the
        // ~11 V initial window after a few ×10⁵ cycles (NAND-class
        // endurance), and Q_BD = 5 pC corresponds to ~10⁵ cycles of
        // fluence — breakdown and window closure compete realistically.
        Self {
            trap_sqrt_coefficient: 0.05,
            programmed_state_fraction: 0.5,
            breakdown_charge: 5.0e-12,
        }
    }
}

/// One endurance checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EndurancePoint {
    /// Cycle number.
    pub cycle: u64,
    /// Programmed-state threshold shift (V).
    pub vt_programmed: f64,
    /// Erased-state threshold shift (V).
    pub vt_erased: f64,
    /// Remaining memory window (V).
    pub window: f64,
}

/// The endurance simulation result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnduranceReport {
    /// Log-spaced checkpoints.
    pub points: Vec<EndurancePoint>,
    /// First cycle at which the window fell below the margin, if any.
    pub cycles_to_window_close: Option<u64>,
    /// First cycle at which cumulative fluence exceeded `Q_BD`, if any.
    pub cycles_to_breakdown: Option<u64>,
    /// Charge moved per cycle (C).
    pub charge_per_cycle: f64,
}

impl EnduranceModel {
    /// Trapped charge (C, negative = electrons) after a cumulative
    /// injected fluence.
    #[must_use]
    pub fn trapped_charge(&self, injected: f64) -> Charge {
        let injected_electrons = injected.abs() / gnr_units::constants::ELEMENTARY_CHARGE;
        Charge::from_electrons(-self.trap_sqrt_coefficient * injected_electrons.sqrt())
    }

    /// Simulates `max_cycles` program/erase cycles of a fresh cell.
    ///
    /// One representative program and erase transient are run (the
    /// per-cycle charge swing is bias-determined, not history-determined);
    /// wear then evolves analytically, checked at log-spaced checkpoints.
    ///
    /// # Errors
    ///
    /// Propagates transient failures from the representative cycle.
    pub fn simulate(
        &self,
        cell_template: &FlashCell,
        max_cycles: u64,
        window_margin: Voltage,
    ) -> Result<EnduranceReport> {
        // Representative cycle.
        let mut cell = cell_template.clone();
        cell.program_default()?;
        let q_prog = cell.charge();
        let vt_prog0 = cell.vt_shift().as_volts();
        cell.erase_default()?;
        let q_erased = cell.charge();
        let vt_erased0 = cell.vt_shift().as_volts();
        let charge_per_cycle = 2.0 * (q_prog.as_coulombs() - q_erased.as_coulombs()).abs();

        let cfc = cell.device().capacitances().cfc();
        let mut points = Vec::new();
        let mut window_close = None;
        let mut breakdown = None;

        for &cycle in log_spaced_cycles(max_cycles).iter() {
            let injected = charge_per_cycle * cycle as f64;
            let q_trap = self.trapped_charge(injected);
            // Trap-induced threshold offset (positive: electrons).
            let offset = -(q_trap / cfc).as_volts();
            let vt_p = vt_prog0 + self.programmed_state_fraction * offset;
            let vt_e = vt_erased0 + offset;
            let window = vt_p - vt_e;
            points.push(EndurancePoint {
                cycle,
                vt_programmed: vt_p,
                vt_erased: vt_e,
                window,
            });
            if window_close.is_none() && window < window_margin.as_volts() {
                window_close = Some(cycle);
            }
            if breakdown.is_none() && injected > self.breakdown_charge {
                breakdown = Some(cycle);
            }
        }

        Ok(EnduranceReport {
            points,
            cycles_to_window_close: window_close,
            cycles_to_breakdown: breakdown,
            charge_per_cycle,
        })
    }
}

/// Array-level wear view built from a population's injected-charge
/// column — the struct-of-arrays path: no per-cell transients, just the
/// analytic trap model applied to the recorded fluence of every cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationWearReport {
    /// Injected-charge fluence across cells (C).
    pub injected: Summary,
    /// Trap-induced threshold offset across cells (V).
    pub trap_offset: Summary,
    /// Fraction of cells whose trap offset already exceeds `margin`.
    pub cells_past_margin: f64,
}

impl EnduranceModel {
    /// Evaluates the wear model over every cell of a population.
    ///
    /// # Errors
    ///
    /// Statistics errors (populations are never empty).
    pub fn population_wear(
        &self,
        pop: &CellPopulation,
        margin: Voltage,
    ) -> Result<PopulationWearReport> {
        let n = pop.len();
        let mut injected = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        let mut past = 0usize;
        for i in 0..n {
            let fluence = pop.stats(i)?.injected_charge;
            let cfc = pop.device(i)?.capacitances().cfc();
            let offset = -(self.trapped_charge(fluence) / cfc).as_volts();
            if offset > margin.as_volts() {
                past += 1;
            }
            injected.push(fluence);
            offsets.push(offset);
        }
        let to_err = |e: gnr_numerics::NumericsError| ArrayError::Device(e.into());
        Ok(PopulationWearReport {
            injected: Summary::from_samples(&injected).map_err(to_err)?,
            trap_offset: Summary::from_samples(&offsets).map_err(to_err)?,
            cells_past_margin: past as f64 / n as f64,
        })
    }
}

/// 1-2-5 log-spaced cycle checkpoints up to `max`.
fn log_spaced_cycles(max: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut decade = 1u64;
    loop {
        for m in [1u64, 2, 5] {
            let c = decade.saturating_mul(m);
            if c > max {
                if out.last() != Some(&max) {
                    out.push(max);
                }
                return out;
            }
            out.push(c);
        }
        decade = decade.saturating_mul(10);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_closes_monotonically() {
        let report = EnduranceModel::default()
            .simulate(
                &FlashCell::paper_cell(),
                1_000_000,
                Voltage::from_volts(1.0),
            )
            .unwrap();
        for pair in report.points.windows(2) {
            assert!(pair[1].window <= pair[0].window + 1e-9);
        }
    }

    #[test]
    fn default_cell_survives_nand_class_cycling() {
        let report = EnduranceModel::default()
            .simulate(
                &FlashCell::paper_cell(),
                10_000_000,
                Voltage::from_volts(1.0),
            )
            .unwrap();
        let close = report
            .cycles_to_window_close
            .expect("window closes eventually");
        assert!(close > 10_000, "window closed too early: {close} cycles");
    }

    #[test]
    fn harsher_trapping_closes_window_sooner() {
        let gentle = EnduranceModel::default();
        let harsh = EnduranceModel {
            trap_sqrt_coefficient: 3.5,
            ..gentle
        };
        let cell = FlashCell::paper_cell();
        let margin = Voltage::from_volts(1.0);
        let g = gentle.simulate(&cell, 10_000_000, margin).unwrap();
        let h = harsh.simulate(&cell, 10_000_000, margin).unwrap();
        match (h.cycles_to_window_close, g.cycles_to_window_close) {
            (Some(hc), Some(gc)) => assert!(hc < gc),
            (Some(_), None) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn breakdown_tracks_fluence() {
        let model = EnduranceModel {
            breakdown_charge: 1.0e-15,
            ..EnduranceModel::default()
        };
        let report = model
            .simulate(
                &FlashCell::paper_cell(),
                1_000_000,
                Voltage::from_volts(0.5),
            )
            .unwrap();
        assert!(report.cycles_to_breakdown.is_some());
        // Q_BD threshold: fluence per cycle × cycles > 1e-15.
        let c = report.cycles_to_breakdown.unwrap();
        assert!(report.charge_per_cycle * c as f64 > 1.0e-15);
    }

    #[test]
    fn population_wear_tracks_injected_column() {
        use gnr_flash::engine::BatchSimulator;
        let mut pop = CellPopulation::paper(8);
        let batch = BatchSimulator::sequential();
        let programmer = crate::ispp::IsppProgrammer::nominal();
        let _ = pop.program_cells(&programmer, &[0, 1, 2, 3], &batch);
        let report = EnduranceModel::default()
            .population_wear(&pop, Voltage::from_volts(1.0))
            .unwrap();
        assert_eq!(report.injected.count, 8);
        assert!(report.injected.max > 0.0, "programmed cells carry wear");
        assert_eq!(report.injected.min, 0.0, "untouched cells carry none");
        assert!(report.trap_offset.max > 0.0);
        assert_eq!(report.cells_past_margin, 0.0);
    }

    #[test]
    fn checkpoints_are_log_spaced() {
        let cs = log_spaced_cycles(1000);
        assert_eq!(cs, vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]);
        let cs2 = log_spaced_cycles(30);
        assert_eq!(cs2.last(), Some(&30));
    }
}
