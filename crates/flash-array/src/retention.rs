//! Data retention: stored-charge leakage at rest.
//!
//! With all terminals grounded, a programmed floating gate sits a few
//! volts below the channel — a *sub-barrier* drop, so the loss path is
//! direct tunneling (the paper's §II thin-oxide regime), evaluated here
//! with the unified direct/FN model through both oxides. The standard
//! requirement is a still-open window after ten years at 85 °C; elevated
//! temperature is modelled with an Arrhenius acceleration factor.

use std::collections::HashMap;

use gnr_tunneling::direct::DirectTunnelingModel;
use gnr_units::constants::BOLTZMANN;
use gnr_units::{Charge, Temperature, Voltage};

use gnr_flash::device::FloatingGateTransistor;

use crate::population::CellPopulation;

/// Retention-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetentionModel {
    /// Activation energy of the (trap-assisted) leakage, eV.
    pub activation_energy_ev: f64,
    /// Reference temperature at which the tunneling models are evaluated.
    pub reference: Temperature,
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self {
            activation_energy_ev: 0.6,
            reference: Temperature::room(),
        }
    }
}

/// One point of a retention trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetentionPoint {
    /// Elapsed time (s).
    pub t: f64,
    /// Remaining stored charge (C).
    pub charge: f64,
    /// Threshold shift at this charge (V).
    pub vt_shift: f64,
}

/// Retention verdict for a ten-year bake.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetentionReport {
    /// The trace, log-spaced in time.
    pub trace: Vec<RetentionPoint>,
    /// Initial threshold shift (V).
    pub initial_vt: f64,
    /// Threshold shift after the full horizon (V).
    pub final_vt: f64,
    /// `true` when at least `margin` of shift survives the horizon.
    pub pass: bool,
}

impl RetentionModel {
    /// Arrhenius acceleration of the leakage at temperature `t` relative
    /// to the reference.
    #[must_use]
    pub fn acceleration(&self, t: Temperature) -> f64 {
        let ea = self.activation_energy_ev * gnr_units::constants::ELECTRON_VOLT;
        (ea / BOLTZMANN * (1.0 / self.reference.as_kelvin() - 1.0 / t.as_kelvin())).exp()
    }

    /// Quasi-static leakage integration of a resting cell over log-spaced
    /// times up to `horizon_s`, at temperature `t`.
    ///
    /// All terminals grounded: the only field is the stored charge's own
    /// `VFG = QFG/CT`, and the loss is direct tunneling through both
    /// oxides. Quasi-static stepping is exact in the limit of slowly
    /// varying leakage — retention currents change on the same decade
    /// scale as the time grid.
    #[must_use]
    pub fn trace(
        &self,
        device: &FloatingGateTransistor,
        initial: Charge,
        horizon_s: f64,
        t: Temperature,
    ) -> Vec<RetentionPoint> {
        let accel = self.acceleration(t);
        let geometry = device.geometry();
        let tunnel = DirectTunnelingModel::new(
            device.channel_emission_model().barrier(),
            device.channel_emission_model().effective_mass(),
            geometry.tunnel_oxide_thickness(),
        );
        let tunnel_rev = DirectTunnelingModel::new(
            device.fg_emission_model().barrier(),
            device.fg_emission_model().effective_mass(),
            geometry.tunnel_oxide_thickness(),
        );
        let control = DirectTunnelingModel::new(
            device.fg_emission_model().barrier(),
            device.fg_emission_model().effective_mass(),
            geometry.control_oxide_thickness(),
        );
        let area = geometry.gate_area().as_square_meters();
        let ct = device.capacitances().total();

        // Log grid: 100 points per ten-year horizon scale.
        let n = 100usize;
        let t0: f64 = 1.0; // first checkpoint at 1 s
        let ratio = (horizon_s / t0).powf(1.0 / (n - 1) as f64);

        let mut q = initial.as_coulombs();
        let mut out = Vec::with_capacity(n + 1);
        let record = |q: f64, t: f64| RetentionPoint {
            t,
            charge: q,
            vt_shift: gnr_flash::threshold::vt_shift(device, Charge::from_coulombs(q)).as_volts(),
        };
        out.push(record(q, 0.0));
        let mut t_prev = 0.0;
        let mut t_now = t0;
        for _ in 0..n {
            let vfg = Charge::from_coulombs(q) / ct;
            // Electron flow channel→FG (positive) through the tunnel oxide.
            let j_t = if vfg.as_volts() >= 0.0 {
                tunnel
                    .current_density_for_drop(vfg)
                    .as_amps_per_square_meter()
            } else {
                -tunnel_rev
                    .current_density_for_drop(-vfg)
                    .as_amps_per_square_meter()
            };
            // Electron flow FG→gate (positive) through the control oxide:
            // drop is (0 − VFG).
            let j_c = control
                .current_density_for_drop(-vfg)
                .as_amps_per_square_meter();
            let dq_dt = accel * area * (j_c - j_t);
            q += dq_dt * (t_now - t_prev);
            // Leakage can only relax the charge toward zero, never flip it.
            if initial.as_coulombs() < 0.0 {
                q = q.min(0.0);
            } else {
                q = q.max(0.0);
            }
            out.push(record(q, t_now));
            t_prev = t_now;
            t_now *= ratio;
        }
        out
    }

    /// The ten-year retention check at the given temperature: passes when
    /// at least `margin` of threshold shift remains.
    #[must_use]
    pub fn ten_year_check(
        &self,
        device: &FloatingGateTransistor,
        programmed: Charge,
        margin: Voltage,
        t: Temperature,
    ) -> RetentionReport {
        let horizon = gnr_units::Time::from_years(10.0).as_seconds();
        let trace = self.trace(device, programmed, horizon, t);
        let initial_vt = trace.first().map_or(0.0, |p| p.vt_shift);
        let final_vt = trace.last().map_or(0.0, |p| p.vt_shift);
        RetentionReport {
            initial_vt,
            final_vt,
            pass: final_vt >= margin.as_volts(),
            trace,
        }
    }
}

/// Ten-year retention verdict across a whole population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopulationRetentionReport {
    /// Cells evaluated.
    pub cells: usize,
    /// Cells whose shift survives the margin.
    pub passing: usize,
    /// Distinct `(device variant, stored charge)` states actually
    /// integrated — the struct-of-arrays win: a million identical
    /// programmed cells cost one trace.
    pub distinct_states: usize,
    /// Smallest final threshold shift across the population (V).
    pub worst_final_vt: f64,
}

impl RetentionModel {
    /// Runs the ten-year check over every cell of a population,
    /// integrating one leakage trace per distinct `(variant, charge)`
    /// state and sharing the verdict across all cells in that state.
    #[must_use]
    pub fn population_check(
        &self,
        pop: &CellPopulation,
        margin: Voltage,
        t: Temperature,
    ) -> PopulationRetentionReport {
        let mut memo: HashMap<(u64, u64, u64), (bool, f64)> = HashMap::new();
        let mut passing = 0usize;
        let mut worst = f64::INFINITY;
        for i in 0..pop.len() {
            let charge = pop.charge(i).expect("index in range");
            let device = pop.device(i).expect("index in range");
            // The variant is identified by its delta pair (collision-free
            // bit patterns); charge bits complete the state key.
            let (xto, barrier) = pop.variation_deltas(i).expect("index in range");
            let key = (
                xto.to_bits(),
                barrier.to_bits(),
                charge.as_coulombs().to_bits(),
            );
            let (pass, final_vt) = *memo.entry(key).or_insert_with(|| {
                let report = self.ten_year_check(device, charge, margin, t);
                (report.pass, report.final_vt)
            });
            if pass {
                passing += 1;
            }
            worst = worst.min(final_vt);
        }
        PopulationRetentionReport {
            cells: pop.len(),
            passing,
            distinct_states: memo.len(),
            worst_final_vt: worst,
        }
    }
}

impl RetentionModel {
    /// Applies `duration_s` of resting charge loss at temperature `t` to
    /// every cell of the population — the *mutating* counterpart of
    /// [`Self::population_check`], used to bake arrays before reliability
    /// scans. One leakage trace is integrated per distinct
    /// `(variant, charge)` state and the final charge is shared across
    /// all cells in that state. Returns the number of distinct states
    /// integrated. Durations below one second are a no-op (the trace's
    /// first checkpoint).
    pub fn bake_population(
        &self,
        pop: &mut CellPopulation,
        duration_s: f64,
        t: Temperature,
    ) -> usize {
        if duration_s < 1.0 {
            return 0;
        }
        let mut memo: HashMap<(u64, u64, u64), f64> = HashMap::new();
        for i in 0..pop.len() {
            let charge = pop.charge(i).expect("index in range");
            if charge.as_coulombs() == 0.0 {
                continue; // nothing stored, nothing to lose
            }
            let (xto, barrier) = pop.variation_deltas(i).expect("index in range");
            let key = (
                xto.to_bits(),
                barrier.to_bits(),
                charge.as_coulombs().to_bits(),
            );
            let baked = if let Some(&q) = memo.get(&key) {
                q
            } else {
                let device = pop.device(i).expect("index in range");
                let trace = self.trace(device, charge, duration_s, t);
                let q = trace.last().map_or(charge.as_coulombs(), |p| p.charge);
                memo.insert(key, q);
                q
            };
            pop.set_charge(i, Charge::from_coulombs(baked))
                .expect("index in range");
        }
        memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::FlashCell;

    fn programmed_charge() -> (FloatingGateTransistor, Charge) {
        let mut cell = FlashCell::paper_cell();
        cell.program_default().unwrap();
        (cell.device().clone(), cell.charge())
    }

    #[test]
    fn charge_decays_monotonically() {
        let (device, q0) = programmed_charge();
        let model = RetentionModel::default();
        let trace = model.trace(&device, q0, 3.2e8, Temperature::room());
        for pair in trace.windows(2) {
            // Stored charge is negative; it relaxes toward zero.
            assert!(pair[1].charge >= pair[0].charge - 1e-30);
            assert!(pair[1].charge <= 0.0);
        }
    }

    #[test]
    fn ten_year_room_temperature_retention_passes() {
        let (device, q0) = programmed_charge();
        let report = RetentionModel::default().ten_year_check(
            &device,
            q0,
            Voltage::from_volts(1.0),
            Temperature::room(),
        );
        assert!(
            report.pass,
            "retention failed: {} V -> {} V",
            report.initial_vt, report.final_vt
        );
    }

    #[test]
    fn bake_accelerates_loss() {
        let (device, q0) = programmed_charge();
        let model = RetentionModel::default();
        let room = model.trace(&device, q0, 3.2e8, Temperature::room());
        let bake = model.trace(&device, q0, 3.2e8, Temperature::from_celsius(85.0));
        let lost = |tr: &[RetentionPoint]| tr.first().unwrap().charge - tr.last().unwrap().charge;
        assert!(lost(&bake).abs() >= lost(&room).abs());
    }

    #[test]
    fn acceleration_factor_is_arrhenius() {
        let model = RetentionModel::default();
        assert!((model.acceleration(Temperature::room()) - 1.0).abs() < 1e-12);
        let a85 = model.acceleration(Temperature::from_celsius(85.0));
        // 0.6 eV between 300 K and 358 K: exp(0.6/k·(1/300−1/358)) ≈ 43×.
        assert!(a85 > 10.0 && a85 < 200.0, "a85 = {a85}");
    }

    #[test]
    fn population_check_shares_traces_across_identical_cells() {
        use crate::population::CellPopulation;
        use gnr_flash::engine::BatchSimulator;

        let mut pop = CellPopulation::paper(64);
        let programmer = crate::ispp::IsppProgrammer::nominal();
        let indices: Vec<usize> = (0..32).collect();
        let _ = pop.program_cells(&programmer, &indices, &BatchSimulator::sequential());

        let report = RetentionModel::default().population_check(
            &pop,
            Voltage::from_volts(1.0),
            Temperature::from_celsius(85.0),
        );
        assert_eq!(report.cells, 64);
        // Two states: programmed and fresh — two traces, not 64.
        assert_eq!(report.distinct_states, 2);
        // Programmed cells pass; erased cells have no shift to retain.
        assert_eq!(report.passing, 32);
        assert!(report.worst_final_vt < 1.0);
    }

    #[test]
    fn bake_population_matches_single_cell_trace() {
        use crate::population::CellPopulation;
        use gnr_flash::engine::BatchSimulator;

        let mut pop = CellPopulation::paper(16);
        let programmer = crate::ispp::IsppProgrammer::nominal();
        let indices: Vec<usize> = (0..8).collect();
        let _ = pop.program_cells(&programmer, &indices, &BatchSimulator::sequential());
        let q0 = pop.charge(0).unwrap();

        let model = RetentionModel::default();
        let bake_s = 3.2e7; // one year
        let t = Temperature::from_celsius(85.0);
        let states = model.bake_population(&mut pop, bake_s, t);
        // Programmed cells share one state; fresh cells are skipped.
        assert_eq!(states, 1);

        let expected = model
            .trace(pop.device(0).unwrap(), q0, bake_s, t)
            .last()
            .unwrap()
            .charge;
        for i in 0..8 {
            assert_eq!(pop.charge(i).unwrap().as_coulombs(), expected, "cell {i}");
        }
        // Fresh cells untouched; charge decayed toward zero.
        assert_eq!(pop.charge(12).unwrap().as_coulombs(), 0.0);
        assert!(expected >= q0.as_coulombs() && expected < 0.0);

        // Sub-second bakes are a no-op.
        let mut pop2 = CellPopulation::paper(2);
        assert_eq!(model.bake_population(&mut pop2, 0.5, t), 0);
    }

    #[test]
    fn erased_cell_has_nothing_to_lose() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let report = RetentionModel::default().ten_year_check(
            &device,
            Charge::ZERO,
            Voltage::from_volts(0.5),
            Temperature::room(),
        );
        assert!(!report.pass); // no stored shift to retain
        assert_eq!(report.initial_vt, 0.0);
    }
}
